"""Rule SQ — seqlock reader discipline.

``declare_seqlock`` publishes a generation-counter protocol: writers
bump a counter odd before mutating and even after, and the *protected
primitives* (e.g. ``refresh_row``/``copy_row``) may copy shared rows
lock-free **only** from inside a retry loop that validates the counter —
or while holding the declared writer lock, which excludes every bump.
A primitive call outside both shapes reads rows a writer may be
mid-commit on: a torn capture that no test reliably reproduces, which
is exactly why it is checked statically.

* **SQ001** — a ``@seqlock_reader``-marked function calls a protected
  primitive outside any retry loop and outside a ``with`` on the
  declared writer lock.  The marking *claims* the retry protocol; a
  straight-line call breaks the claim.
* **SQ002** — a protected primitive called from a function that is
  neither ``@seqlock_reader``-marked nor holding the writer lock,
  outside the store internals that own the protocol.  Unmarked callers
  get no retry loop at all, so the only legal shape is the lock.

A call under ``with <store>.writer_lock`` (or the declared lock's own
attribute, e.g. ``_lock``) is exempt from both rules: holding the
writers' serialization point means no generation can change mid-copy —
the bounded-spin starvation fallback in the streaming cache leans on
exactly this exemption.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    ClassInfo,
    Finding,
    MethodInfo,
    Module,
    Project,
    iter_functions,
    qualname,
)

#: modules that own the seqlock protocol (counter bumps + primitives)
_ALLOWED_SUFFIXES = ("core/sum_store.py",)

#: the public accessor name for a declared writer lock (the streaming
#: cache reaches the store's ``_lock`` through it)
_WRITER_LOCK_ATTR = "writer_lock"


def _module_allowed(module: Module) -> bool:
    path = module.display_path.replace("\\", "/")
    return any(path.endswith(suffix) for suffix in _ALLOWED_SUFFIXES)


def _seqlock_reader_mark(method: MethodInfo) -> bool:
    for dec in method.node.decorator_list:
        func = dec.func if isinstance(dec, ast.Call) else dec
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name == "seqlock_reader":
            return True
    return False


def _writer_lock_attrs(project: Project) -> frozenset[str]:
    """Attribute names that denote a declared seqlock writer lock.

    Built from the declarations, not hardcoded: ``writer_lock=
    "ColumnarSumStore._lock"`` makes both the raw ``_lock`` attribute
    and the public ``writer_lock`` accessor count as holding it.
    """
    attrs = {_WRITER_LOCK_ATTR}
    for spec in project.registry.seqlocks.values():
        writer_lock = spec.get("writer_lock")
        if isinstance(writer_lock, str) and "." in writer_lock:
            attrs.add(writer_lock.rsplit(".", 1)[1])
    return frozenset(attrs)


def _protected_primitives(project: Project) -> dict[str, str]:
    """primitive method name -> seqlock node that protects it."""
    out: dict[str, str] = {}
    for node, spec in project.registry.seqlocks.items():
        protects = spec.get("protects") or ()
        for name in protects:  # type: ignore[union-attr]
            out[str(name)] = node
    return out


def _holds_writer_lock(item: ast.withitem, lock_attrs: frozenset[str]) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Call):  # e.g. store.locked() style helpers
        expr = expr.func
    return isinstance(expr, ast.Attribute) and expr.attr in lock_attrs


class _SeqlockWalker:
    """Statement walker tracking loop nesting and writer-lock scopes."""

    def __init__(
        self,
        module: Module,
        cls: ClassInfo | None,
        method: MethodInfo,
        primitives: dict[str, str],
        lock_attrs: frozenset[str],
        findings: list[Finding],
    ) -> None:
        self.module = module
        self.cls = cls
        self.method = method
        self.primitives = primitives
        self.lock_attrs = lock_attrs
        self.findings = findings
        self.marked = _seqlock_reader_mark(method)
        self.allowed = _module_allowed(module)

    def run(self) -> None:
        for stmt in self.method.node.body:
            self._walk(stmt, in_loop=False, under_lock=False)

    def _walk(self, node: ast.AST, *, in_loop: bool, under_lock: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs get their own iter_functions pass
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for child in ast.iter_child_nodes(node):
                self._walk(child, in_loop=True, under_lock=under_lock)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            held = under_lock or any(
                _holds_writer_lock(item, self.lock_attrs)
                for item in node.items
            )
            for child in node.body:
                self._walk(child, in_loop=in_loop, under_lock=held)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, in_loop=in_loop, under_lock=under_lock)
        for child in ast.iter_child_nodes(node):
            self._walk(child, in_loop=in_loop, under_lock=under_lock)

    def _check_call(
        self, call: ast.Call, *, in_loop: bool, under_lock: bool
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        seqlock = self.primitives.get(func.attr)
        if seqlock is None or self.allowed or under_lock:
            return
        if self.marked:
            if not in_loop:
                self._report(
                    "SQ001",
                    call,
                    f".{func.attr}() outside the retry loop in a "
                    f"@seqlock_reader function; {seqlock} readers must "
                    f"revalidate the generation counter or hold the "
                    f"writer lock",
                )
        else:
            self._report(
                "SQ002",
                call,
                f".{func.attr}() is protected by {seqlock} but the "
                f"caller is neither @seqlock_reader-marked nor holding "
                f"the declared writer lock",
            )

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", self.method.node.lineno)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.display_path,
                line=line,
                message=message,
                symbol=qualname(self.cls, self.method),
                snippet=self.module.snippet(line),
            )
        )


def check_seqlock(project: Project) -> list[Finding]:
    primitives = _protected_primitives(project)
    if not primitives:
        return []
    lock_attrs = _writer_lock_attrs(project)
    findings: list[Finding] = []
    for module, cls, method in iter_functions(project):
        _SeqlockWalker(
            module, cls, method, primitives, lock_attrs, findings
        ).run()
    return findings
