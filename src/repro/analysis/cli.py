"""``python -m repro.analysis`` — run every concurrency-contract check.

Exit codes: 0 clean (after baseline), 1 findings or stale waivers,
2 invalid invocation/baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    BaselineError,
    BaselineResult,
    apply_baseline,
    load_baseline,
)
from repro.analysis.core import Finding, Project
from repro.analysis.hygiene import check_hygiene
from repro.analysis.lock_discipline import check_lock_discipline
from repro.analysis.lock_order import build_lock_graph

DEFAULT_BASELINE = "analysis-baseline.toml"


def run_checks(project: Project) -> tuple[list[Finding], dict]:
    """All findings plus the lock graph (for the report/witness)."""
    from repro.analysis.seqlock import check_seqlock
    from repro.analysis.snapshots import check_snapshots

    graph = build_lock_graph(project)
    findings = [
        *check_lock_discipline(project),
        *graph.findings,
        *check_snapshots(project),
        *check_seqlock(project),
        *check_hygiene(project),
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    registry = project.registry
    graph_dump = {
        "edges": [
            {"outer": u, "inner": v, "source": f"{src[0]}:{src[1]}"}
            for (u, v), src in sorted(graph.edges.items())
        ],
        # lock-free protocols declared alongside the lock graph: seqlock
        # generation counters and multi-class shedding queues (what the
        # SQ rules and the obs shed-accounting views key off)
        "seqlocks": [
            {"node": node, **spec}
            for node, spec in sorted(registry.seqlocks.items())
        ],
        "queue_classes": [
            {"node": node, **spec}
            for node, spec in sorted(registry.queue_classes.items())
        ],
    }
    return findings, graph_dump


def _report_payload(
    findings: list[Finding],
    result: BaselineResult,
    graph_dump: dict,
) -> dict:
    def enc(finding: Finding, waived: bool) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "symbol": finding.symbol,
            "message": finding.message,
            "waived": waived,
        }

    waived_set = {id(f) for f, _ in result.waived}
    return {
        "findings": [enc(f, id(f) in waived_set) for f in findings],
        "stale_waivers": [w.describe() for w in result.stale],
        "lock_graph": graph_dump,
        "summary": {
            "total": len(findings),
            "unwaived": len(result.unwaived),
            "waived": len(result.waived),
            "stale_waivers": len(result.stale),
        },
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="concurrency-contract static analysis",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help=f"waiver file (default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a JSON report (findings + lock graph)",
    )
    parser.add_argument(
        "--graph", action="store_true",
        help="print the static lock-order graph edges",
    )
    args = parser.parse_args(argv)

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    project = Project.load(args.paths)
    findings, graph_dump = run_checks(project)

    waivers = []
    if not args.no_baseline:
        baseline_path = args.baseline or (
            DEFAULT_BASELINE if Path(DEFAULT_BASELINE).exists() else None
        )
        if baseline_path is not None:
            try:
                waivers = load_baseline(baseline_path)
            except BaselineError as exc:
                print(f"baseline error: {exc}", file=sys.stderr)
                return 2
    result = apply_baseline(findings, waivers)

    if args.graph:
        for entry in graph_dump["edges"]:
            print(f"{entry['outer']} -> {entry['inner']}  [{entry['source']}]")

    for finding in result.unwaived:
        print(finding.render())
    if result.waived:
        print(f"({len(result.waived)} finding(s) waived by baseline)")
    for waiver in result.stale:
        print(
            f"stale waiver (matches nothing; remove it): {waiver.describe()}"
        )

    if args.report:
        payload = _report_payload(findings, result, graph_dump)
        Path(args.report).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    if result.unwaived or result.stale:
        total = len(result.unwaived)
        print(
            f"FAIL: {total} unwaived finding(s), "
            f"{len(result.stale)} stale waiver(s)"
        )
        return 1
    checked = len(project.modules)
    print(f"OK: {checked} modules, 0 unwaived findings")
    return 0
