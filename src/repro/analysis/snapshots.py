"""Rule SN — snapshot immutability.

Published snapshots (:class:`~repro.core.sum_store.FrozenSumBatch`,
frozen row views from ``freeze_view``) are the serving plane's
consistency boundary: readers hold them lock-free *because* nothing
mutates them.  The arrays enforce that at runtime (``writeable=False``);
these rules enforce it statically, before a rarely-taken path trips the
runtime guard in production.

* **SN001** — mutation of a frozen snapshot: attribute/item assignment
  or an in-place mutator call on a value obtained from ``freeze_view``,
  a ``FrozenSumBatch``, or anything typed as a frozen store class.
* **SN002** — re-enabling writes on a captured array
  (``arr.setflags(write=True)`` / ``arr.flags.writeable = True``)
  outside the store/mirror internals that own the capture protocol.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    MUTATOR_METHODS,
    ClassInfo,
    Finding,
    MethodInfo,
    Module,
    Project,
    TypeEnv,
    iter_functions,
    qualname,
)

#: classes whose instances are immutable captures
FROZEN_TYPES = frozenset({"FrozenSumBatch", "_FrozenRowStore", "_FrozenFamily"})

#: zero-argument-receiver calls that produce a frozen capture
FROZEN_PRODUCERS = frozenset({"freeze_view"})

#: modules allowed to manage capture internals (build/seal/thaw)
_ALLOWED_SUFFIXES = ("core/sum_store.py",)


def _module_allowed(module: Module) -> bool:
    path = module.display_path.replace("\\", "/")
    return any(path.endswith(suffix) for suffix in _ALLOWED_SUFFIXES)


def _is_frozen_producer_call(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Attribute) and func.attr in FROZEN_PRODUCERS:
        return True
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    return name in FROZEN_TYPES


def _collect_frozen_locals(
    func: ast.FunctionDef | ast.AsyncFunctionDef, env: TypeEnv
) -> set[str]:
    frozen: set[str] = set()
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if env.types.get(arg.arg) in FROZEN_TYPES:
            frozen.add(arg.arg)
    for stmt in ast.walk(func):
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = stmt.value
        if (
            _is_frozen_producer_call(value)
            or env.type_of(value) in FROZEN_TYPES
            or (isinstance(value, ast.Name) and value.id in frozen)
        ):
            frozen.add(target.id)
    return frozen


class _SnapshotWalker(ast.NodeVisitor):
    def __init__(
        self,
        project: Project,
        module: Module,
        cls: ClassInfo | None,
        method: MethodInfo,
        findings: list[Finding],
    ) -> None:
        self.project = project
        self.module = module
        self.cls = cls
        self.method = method
        self.env = TypeEnv(project, cls, method.node)
        self.frozen = _collect_frozen_locals(method.node, self.env)
        self.findings = findings
        self.allowed = _module_allowed(module)

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", self.method.node.lineno)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.display_path,
                line=line,
                message=message,
                symbol=qualname(self.cls, self.method),
                snippet=self.module.snippet(line),
            )
        )

    def _frozen_receiver(self, expr: ast.expr) -> str | None:
        """Name of the frozen value an access chain goes through, if any."""
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            described = self.env.type_of(expr)
            if described in FROZEN_TYPES:
                return described
            expr = expr.value
        if isinstance(expr, ast.Name) and expr.id in self.frozen:
            return expr.id
        if _is_frozen_producer_call(expr):
            return ast.unparse(expr.func)
        if isinstance(expr, (ast.Attribute, ast.Subscript, ast.Call)):
            described = self.env.type_of(expr)
            if described in FROZEN_TYPES:
                return described
        return None

    def _check_target(self, target: ast.expr, stmt: ast.stmt) -> None:
        if self.allowed:
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_target(elt, stmt)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        source = self._frozen_receiver(target.value)
        if source is not None:
            self._report(
                "SN001",
                stmt,
                f"mutation of frozen snapshot (via {source}); captured "
                f"views are immutable once published",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        # writeable = True on a captured array's flags
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "flags"
                and isinstance(node.value, ast.Constant)
                and node.value.value is True
                and not self.allowed
            ):
                self._report(
                    "SN002",
                    node,
                    "re-enabling writes on a captured array "
                    "(.flags.writeable = True) outside store internals",
                )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and not self.allowed:
            if func.attr == "setflags" and _sets_write_true(node):
                self._report(
                    "SN002",
                    node,
                    "arr.setflags(write=True) outside store internals",
                )
            elif func.attr in MUTATOR_METHODS:
                source = self._frozen_receiver(func.value)
                if source is not None:
                    self._report(
                        "SN001",
                        node,
                        f".{func.attr}() mutates frozen snapshot "
                        f"(via {source})",
                    )
        self.generic_visit(node)


def _sets_write_true(call: ast.Call) -> bool:
    for kw in call.keywords:
        if (
            kw.arg == "write"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
        ):
            return True
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and first.value is True:
            return True
    return False


def check_snapshots(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module, cls, method in iter_functions(project):
        walker = _SnapshotWalker(project, module, cls, method, findings)
        for stmt in method.node.body:
            walker.visit(stmt)
    return findings
