"""Entry point: ``python -m repro.analysis [paths...]``."""

from repro.analysis.cli import main

raise SystemExit(main())
