"""Secondary indexes over :class:`~repro.db.table.Table` columns.

Two index flavours cover the access paths the SPA pipelines need:

* :class:`HashIndex` — equality lookups (user id → event rows).
* :class:`SortedIndex` — range scans (timestamp windows, score bands).

Indexes snapshot the table version at build time.  Reads through a stale
index raise :class:`StaleIndexError` unless the index was created with
``auto_refresh=True``, in which case it silently rebuilds first.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from repro.db.table import Table


class StaleIndexError(RuntimeError):
    """Raised when reading through an index built against an older table."""


class _BaseIndex:
    def __init__(self, table: Table, column: str, auto_refresh: bool = False) -> None:
        self.table = table
        self.column = column
        self.auto_refresh = auto_refresh
        self._built_version = -1
        self.refresh()

    @property
    def is_stale(self) -> bool:
        """True when the table has changed since the index was built."""
        return self._built_version != self.table.version

    def refresh(self) -> None:
        """Rebuild the index from the table's current contents."""
        self._build(self.table.column(self.column))
        self._built_version = self.table.version

    def _check(self) -> None:
        if self.is_stale:
            if self.auto_refresh:
                self.refresh()
            else:
                raise StaleIndexError(
                    f"index on {self.column!r} built at version "
                    f"{self._built_version}, table is at {self.table.version}"
                )

    def _build(self, values: np.ndarray) -> None:
        raise NotImplementedError


class HashIndex(_BaseIndex):
    """Equality index: column value → sorted array of row ids."""

    def _build(self, values: np.ndarray) -> None:
        buckets: dict[Hashable, list[int]] = {}
        for row_id, value in enumerate(values.tolist()):
            buckets.setdefault(value, []).append(row_id)
        self._buckets = {
            key: np.asarray(ids, dtype=np.int64) for key, ids in buckets.items()
        }

    def lookup(self, value: Any) -> np.ndarray:
        """Row ids whose column equals ``value`` (empty array if none)."""
        self._check()
        return self._buckets.get(value, np.empty(0, dtype=np.int64))

    def contains(self, value: Any) -> bool:
        """Whether any row has this value."""
        self._check()
        return value in self._buckets

    def keys(self) -> list[Any]:
        """All distinct indexed values."""
        self._check()
        return list(self._buckets.keys())

    def __len__(self) -> int:
        self._check()
        return len(self._buckets)


class SortedIndex(_BaseIndex):
    """Order index supporting range queries via binary search."""

    def _build(self, values: np.ndarray) -> None:
        # Object (string) columns sort fine through argsort on an object
        # array; numeric columns take the fast numpy path.
        self._order = np.argsort(values, kind="stable")
        self._sorted = values[self._order]

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> np.ndarray:
        """Row ids with values in the interval [low, high].

        ``None`` bounds are open-ended.  Inclusivity of each endpoint is
        controlled independently so callers can express half-open windows
        (the sessionizer uses ``[start, end)`` windows).
        """
        self._check()
        lo_pos = 0
        hi_pos = len(self._sorted)
        if low is not None:
            side = "left" if include_low else "right"
            lo_pos = int(np.searchsorted(self._sorted, low, side=side))
        if high is not None:
            side = "right" if include_high else "left"
            hi_pos = int(np.searchsorted(self._sorted, high, side=side))
        if hi_pos < lo_pos:
            hi_pos = lo_pos
        return np.sort(self._order[lo_pos:hi_pos])

    def min(self) -> Any:
        """Smallest indexed value (raises on empty table)."""
        self._check()
        if len(self._sorted) == 0:
            raise ValueError("min() on empty index")
        return self._sorted[0]

    def max(self) -> Any:
        """Largest indexed value (raises on empty table)."""
        self._check()
        if len(self._sorted) == 0:
            raise ValueError("max() on empty index")
        return self._sorted[-1]
