"""A named-table catalog with directory persistence.

The paper's SPA "exploits heterogeneous, multi-dimensional and massive
databases" — socio-demographic tables, weblog tables, transaction tables,
EIT answer tables.  :class:`Catalog` is the registry holding them: named
tables with create/get/drop, plus :meth:`Catalog.save` / :meth:`Catalog.load`
that persist the whole collection to a directory of ``.npz`` pages with a
JSON manifest.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.db.schema import Schema
from repro.db.storage import (
    StorageError,
    load_array_page,
    load_table,
    save_array_page,
    save_table,
)
from repro.db.table import Table

_MANIFEST = "catalog.json"


class CatalogError(KeyError):
    """Raised for unknown or duplicate table names."""


class Catalog:
    """A mutable registry of named tables, array pages and metadata.

    Tables are the schema-typed interchange format; *array pages* are
    dense ndarrays persisted as raw ``.npy`` files so that
    :meth:`load` can memory-map them read-only (``mmap_arrays=True``) —
    the layout serving replicas share.  ``meta`` is a small
    JSON-serializable dict carried in the manifest for whatever layout
    bookkeeping the owner needs (e.g. column orders).
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._arrays: dict[str, np.ndarray] = {}
        self.meta: dict[str, Any] = {}

    # -- table lifecycle ---------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create (and register) an empty table."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(schema, name=name)
        self._tables[name] = table
        return table

    def register(self, table: Table, name: str | None = None) -> Table:
        """Register an existing table under ``name`` (or its own name)."""
        key = name or table.name
        if not key:
            raise CatalogError("cannot register an unnamed table without a name")
        if key in self._tables:
            raise CatalogError(f"table {key!r} already exists")
        table.name = key
        self._tables[key] = table
        return table

    def get(self, name: str) -> Table:
        """Fetch a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; have {sorted(self._tables)}"
            ) from None

    def drop(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]

    # -- array pages -------------------------------------------------------

    def put_array(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register a dense array page under ``name``."""
        if not name:
            raise CatalogError("array page needs a name")
        if name in self._arrays:
            raise CatalogError(f"array {name!r} already exists")
        array = np.asarray(array)
        if array.dtype == object:
            raise CatalogError("object-dtype arrays cannot be pages")
        self._arrays[name] = array
        return array

    def array(self, name: str) -> np.ndarray:
        """Fetch an array page by name."""
        try:
            return self._arrays[name]
        except KeyError:
            raise CatalogError(
                f"unknown array {name!r}; have {sorted(self._arrays)}"
            ) from None

    @property
    def arrays(self) -> dict[str, np.ndarray]:
        """The registered array pages (treat as read-only)."""
        return self._arrays

    def array_names(self) -> list[str]:
        """Sorted names of all registered array pages."""
        return sorted(self._arrays)

    # -- introspection -------------------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tables))

    def __len__(self) -> int:
        return len(self._tables)

    def table_names(self) -> list[str]:
        """Sorted names of all registered tables."""
        return sorted(self._tables)

    def describe(self) -> dict[str, dict]:
        """Summary of every table: row count and column names."""
        return {
            name: {
                "rows": len(table),
                "columns": table.schema.names,
            }
            for name, table in sorted(self._tables.items())
        }

    # -- persistence ----------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        """Persist tables (npz), array pages (npy) and meta to ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest: dict[str, Any] = {"tables": {}}
        for name, table in self._tables.items():
            filename = f"{name}.npz"
            save_table(table, directory / filename)
            manifest["tables"][name] = filename
        if self._arrays:
            manifest["arrays"] = {}
            for name, array in self._arrays.items():
                filename = f"{name}.npy"
                save_array_page(array, directory / filename)
                manifest["arrays"][name] = filename
        if self.meta:
            manifest["meta"] = self.meta
        with (directory / _MANIFEST).open("w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
        return directory

    @classmethod
    def load(
        cls, directory: str | Path, mmap_arrays: bool = False
    ) -> "Catalog":
        """Load a catalog previously written with :meth:`save`.

        ``mmap_arrays=True`` memory-maps every array page read-only
        instead of copying it into process memory; tables always load
        copy-wise (zip archives cannot back a memmap).
        """
        directory = Path(directory)
        manifest_path = directory / _MANIFEST
        if not manifest_path.exists():
            raise StorageError(f"no catalog manifest at {manifest_path}")
        with manifest_path.open(encoding="utf-8") as fh:
            manifest = json.load(fh)
        catalog = cls()
        for name, filename in manifest["tables"].items():
            catalog.register(load_table(directory / filename, name=name))
        for name, filename in manifest.get("arrays", {}).items():
            catalog._arrays[name] = load_array_page(
                directory / filename, mmap=mmap_arrays
            )
        catalog.meta = manifest.get("meta", {})
        return catalog
