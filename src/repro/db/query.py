"""Composable queries over columnar tables.

:class:`Query` is a small relational-algebra builder: ``where`` composes
vectorized predicates, ``select`` projects, ``order_by`` sorts, ``group_by``
aggregates, and :func:`hash_join` combines tables.  Queries are lazy — the
plan executes on :meth:`Query.to_table` / :meth:`Query.rows` /
aggregation terminals — which lets SPA's pre-processing pipelines stack
filters without materializing intermediates.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.db.schema import Column, ColumnType, Schema, SchemaError
from repro.db.table import Table

#: Predicate operators supported by :meth:`Query.where`.
_OPERATORS: dict[str, Callable[[np.ndarray, Any], np.ndarray]] = {
    "==": lambda col, v: col == v,
    "!=": lambda col, v: col != v,
    "<": lambda col, v: col < v,
    "<=": lambda col, v: col <= v,
    ">": lambda col, v: col > v,
    ">=": lambda col, v: col >= v,
    "in": lambda col, v: np.isin(col, list(v)),
    "not in": lambda col, v: ~np.isin(col, list(v)),
}

#: Aggregation functions supported by :meth:`Query.group_by` / aggregate.
_AGGREGATES: dict[str, Callable[[np.ndarray], Any]] = {
    "sum": lambda a: a.sum(),
    "min": lambda a: a.min(),
    "max": lambda a: a.max(),
    "mean": lambda a: float(np.mean(a)),
    "count": lambda a: int(a.size),
    "nunique": lambda a: int(len(set(a.tolist()))),
}


class QueryError(ValueError):
    """Raised for malformed query plans."""


class Query:
    """A lazy filter/project/sort plan over a :class:`Table`."""

    def __init__(self, table: Table) -> None:
        self._table = table
        self._predicates: list[tuple[str, str, Any]] = []
        self._projection: list[str] | None = None
        self._ordering: list[tuple[str, bool]] = []
        self._limit: int | None = None

    # -- builders ---------------------------------------------------------

    def where(self, column: str, op: str, value: Any) -> "Query":
        """Add a predicate; multiple predicates AND together."""
        if op not in _OPERATORS:
            raise QueryError(f"unknown operator {op!r}; have {sorted(_OPERATORS)}")
        if column not in self._table.schema:
            raise QueryError(f"unknown column {column!r}")
        self._predicates.append((column, op, value))
        return self

    def where_fn(self, column: str, fn: Callable[[np.ndarray], np.ndarray]) -> "Query":
        """Add an arbitrary vectorized predicate on one column."""
        if column not in self._table.schema:
            raise QueryError(f"unknown column {column!r}")
        self._predicates.append((column, "fn", fn))
        return self

    def select(self, columns: Sequence[str]) -> "Query":
        """Project to the given columns (in the given order)."""
        for column in columns:
            if column not in self._table.schema:
                raise QueryError(f"unknown column {column!r}")
        self._projection = list(columns)
        return self

    def order_by(self, column: str, descending: bool = False) -> "Query":
        """Sort by a column; later calls break ties of earlier ones."""
        if column not in self._table.schema:
            raise QueryError(f"unknown column {column!r}")
        self._ordering.append((column, descending))
        return self

    def limit(self, n: int) -> "Query":
        """Keep at most ``n`` rows after filtering and ordering."""
        if n < 0:
            raise QueryError(f"negative limit {n}")
        self._limit = n
        return self

    # -- execution ----------------------------------------------------------

    def _selected_ids(self) -> np.ndarray:
        n = len(self._table)
        keep = np.ones(n, dtype=bool)
        for column, op, value in self._predicates:
            data = self._table.column(column)
            if op == "fn":
                result = np.asarray(value(data), dtype=bool)
                if result.shape != (n,):
                    raise QueryError("where_fn predicate returned wrong shape")
                keep &= result
            else:
                keep &= np.asarray(_OPERATORS[op](data, value), dtype=bool)
        ids = np.nonzero(keep)[0]
        if self._ordering:
            # Stable sorts applied from the least-significant key backwards
            # give lexicographic multi-key ordering.
            for column, descending in reversed(self._ordering):
                values = self._table.column(column)[ids]
                order = np.argsort(values, kind="stable")
                if descending:
                    order = order[::-1]
                ids = ids[order]
        if self._limit is not None:
            ids = ids[: self._limit]
        return ids

    def row_ids(self) -> np.ndarray:
        """Row ids of the original table matching this plan, post-ordering."""
        return self._selected_ids()

    def to_table(self, name: str = "") -> Table:
        """Execute and materialize the result as a new table."""
        ids = self._selected_ids()
        result = self._table.take(ids, name=name)
        if self._projection is not None:
            projected_schema = result.schema.project(self._projection)
            return Table.from_columns(
                projected_schema,
                {c: result.column(c) for c in self._projection},
                name=name,
            )
        return result

    def rows(self) -> Iterable[dict[str, Any]]:
        """Execute and yield result rows as dicts."""
        return self.to_table().rows()

    def count(self) -> int:
        """Number of rows matching the predicates."""
        return int(self._selected_ids().size)

    def aggregate(self, spec: dict[str, str]) -> dict[str, Any]:
        """Whole-result aggregates: ``{"amount": "sum", "user_id": "nunique"}``."""
        ids = self._selected_ids()
        out: dict[str, Any] = {}
        for column, fn_name in spec.items():
            if fn_name not in _AGGREGATES:
                raise QueryError(f"unknown aggregate {fn_name!r}")
            values = self._table.column(column)[ids]
            if values.size == 0 and fn_name in ("min", "max", "mean"):
                out[f"{fn_name}({column})"] = None
            else:
                out[f"{fn_name}({column})"] = _AGGREGATES[fn_name](values)
        return out

    def group_by(self, key: str, spec: dict[str, str]) -> Table:
        """Group matching rows by ``key`` and aggregate per group.

        Returns a table with the key column plus one ``fn(column)`` column
        per aggregation, ordered by key.
        """
        if key not in self._table.schema:
            raise QueryError(f"unknown column {key!r}")
        for column, fn_name in spec.items():
            if fn_name not in _AGGREGATES:
                raise QueryError(f"unknown aggregate {fn_name!r}")
            if column not in self._table.schema:
                raise QueryError(f"unknown column {column!r}")

        ids = self._selected_ids()
        keys = self._table.column(key)[ids]
        groups: dict[Any, list[int]] = {}
        for position, value in enumerate(keys.tolist()):
            groups.setdefault(value, []).append(position)

        key_ctype = self._table.schema.column(key).ctype
        out_columns: list[Column] = [Column(key, key_ctype)]
        for column, fn_name in spec.items():
            out_ctype = (
                ColumnType.INT64
                if fn_name in ("count", "nunique")
                else ColumnType.FLOAT64
            )
            out_columns.append(Column(f"{fn_name}({column})", out_ctype))
        out_schema = Schema(out_columns)

        sorted_keys = sorted(groups)
        data: dict[str, list[Any]] = {c.name: [] for c in out_columns}
        for group_key in sorted_keys:
            positions = np.asarray(groups[group_key], dtype=np.int64)
            data[key].append(group_key)
            for column, fn_name in spec.items():
                values = self._table.column(column)[ids][positions]
                result = _AGGREGATES[fn_name](values)
                data[f"{fn_name}({column})"].append(
                    result if fn_name in ("count", "nunique") else float(result)
                )
        return Table.from_columns(out_schema, data, name=f"groupby({key})")


def hash_join(
    left: Table,
    right: Table,
    on: str,
    right_on: str | None = None,
    suffix: str = "_right",
) -> Table:
    """Inner hash join of two tables on equality of one column each.

    Right-side columns whose names collide with left-side names are renamed
    with ``suffix``.  The join key appears once (from the left table).
    """
    right_key = right_on or on
    if on not in left.schema:
        raise QueryError(f"unknown left join column {on!r}")
    if right_key not in right.schema:
        raise QueryError(f"unknown right join column {right_key!r}")

    buckets: dict[Any, list[int]] = {}
    for row_id, value in enumerate(right.column(right_key).tolist()):
        buckets.setdefault(value, []).append(row_id)

    left_ids: list[int] = []
    right_ids: list[int] = []
    for row_id, value in enumerate(left.column(on).tolist()):
        for match in buckets.get(value, ()):
            left_ids.append(row_id)
            right_ids.append(match)

    out_columns: list[Column] = list(left.schema.columns)
    rename: dict[str, str] = {}
    for column in right.schema.columns:
        if column.name == right_key:
            continue
        out_name = column.name
        if out_name in left.schema:
            out_name = f"{out_name}{suffix}"
            if out_name in left.schema:
                raise SchemaError(f"join name collision on {out_name!r}")
        rename[column.name] = out_name
        out_columns.append(Column(out_name, column.ctype, column.description))
    out_schema = Schema(out_columns)

    left_idx = np.asarray(left_ids, dtype=np.int64)
    right_idx = np.asarray(right_ids, dtype=np.int64)
    data: dict[str, Any] = {
        column.name: left.column(column.name)[left_idx]
        for column in left.schema.columns
    }
    for original, out_name in rename.items():
        data[out_name] = right.column(original)[right_idx]
    return Table.from_columns(out_schema, data, name=f"join({left.name},{right.name})")
