"""Durable persistence for tables.

Two formats, chosen by extension of the target path:

* ``.jsonl`` — one JSON object per row with a sidecar ``.schema.json``;
  human-inspectable, used for small reference tables.
* ``.npz`` — numpy-compressed column pages with the schema embedded;
  the fast path for large event tables.

Both round-trip exactly through :func:`save_table` / :func:`load_table`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.db.schema import ColumnType, Schema
from repro.db.table import Table


class StorageError(IOError):
    """Raised for unreadable or malformed table files."""


def save_table(table: Table, path: str | Path) -> Path:
    """Persist ``table`` to ``path`` (.jsonl or .npz); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".jsonl":
        _save_jsonl(table, path)
    elif path.suffix == ".npz":
        _save_npz(table, path)
    else:
        raise StorageError(f"unsupported extension {path.suffix!r} (.jsonl/.npz)")
    return path


def save_array_page(array: np.ndarray, path: str | Path) -> Path:
    """Persist one dense ndarray as a raw ``.npy`` page.

    Raw pages exist next to the ``.npz`` tables because only they can be
    memory-mapped: zip archives (even uncompressed) cannot back an
    ``np.memmap``, so serving replicas that want to share one physical
    copy of a column read the ``.npy`` layout.
    """
    path = Path(path)
    if path.suffix != ".npy":
        raise StorageError(f"array pages must be .npy, got {path.suffix!r}")
    array = np.asarray(array)
    if array.dtype == object:
        raise StorageError("object-dtype arrays cannot be saved as pages")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.save(path, np.ascontiguousarray(array), allow_pickle=False)
    return path


def load_array_page(path: str | Path, mmap: bool = False) -> np.ndarray:
    """Load a page written by :func:`save_array_page`.

    ``mmap=True`` returns a *read-only* memory map: the bytes stay in the
    page cache, shared across every process that maps the same file, and
    any write attempt raises.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such array page: {path}")
    try:
        return np.load(path, mmap_mode="r" if mmap else None,
                       allow_pickle=False)
    except ValueError as exc:
        raise StorageError(f"malformed array page {path}: {exc}") from exc


def load_table(path: str | Path, name: str = "") -> Table:
    """Load a table previously written by :func:`save_table`."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such table file: {path}")
    if path.suffix == ".jsonl":
        return _load_jsonl(path, name=name)
    if path.suffix == ".npz":
        return _load_npz(path, name=name)
    raise StorageError(f"unsupported extension {path.suffix!r} (.jsonl/.npz)")


# -- jsonl ------------------------------------------------------------------


def _schema_sidecar(path: Path) -> Path:
    return path.with_suffix(".schema.json")


def _save_jsonl(table: Table, path: Path) -> None:
    with _schema_sidecar(path).open("w", encoding="utf-8") as fh:
        json.dump(table.schema.to_dict(), fh, indent=2)
    with path.open("w", encoding="utf-8") as fh:
        for row in table.rows():
            fh.write(json.dumps(row, sort_keys=True))
            fh.write("\n")


def _load_jsonl(path: Path, name: str) -> Table:
    sidecar = _schema_sidecar(path)
    if not sidecar.exists():
        raise StorageError(f"missing schema sidecar: {sidecar}")
    with sidecar.open(encoding="utf-8") as fh:
        schema = Schema.from_dict(json.load(fh))
    table = Table(schema, name=name or path.stem)
    with path.open(encoding="utf-8") as fh:
        rows = (json.loads(line) for line in fh if line.strip())
        table.extend(rows)
    return table


# -- npz --------------------------------------------------------------------


def _save_npz(table: Table, path: Path) -> None:
    payload: dict[str, np.ndarray] = {
        "__schema__": np.asarray([json.dumps(table.schema.to_dict())], dtype=np.str_)
    }
    for column in table.schema:
        data = table.column(column.name)
        if column.ctype is ColumnType.STRING:
            # Store strings as a unicode array: object arrays need pickle,
            # which we avoid for durability and safety.
            payload[f"col::{column.name}"] = np.asarray(data, dtype=np.str_)
        else:
            payload[f"col::{column.name}"] = np.asarray(data)
    np.savez_compressed(path, **payload)


def _load_npz(path: Path, name: str) -> Table:
    with np.load(path, allow_pickle=False) as archive:
        if "__schema__" not in archive:
            raise StorageError(f"{path} is not a table archive (missing schema)")
        schema = Schema.from_dict(json.loads(str(archive["__schema__"][0])))
        columns: dict[str, np.ndarray] = {}
        for column in schema:
            key = f"col::{column.name}"
            if key not in archive:
                raise StorageError(f"{path} missing column {column.name!r}")
            data = archive[key]
            if column.ctype is ColumnType.STRING:
                data = data.astype(object)
            columns[column.name] = data
    return Table.from_columns(schema, columns, name=name or path.stem)
