"""Embedded columnar database substrate.

The paper's SPA platform "exploits heterogeneous, multi-dimensional and
massive databases to extract, pre-process and deliver distilled user
LifeLogs" (Section 4).  This subpackage provides that substrate: a small,
dependency-free, numpy-backed columnar store with typed schemas, hash and
sorted indexes, a composable query builder, and durable persistence.

It is intentionally an *embedded* engine (in the SQLite spirit): everything
runs in process, tables are columnar for fast analytical scans, and the
persistence format is a directory of JSON metadata plus ``.npz`` column
pages.

Public entry points
-------------------
:class:`~repro.db.schema.Schema` / :class:`~repro.db.schema.Column`
    Typed table definitions.
:class:`~repro.db.table.Table`
    The columnar table.
:class:`~repro.db.query.Query`
    Filter / project / aggregate / group / join builder.
:class:`~repro.db.index.HashIndex` / :class:`~repro.db.index.SortedIndex`
    Secondary indexes.
:class:`~repro.db.catalog.Catalog`
    A named collection of tables with directory persistence.
"""

from repro.db.catalog import Catalog
from repro.db.index import HashIndex, SortedIndex
from repro.db.query import Query
from repro.db.schema import Column, ColumnType, Schema, SchemaError
from repro.db.storage import load_table, save_table
from repro.db.table import Table

__all__ = [
    "Catalog",
    "Column",
    "ColumnType",
    "HashIndex",
    "Query",
    "Schema",
    "SchemaError",
    "SortedIndex",
    "Table",
    "load_table",
    "save_table",
]
