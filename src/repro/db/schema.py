"""Typed schemas for the columnar store.

A :class:`Schema` is an ordered collection of :class:`Column` definitions.
Schemas validate and coerce Python values into the numpy representation a
:class:`~repro.db.table.Table` stores, so that every downstream consumer
(indexes, queries, persistence) can rely on uniform column dtypes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

import numpy as np


class SchemaError(ValueError):
    """Raised when a schema is malformed or a value violates it."""


class ColumnType(enum.Enum):
    """Storage types supported by the engine.

    The set is deliberately small: the LifeLog pipelines of the paper only
    require integers (identifiers, counters), floats (scores, weights),
    booleans (flags) and strings (action names, demographic categories).
    """

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store this column type."""
        if self is ColumnType.INT64:
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT64:
            return np.dtype(np.float64)
        if self is ColumnType.BOOL:
            return np.dtype(np.bool_)
        return np.dtype(object)

    def coerce(self, value: Any) -> Any:
        """Coerce a single Python value to this column type.

        Raises :class:`SchemaError` if the value cannot be represented.
        """
        try:
            if self is ColumnType.INT64:
                if isinstance(value, bool):
                    raise SchemaError(f"bool {value!r} is not a valid INT64")
                if isinstance(value, float) and not value.is_integer():
                    raise SchemaError(f"non-integral float {value!r} for INT64")
                return int(value)
            if self is ColumnType.FLOAT64:
                if isinstance(value, bool):
                    raise SchemaError(f"bool {value!r} is not a valid FLOAT64")
                return float(value)
            if self is ColumnType.BOOL:
                if isinstance(value, (bool, np.bool_)):
                    return bool(value)
                raise SchemaError(f"{value!r} is not a valid BOOL")
            if isinstance(value, str):
                return value
            raise SchemaError(f"{value!r} is not a valid STRING")
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"cannot coerce {value!r} to {self.value}") from exc


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Parameters
    ----------
    name:
        Column name; must be a non-empty identifier-like string.
    ctype:
        The :class:`ColumnType` of the stored values.
    description:
        Optional human-readable documentation carried in catalog metadata.
    """

    name: str
    ctype: ColumnType
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass
class Schema:
    """An ordered, name-unique collection of columns."""

    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")
        self._by_name = {column.name: i for i, column in enumerate(self.columns)}

    # -- introspection -----------------------------------------------------

    @property
    def names(self) -> list[str]:
        """Column names in schema order."""
        return [column.name for column in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def column(self, name: str) -> Column:
        """Look up a column definition by name."""
        try:
            return self.columns[self._by_name[name]]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}; have {self.names}") from None

    def index_of(self, name: str) -> int:
        """Position of ``name`` in schema order."""
        if name not in self._by_name:
            raise SchemaError(f"unknown column {name!r}; have {self.names}")
        return self._by_name[name]

    # -- validation --------------------------------------------------------

    def coerce_row(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validate and coerce a row dict against the schema.

        Every schema column must be present; unexpected keys are rejected so
        that silent typos do not create ragged data.
        """
        unexpected = set(row) - set(self._by_name)
        if unexpected:
            raise SchemaError(f"unexpected columns: {sorted(unexpected)}")
        missing = set(self._by_name) - set(row)
        if missing:
            raise SchemaError(f"missing columns: {sorted(missing)}")
        return {
            column.name: column.ctype.coerce(row[column.name])
            for column in self.columns
        }

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema([self.column(name) for name in names])

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "columns": [
                {
                    "name": column.name,
                    "ctype": column.ctype.value,
                    "description": column.description,
                }
                for column in self.columns
            ]
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Schema":
        """Inverse of :meth:`to_dict`."""
        return cls(
            [
                Column(
                    name=item["name"],
                    ctype=ColumnType(item["ctype"]),
                    description=item.get("description", ""),
                )
                for item in payload["columns"]
            ]
        )
