"""Columnar in-memory tables.

A :class:`Table` stores each column as a numpy array (``object`` dtype for
strings), which makes the analytical access patterns of the SPA pipelines —
full-column scans, vectorized predicates, group-bys over millions of rows —
cheap, while still supporting row-at-a-time appends for event ingestion.

Tables carry a monotonically increasing ``version`` so that secondary
indexes (:mod:`repro.db.index`) can detect staleness.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.db.schema import ColumnType, Schema, SchemaError

_GROWTH_FACTOR = 2
_INITIAL_CAPACITY = 16


def _bulk_compatible(ctype: ColumnType, values: Any) -> bool:
    """Whether ``values`` is a typed ndarray that needs no element coercion.

    Mirrors :meth:`ColumnType.coerce` strictness: ints never come from
    floats or bools, floats never from bools, bools only from bools.
    """
    if not isinstance(values, np.ndarray):
        return False
    kind = values.dtype.kind
    if ctype is ColumnType.INT64:
        return kind in "iu"
    if ctype is ColumnType.FLOAT64:
        return kind in "iuf"
    if ctype is ColumnType.BOOL:
        return kind == "b"
    return False


class Table:
    """A typed, columnar, append-only table.

    Parameters
    ----------
    schema:
        Column definitions; fixed for the table's lifetime.
    name:
        Optional name used in reprs and catalog listings.
    """

    def __init__(self, schema: Schema, name: str = "") -> None:
        self.schema = schema
        self.name = name
        self._length = 0
        self._capacity = _INITIAL_CAPACITY
        self._columns: dict[str, np.ndarray] = {
            column.name: np.empty(self._capacity, dtype=column.ctype.numpy_dtype)
            for column in schema
        }
        self.version = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(
        cls, schema: Schema, rows: Iterable[dict[str, Any]], name: str = ""
    ) -> "Table":
        """Build a table from an iterable of row dicts."""
        table = cls(schema, name=name)
        table.extend(rows)
        return table

    @classmethod
    def from_columns(
        cls, schema: Schema, columns: dict[str, Sequence[Any]], name: str = ""
    ) -> "Table":
        """Build a table directly from column sequences (bulk path).

        All columns must be present and of equal length.  Values are coerced
        element-wise, so this is safe (if slower) for untrusted input.
        """
        missing = set(schema.names) - set(columns)
        if missing:
            raise SchemaError(f"missing columns: {sorted(missing)}")
        unexpected = set(columns) - set(schema.names)
        if unexpected:
            raise SchemaError(f"unexpected columns: {sorted(unexpected)}")
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged columns: {lengths}")
        table = cls(schema, name=name)
        n = next(iter(lengths.values()), 0)
        if n == 0:
            return table
        table._ensure_capacity(n)
        for column in schema:
            values = columns[column.name]
            if _bulk_compatible(column.ctype, values):
                # Typed numpy columns skip the per-element coercion loop:
                # the dtype already guarantees what coerce() would check.
                table._columns[column.name][:n] = values.astype(
                    column.ctype.numpy_dtype, copy=False
                )
                continue
            coerced = [column.ctype.coerce(v) for v in values]
            table._columns[column.name][:n] = np.asarray(
                coerced, dtype=column.ctype.numpy_dtype
            )
        table._length = n
        table.version += 1
        return table

    # -- size management -----------------------------------------------------

    def _ensure_capacity(self, extra: int) -> None:
        needed = self._length + extra
        if needed <= self._capacity:
            return
        new_capacity = max(self._capacity, _INITIAL_CAPACITY)
        while new_capacity < needed:
            new_capacity *= _GROWTH_FACTOR
        for name, array in self._columns.items():
            grown = np.empty(new_capacity, dtype=array.dtype)
            grown[: self._length] = array[: self._length]
            self._columns[name] = grown
        self._capacity = new_capacity

    # -- mutation --------------------------------------------------------

    def append(self, row: dict[str, Any]) -> int:
        """Append one row; returns the new row's id (position)."""
        coerced = self.schema.coerce_row(row)
        self._ensure_capacity(1)
        for name, value in coerced.items():
            self._columns[name][self._length] = value
        self._length += 1
        self.version += 1
        return self._length - 1

    def extend(self, rows: Iterable[dict[str, Any]]) -> list[int]:
        """Append many rows; returns their row ids."""
        ids = []
        for row in rows:
            coerced = self.schema.coerce_row(row)
            self._ensure_capacity(1)
            for name, value in coerced.items():
                self._columns[name][self._length] = value
            ids.append(self._length)
            self._length += 1
        if ids:
            self.version += 1
        return ids

    # -- access ----------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def num_rows(self) -> int:
        """Number of rows currently stored."""
        return self._length

    def column(self, name: str) -> np.ndarray:
        """A read-only view of one column's live data."""
        if name not in self._columns:
            raise SchemaError(f"unknown column {name!r}; have {self.schema.names}")
        view = self._columns[name][: self._length]
        view.flags.writeable = False
        return view

    def row(self, row_id: int) -> dict[str, Any]:
        """Materialize one row as a plain dict."""
        if not 0 <= row_id < self._length:
            raise IndexError(f"row {row_id} out of range [0, {self._length})")
        return {
            name: self._to_python(self._columns[name][row_id], name)
            for name in self.schema.names
        }

    def _to_python(self, value: Any, column_name: str) -> Any:
        ctype = self.schema.column(column_name).ctype
        if ctype is ColumnType.INT64:
            return int(value)
        if ctype is ColumnType.FLOAT64:
            return float(value)
        if ctype is ColumnType.BOOL:
            return bool(value)
        return value

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate all rows as dicts (materializing lazily)."""
        for row_id in range(self._length):
            yield self.row(row_id)

    # -- bulk transforms ---------------------------------------------------

    def take(self, row_ids: Sequence[int] | np.ndarray, name: str = "") -> "Table":
        """A new table containing the given rows, in the given order."""
        ids = np.asarray(row_ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self._length):
            raise IndexError("row id out of range in take()")
        result = Table(self.schema, name=name or self.name)
        result._ensure_capacity(int(ids.size))
        for col in self.schema.names:
            result._columns[col][: ids.size] = self._columns[col][: self._length][ids]
        result._length = int(ids.size)
        result.version += 1
        return result

    def mask(self, predicate: np.ndarray, name: str = "") -> "Table":
        """A new table containing rows where ``predicate`` is True."""
        predicate = np.asarray(predicate, dtype=bool)
        if predicate.shape != (self._length,):
            raise ValueError(
                f"mask shape {predicate.shape} != ({self._length},)"
            )
        return self.take(np.nonzero(predicate)[0], name=name)

    def to_columns(self) -> dict[str, np.ndarray]:
        """Copies of all columns, keyed by name."""
        return {name: self.column(name).copy() for name in self.schema.names}

    def __repr__(self) -> str:
        label = self.name or "<anonymous>"
        return f"Table({label!r}, rows={self._length}, cols={self.schema.names})"
