"""Physiological signals, features, emotional mapping, commander advisor."""

import numpy as np
import pytest

from repro.physio.commander import CommanderAdvisor
from repro.physio.features import sliding_windows, window_features
from repro.physio.mapping import EmotionalMapper
from repro.physio.signals import PhysioSample, StressEpisode, generate_stream


class TestSignals:
    def test_deterministic_under_seed(self):
        a = generate_stream(60, firefighter_id=1, seed=3)
        b = generate_stream(60, firefighter_id=1, seed=3)
        assert [s.heart_rate for s in a] == [s.heart_rate for s in b]

    def test_one_hz_sampling(self):
        samples = generate_stream(120)
        assert len(samples) == 120
        assert samples[1].timestamp - samples[0].timestamp == 1.0

    def test_stress_raises_hr_and_gsr(self):
        samples = generate_stream(300, [StressEpisode(100, 200, 1.0)])
        calm = [s for s in samples if s.timestamp < 60]
        stressed = [s for s in samples if 120 <= s.timestamp < 180]
        assert np.mean([s.heart_rate for s in stressed]) > (
            np.mean([s.heart_rate for s in calm]) + 50
        )
        assert np.mean([s.gsr for s in stressed]) > np.mean(
            [s.gsr for s in calm]
        )

    def test_stress_drops_skin_temp(self):
        samples = generate_stream(300, [StressEpisode(100, 200, 1.0)])
        calm = np.mean([s.skin_temp for s in samples if s.timestamp < 60])
        stressed = np.mean(
            [s.skin_temp for s in samples if 120 <= s.timestamp < 180]
        )
        assert stressed < calm

    def test_episode_validation(self):
        with pytest.raises(ValueError):
            StressEpisode(100, 50)
        with pytest.raises(ValueError):
            StressEpisode(0, 10, intensity=0.0)

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            generate_stream(0)

    def test_physiological_ranges(self):
        samples = generate_stream(600, [StressEpisode(0, 600, 1.0)])
        for s in samples:
            assert 40 <= s.heart_rate <= 210
            assert s.gsr > 0
            assert 28 <= s.skin_temp <= 40


class TestFeatures:
    def test_window_count(self):
        samples = generate_stream(100)
        windows = sliding_windows(samples, window_seconds=30, step_seconds=10)
        assert len(windows) == 8

    def test_window_features_reflect_content(self):
        samples = [
            PhysioSample(float(i), 70.0 + i, 2.0, 33.0, 0.0) for i in range(30)
        ]
        features = window_features(samples)
        assert features.hr_slope == pytest.approx(1.0, abs=1e-9)
        assert features.hr_mean == pytest.approx(70.0 + 14.5)

    def test_gsr_delta(self):
        samples = [
            PhysioSample(float(i), 70.0, 2.0 + 0.1 * i, 33.0, 0.0)
            for i in range(10)
        ]
        assert window_features(samples).gsr_delta == pytest.approx(0.9)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            window_features([])

    def test_bad_window_params(self):
        with pytest.raises(ValueError):
            sliding_windows([], window_seconds=0)


class TestMapping:
    def make_features(self, hr, gsr, temp):
        samples = [PhysioSample(float(i), hr, gsr, temp, 0.0) for i in range(30)]
        return window_features(samples)

    def test_calm_low_arousal(self):
        mapper = EmotionalMapper()
        assert mapper.arousal(self.make_features(70, 2, 33)) < 0.15

    def test_stressed_high_arousal(self):
        mapper = EmotionalMapper()
        assert mapper.arousal(self.make_features(170, 11, 32)) > 0.85

    def test_fear_signature_negative_valence(self):
        mapper = EmotionalMapper()
        fear = self.make_features(170, 11, 31.8)  # high arousal + temp drop
        assert mapper.valence(fear) < -0.3

    def test_exertion_without_temp_drop_non_negative(self):
        mapper = EmotionalMapper()
        exertion = self.make_features(150, 8, 33.2)
        assert mapper.valence(exertion) >= 0.0

    def test_fear_state_dominated_by_frightened(self):
        mapper = EmotionalMapper()
        state = mapper.emotional_state(self.make_features(175, 11, 31.5))
        top = [name for name, __ in state.top(2)]
        assert "frightened" in top

    def test_calm_state_low_intensity_everywhere(self):
        mapper = EmotionalMapper()
        state = mapper.emotional_state(self.make_features(70, 2, 33))
        assert max(state.intensities.values()) < 0.4


class TestCommander:
    def test_alert_raised_during_sustained_stress(self):
        samples = generate_stream(400, [StressEpisode(100, 300, 1.0)], seed=2)
        advisor = CommanderAdvisor()
        assessments = advisor.assess_stream(7, samples)
        alerts = [a for a in assessments if a.alert]
        assert alerts
        assert all("rotate firefighter 7" in a.alert for a in alerts)
        assert all(100 <= a.window_end <= 340 for a in alerts)

    def test_no_alerts_when_calm(self):
        samples = generate_stream(300, seed=3)
        assessments = CommanderAdvisor().assess_stream(1, samples)
        assert not [a for a in assessments if a.alert]
        assert all(a.status == "fit" for a in assessments)

    def test_fitness_recovers_after_episode(self):
        samples = generate_stream(500, [StressEpisode(100, 200, 1.0)], seed=4)
        assessments = CommanderAdvisor().assess_stream(1, samples)
        during = [a.fitness for a in assessments if 150 <= a.window_end <= 200]
        after = [a.fitness for a in assessments if a.window_end > 400]
        assert min(during) < 0.6
        assert np.mean(after) > 0.8

    def test_separate_firefighters_tracked_independently(self):
        advisor = CommanderAdvisor()
        hot = generate_stream(200, [StressEpisode(0, 200, 1.0)], 1, seed=5)
        cold = generate_stream(200, firefighter_id=2, seed=5)
        a_hot = advisor.assess_stream(1, hot)
        a_cold = advisor.assess_stream(2, cold)
        assert np.mean([a.fitness for a in a_hot]) < np.mean(
            [a.fitness for a in a_cold]
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CommanderAdvisor(alert_threshold=0.0)
        with pytest.raises(ValueError):
            CommanderAdvisor(consecutive_for_alert=0)
