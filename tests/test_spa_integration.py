"""End-to-end SPA integration: the whole Fig. 3 platform on a small world."""

import numpy as np
import pytest

from repro import EngineConfig, SimulatedWorld, SmartPredictionAssistant


@pytest.fixture(scope="module")
def spa_run():
    world = SimulatedWorld.generate(n_users=600, n_courses=40, seed=7)
    spa = SmartPredictionAssistant(world, EngineConfig(seed=7))
    spa.bootstrap()
    results = spa.run_default_plan(n_warmups=2)
    return world, spa, results


class TestEndToEnd:
    def test_ten_campaigns_delivered(self, spa_run):
        __, __, results = spa_run
        assert len(results) == 10
        channels = [r.spec.channel for r in results]
        assert channels.count("push") == 8
        assert channels.count("newsletter") == 2

    def test_all_reported_campaigns_scored(self, spa_run):
        __, __, results = spa_run
        for result in results:
            scores, __o = result.scores_and_outcomes()
            assert len(scores) == result.n_targets

    def test_summary_in_plausible_band(self, spa_run):
        __, spa, results = spa_run
        summary = spa.summary(results)
        assert 0.05 < summary.average_performance < 0.45
        assert summary.total_useful_impacts > 0

    def test_redemption_curve_beats_random(self, spa_run):
        __, spa, results = spa_run
        assert spa.redemption_at(results, 0.4) > 0.45

    def test_redemption_curve_valid_shape(self, spa_run):
        __, spa, results = spa_run
        fractions, captured = spa.redemption_curve(results)
        assert captured[0] == 0.0
        assert captured[-1] == pytest.approx(1.0)
        assert np.all(np.diff(captured) >= -1e-12)

    def test_chart_renders(self, spa_run):
        __, spa, results = spa_run
        chart = spa.redemption_chart(results)
        assert "100%" in chart and "*" in chart

    def test_personalization_beats_baseline(self, spa_run):
        __, spa, results = spa_run
        baseline = spa.run_baseline_plan()
        assert spa.summary(results).average_performance > spa.summary(
            baseline
        ).average_performance

    def test_architecture_lists_five_components(self, spa_run):
        __, spa, __r = spa_run
        lines = spa.architecture()
        assert len(lines) == 6  # title + five agents

    def test_agent_bus_reaches_all_components(self, spa_run):
        world, spa, __ = spa_run
        replies = spa.ask_agent(
            "messaging",
            "messaging.assign",
            {"user_ids": [0, 1], "course_id": world.catalog.course_ids()[0]},
        )
        assert replies and replies[0].topic == "messaging.assigned"
        replies = spa.ask_agent(
            "attributes", "attributes.analyze", {"user_ids": [0]}
        )
        assert replies and replies[0].topic == "attributes.analyzed"

    def test_sums_learned_emotional_signal(self, spa_run):
        world, spa, __ = spa_run
        traits, ids = world.population.trait_matrix()
        learned = np.vstack(
            [spa.engine.sums.get(uid).emotional_vector() for uid in ids]
        )
        correlations = []
        for j in range(traits.shape[1]):
            if learned[:, j].std() > 0:
                correlations.append(
                    np.corrcoef(learned[:, j], traits[:, j])[0, 1]
                )
        assert np.mean(correlations) > 0.15

    def test_run_is_reproducible(self):
        def run():
            world = SimulatedWorld.generate(n_users=200, n_courses=20, seed=11)
            spa = SmartPredictionAssistant(world, EngineConfig(seed=11))
            spa.bootstrap()
            results = spa.run_default_plan(n_warmups=1)
            return spa.summary(results).average_performance

        assert run() == run()
