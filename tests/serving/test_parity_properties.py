"""Property-based parity: the vectorized batch path ≡ the scalar seed path.

Hypothesis drives random emotional profiles, item metadata and score
grids through both implementations:

* ``AdviceEngine.boosts_matrix`` / ``adjust_matrix`` against the scalar
  ``boosts`` / ``adjust_scores``;
* adapter ``score_batch`` grids against looped single-pair scores;
* ``RecommendationService.recommend`` ranking order against the seed's
  per-pair algorithm.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cf.mf import FunkSVD
from repro.cf.ratings import RatingMatrix
from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.emotions import EMOTION_NAMES
from repro.core.sum_model import SmartUserModel, SumRepository
from repro.serving import (
    FunkSVDScorer,
    LegacyScorerAdapter,
    RecommendationRequest,
    RecommendationService,
)

ATTRIBUTE_POOL = ("innovative", "challenging", "supportive", "online", "cheap")

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
gain = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
#: presence values beyond [0, 1] exercise the clamp in both paths
presence = st.floats(min_value=-0.5, max_value=1.5, allow_nan=False)
base_score = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


@st.composite
def domain_profiles(draw):
    emotions = draw(
        st.lists(
            st.sampled_from(EMOTION_NAMES), min_size=1, max_size=4,
            unique=True,
        )
    )
    links = {
        emotion: draw(
            st.dictionaries(
                st.sampled_from(ATTRIBUTE_POOL), gain,
                min_size=1, max_size=3,
            )
        )
        for emotion in emotions
    }
    return DomainProfile("prop", links)


@st.composite
def user_models(draw, user_id=0):
    model = SmartUserModel(user_id)
    for emotion in draw(
        st.lists(
            st.sampled_from(EMOTION_NAMES), min_size=0, max_size=5,
            unique=True,
        )
    ):
        model.activate_emotion(emotion, draw(unit))
        model.set_sensibility(emotion, draw(unit))
    return model


@st.composite
def item_worlds(draw):
    n_items = draw(st.integers(min_value=1, max_value=6))
    items = [f"item-{j}" for j in range(n_items)]
    attributes = {
        item: draw(
            st.dictionaries(
                st.sampled_from(ATTRIBUTE_POOL), presence,
                min_size=0, max_size=4,
            )
        )
        for item in items
    }
    return items, attributes


@st.composite
def advice_cases(draw):
    profile = draw(domain_profiles())
    models = [
        draw(user_models(user_id=uid))
        for uid in range(draw(st.integers(min_value=1, max_value=5)))
    ]
    items, attributes = draw(item_worlds())
    base = np.asarray(
        [
            [draw(base_score) for __ in items]
            for __ in models
        ]
    )
    scale = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    return AdviceEngine(gain_scale=scale), profile, models, items, attributes, base


class TestAdviceParity:
    @settings(max_examples=60, deadline=None)
    @given(case=advice_cases())
    def test_boosts_matrix_equals_scalar_boosts(self, case):
        engine, profile, models, __items, __attrs, __base = case
        matrix = engine.boosts_matrix(models, profile)
        attributes = profile.item_attributes()
        assert matrix.shape == (len(models), len(attributes))
        for row, model in enumerate(models):
            scalar = engine.boosts(model, profile)
            for col, attribute in enumerate(attributes):
                assert matrix[row, col] == pytest.approx(
                    scalar[attribute], rel=1e-9, abs=1e-12
                )

    @settings(max_examples=60, deadline=None)
    @given(case=advice_cases())
    def test_adjust_matrix_equals_scalar_adjust_scores(self, case):
        engine, profile, models, items, attributes, base = case
        batch = engine.adjust_matrix(base, models, items, attributes, profile)
        for row, model in enumerate(models):
            scalar = engine.adjust_scores(
                {item: base[row, col] for col, item in enumerate(items)},
                attributes, model, profile,
            )
            for col, item in enumerate(items):
                assert batch[row, col] == pytest.approx(
                    scalar[item], rel=1e-9, abs=1e-12
                )

    @settings(max_examples=25, deadline=None)
    @given(case=advice_cases())
    def test_multipliers_always_positive(self, case):
        engine, profile, models, items, attributes, __base = case
        multiplier = engine.multiplier_matrix(
            models, items, attributes, profile
        )
        assert (multiplier > 0).all()


class TestAdapterParity:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_funk_svd_batch_equals_loop(self, seed):
        rng = np.random.default_rng(seed)
        triplets = [
            (int(u), int(i), float(rng.integers(1, 6)))
            for u in range(6)
            for i in rng.choice(10, size=4, replace=False)
        ]
        model = FunkSVD(rank=2, epochs=2, seed=seed).fit(
            RatingMatrix(triplets)
        )
        scorer = FunkSVDScorer(model)
        users = [0, 3, 5, 42]
        items = [0, 7, 9, 99]
        batch = scorer.score_batch(users, items)
        for row, user in enumerate(users):
            for col, item in enumerate(items):
                assert batch[row, col] == pytest.approx(
                    model.predict(user, item), rel=1e-12, abs=1e-12
                )

    @settings(max_examples=30, deadline=None)
    @given(
        case=advice_cases(),
        offsets=st.lists(base_score, min_size=1, max_size=5),
    )
    def test_legacy_adapter_batch_equals_loop(self, case, offsets):
        __engine, __profile, models, items, __attrs, __base = case
        repo = SumRepository()
        for model in models:
            repo._models[model.user_id] = model

        def base_scorer(model, item):
            return offsets[model.user_id % len(offsets)] + len(str(item))

        scorer = LegacyScorerAdapter(base_scorer, repo)
        ids = repo.user_ids()
        batch = scorer.score_batch(ids, items)
        for row, uid in enumerate(ids):
            for col, item in enumerate(items):
                assert batch[row, col] == base_scorer(repo.get(uid), item)


class TestRankingEquivalence:
    # derandomized: exact rank order is ulp-sensitive where the exp/log
    # path and the scalar path round differently on conspiring inputs
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(case=advice_cases())
    def test_service_ranking_equals_seed_algorithm(self, case):
        engine, profile, models, items, attributes, base = case
        repo = SumRepository()
        for model in models:
            repo._models[model.user_id] = model
        lookup = {
            (model.user_id, item): base[row, col]
            for row, model in enumerate(models)
            for col, item in enumerate(items)
        }

        def base_scorer(model, item):
            return lookup[(model.user_id, item)]

        service = RecommendationService(
            sums=repo,
            domain_profile=profile,
            item_attributes=attributes,
            advice=engine,
        )
        service.register("base", base_scorer)

        for row, model in enumerate(models):
            scalar = engine.adjust_scores(
                {item: base[row, col] for col, item in enumerate(items)},
                attributes, model, profile,
            )
            expected = sorted(items, key=lambda it: (-scalar[it], it))
            response = service.recommend(RecommendationRequest(
                user_id=model.user_id, items=items, k=len(items),
            ))
            assert response.items == expected
