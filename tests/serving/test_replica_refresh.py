"""The refresh protocol end to end: checkpoint → poll → atomic swap.

ISSUE 5's acceptance criteria: a live :class:`RecommendationService`
crosses ≥2 checkpoint generations with no restart, no torn reads, and
monotonically non-decreasing served generation stamps — plus the
satellite contracts (in-flight captures bit-stable across a swap,
checkpoint retention, version floors stamped from the streaming cache).
"""

import threading
import time

import numpy as np
import pytest

from repro.core.advice import DomainProfile
from repro.core.reward import ReinforcementPolicy
from repro.core.sharded_store import ShardedSumStore, generation_dirs
from repro.core.updates import RewardOp
from repro.serving import (
    Checkpointer,
    RecommendationRequest,
    RecommendationService,
    ReplicaRefresher,
    SelectionRequest,
)
from repro.streaming.cache import SumCache

POLICY = ReinforcementPolicy()
PROFILE = DomainProfile("t", {"enthusiastic": {"x": 0.5}})
ITEMS = {"i": {"x": 1.0}}


def build_service(sums):
    service = RecommendationService(
        sums=sums, domain_profile=PROFILE, item_attributes=ITEMS
    )
    service.register("flat", lambda model, item: 1.0)
    return service


def set_generation_state(store, g):
    """Make generation ``g`` distinguishable: intensity = g/10 exactly."""
    view = store.get_or_create(1)
    view.emotional.intensities["enthusiastic"] = 0.1 * g


def expected_multiplier(g):
    """The multiplier a response served *entirely* at generation g shows."""
    throwaway = ShardedSumStore(n_shards=2)
    set_generation_state(throwaway, g)
    response = build_service(throwaway).recommend(
        RecommendationRequest(user_id=1, items=["i"], k=1)
    )
    return response.ranked[0].multiplier


def test_live_service_crosses_generations_without_restart(tmp_path):
    primary = ShardedSumStore(n_shards=2)
    for uid in range(6):
        primary.get_or_create(uid)
    set_generation_state(primary, 1)
    checkpointer = Checkpointer(primary, tmp_path / "state")
    assert checkpointer.checkpoint() == 1

    service = build_service(ShardedSumStore.load(tmp_path / "state", mmap=True))
    refresher = ReplicaRefresher(tmp_path / "state", service)
    assert refresher.generation == 1

    first = service.recommend(RecommendationRequest(user_id=1, items=["i"], k=1))
    assert first.generation == 1
    assert first.sum_version == 1  # generation floor, never None
    assert first.ranked[0].multiplier == expected_multiplier(1)

    # primary advances two generations; the replica crosses both live
    for g in (2, 3):
        set_generation_state(primary, g)
        assert checkpointer.checkpoint() == g
    assert refresher.poll() == 3
    second = service.recommend(RecommendationRequest(user_id=1, items=["i"], k=1))
    assert second.generation == 3
    assert second.ranked[0].multiplier == expected_multiplier(3)
    assert second.generation >= first.generation
    # already current: nothing to do, stamp unchanged
    assert refresher.poll() is None
    # the replica stays read-only through the whole protocol
    with pytest.raises(TypeError, match="read-only"):
        service.sums.get_or_create(999)


def test_selection_responses_carry_generation_stamps(tmp_path):
    primary = ShardedSumStore(n_shards=2)
    for uid in range(4):
        primary.get_or_create(uid)
    set_generation_state(primary, 1)
    Checkpointer(primary, tmp_path / "state").checkpoint()
    service = build_service(ShardedSumStore.load(tmp_path / "state", mmap=True))
    response = service.select_users(SelectionRequest(item="i"))
    assert response.generation == 1
    assert response.sum_version == 1
    # live services stamp no generation
    live = build_service(primary)
    assert live.select_users(SelectionRequest(item="i")).generation is None


def test_in_flight_captures_bit_stable_across_swap(tmp_path):
    primary = ShardedSumStore(n_shards=4)
    cache = SumCache(primary)
    for uid in range(12):
        primary.get_or_create(uid)
    cache.apply_batch_and_publish(
        [(uid, (RewardOp(("enthusiastic",), 0.5),)) for uid in range(12)],
        POLICY,
    )
    service = build_service(cache)
    Checkpointer(primary, tmp_path / "state", cache=cache).checkpoint()

    ids = list(range(12))
    capture = cache.batch(ids)
    intensity = capture.intensity_matrix(("enthusiastic",)).copy()
    versions = dict(capture.versions)

    # the swap lands mid-"request", then writers keep streaming into the
    # primary: the capture must not move a bit, and its stamps must not
    # mix with the new resolver's generation
    service.swap_sums(ShardedSumStore.load(tmp_path / "state", mmap=True))
    cache.apply_batch_and_publish(
        [(uid, (RewardOp(("enthusiastic",), 0.9),)) for uid in range(12)],
        POLICY,
    )
    assert np.array_equal(capture.intensity_matrix(("enthusiastic",)), intensity)
    assert capture.versions == versions
    fresh = cache.batch(ids)
    assert not np.array_equal(
        fresh.intensity_matrix(("enthusiastic",)), intensity
    )


def test_poll_survives_a_load_racing_retention_pruning(tmp_path):
    # the generation can vanish between the manifest read and the page
    # reads (Checkpointer retention on a fast cadence); the refresher
    # must keep serving its current store and retry at the next poll
    primary = ShardedSumStore(n_shards=2)
    primary.get_or_create(1)
    checkpointer = Checkpointer(primary, tmp_path / "state")
    checkpointer.checkpoint()
    service = build_service(ShardedSumStore.load(tmp_path / "state", mmap=True))
    served = service.sums

    calls = {"n": 0}

    def flaky_loader(directory, mmap=True):
        calls["n"] += 1
        if calls["n"] == 1:
            raise FileNotFoundError("gen pruned mid-load")
        return ShardedSumStore.load(directory, mmap=mmap)

    refresher = ReplicaRefresher(tmp_path / "state", service, loader=flaky_loader)
    checkpointer.checkpoint()
    assert refresher.poll() is None  # load failed; nothing swapped
    assert service.sums is served
    assert refresher.poll() == 2  # next poll succeeds and swaps
    assert service.sums is not served


def test_checkpoint_retention_prunes_old_generations(tmp_path):
    primary = ShardedSumStore(n_shards=2)
    primary.get_or_create(1)
    checkpointer = Checkpointer(primary, tmp_path / "state", retain=2)
    for __ in range(5):
        checkpointer.checkpoint()
    kept = [g for g, __ in generation_dirs(tmp_path / "state")]
    assert kept == [4, 5]
    # the manifest's generation is always loadable
    assert ShardedSumStore.load(tmp_path / "state").snapshot_generation == 5


def test_replica_serves_cache_version_floors(tmp_path):
    primary = ShardedSumStore(n_shards=2)
    cache = SumCache(primary)
    for uid in range(4):
        primary.get_or_create(uid)
    for __ in range(3):  # user 1 published three times
        cache.apply_and_publish(
            1, lambda m: POLICY.reward(m, ("enthusiastic",), 1.0) or 1
        )
    cache.mark_batch()
    Checkpointer(primary, tmp_path / "state", cache=cache).checkpoint()
    replica = ShardedSumStore.load(tmp_path / "state", mmap=True)
    assert replica.version(1) == 3
    assert replica.version(2) == 0  # known user, never published
    service = build_service(replica)
    response = service.recommend(
        RecommendationRequest(user_id=1, items=["i"], k=1)
    )
    assert response.sum_version == 3
    assert response.generation == 1


def test_threaded_refresh_monotonic_and_never_torn(tmp_path):
    """Readers race checkpoints and swaps across 5 generations.

    Every response must be internally consistent — its Advice multiplier
    must equal the one its stamped generation's state produces (a torn
    read, stamps from one store and scores from another, cannot satisfy
    this) — and each reader's generation stamps must never decrease.
    """
    generations = 5
    expected = {g: expected_multiplier(g) for g in range(1, generations + 1)}

    primary = ShardedSumStore(n_shards=2)
    for uid in range(4):
        primary.get_or_create(uid)
    set_generation_state(primary, 1)
    checkpointer = Checkpointer(primary, tmp_path / "state")
    checkpointer.checkpoint()
    service = build_service(ShardedSumStore.load(tmp_path / "state", mmap=True))
    refresher = ReplicaRefresher(tmp_path / "state", service)

    stop = threading.Event()
    failures: list[str] = []
    per_reader: list[list[int]] = [[] for __ in range(3)]

    def reader(slot):
        while not stop.is_set():
            response = service.recommend(
                RecommendationRequest(user_id=1, items=["i"], k=1)
            )
            g = response.generation
            if expected[g] != response.ranked[0].multiplier:
                failures.append(
                    f"torn read: generation {g} with multiplier "
                    f"{response.ranked[0].multiplier!r}"
                )
            per_reader[slot].append(g)

    def refresh_loop():
        while not stop.is_set():
            refresher.poll()
            time.sleep(0.001)

    threads = [threading.Thread(target=reader, args=(slot,)) for slot in range(3)]
    threads.append(threading.Thread(target=refresh_loop))
    for t in threads:
        t.start()
    for g in range(2, generations + 1):
        set_generation_state(primary, g)
        checkpointer.checkpoint()
        time.sleep(0.02)
    time.sleep(0.05)
    stop.set()
    for t in threads:
        t.join(timeout=10.0)
    refresher.poll()

    assert not failures, failures[:3]
    observed = set()
    for stamps in per_reader:
        assert stamps, "reader made no requests"
        assert stamps == sorted(stamps), "generation stamps went backwards"
        observed.update(stamps)
    # the protocol actually crossed generations under the readers
    assert refresher.generation == generations
    assert max(observed) >= 2
