"""Adapter parity: every ``score_batch`` equals looped single-pair scores."""

import numpy as np
import pytest

from repro.cf.content import ContentBasedRecommender
from repro.cf.mf import FunkSVD
from repro.cf.neighborhood import ItemKNN, UserKNN
from repro.cf.popularity import PopularityRecommender
from repro.cf.ratings import RatingMatrix
from repro.core.sum_model import SumRepository
from repro.serving.adapters import (
    ContentScorer,
    FunkSVDScorer,
    LegacyScorerAdapter,
    MatrixScorer,
    PopularityScorer,
    RatingModelScorer,
    as_scorer,
)
from repro.serving.scorer import ScorerBase


@pytest.fixture(scope="module")
def ratings():
    rng = np.random.default_rng(42)
    triplets = []
    for user in range(12):
        for item in rng.choice(20, size=8, replace=False):
            triplets.append((user, int(item), float(rng.integers(1, 6))))
    return RatingMatrix(triplets)


#: seen users/items plus unseen ids (99, 77) to exercise every fallback.
USERS = [0, 3, 7, 99]
ITEMS = [0, 5, 13, 77]


def assert_batch_matches_pairs(scorer, predict, users=USERS, items=ITEMS):
    batch = scorer.score_batch(users, items)
    assert batch.shape == (len(users), len(items))
    for row, user in enumerate(users):
        for col, item in enumerate(items):
            assert batch[row, col] == pytest.approx(
                predict(user, item), rel=1e-12, abs=1e-12
            )


class TestFunkSVDScorer:
    def test_batch_equals_predict(self, ratings):
        model = FunkSVD(rank=4, epochs=3, seed=1).fit(ratings)
        assert_batch_matches_pairs(FunkSVDScorer(model), model.predict)

    def test_requires_fitted(self):
        with pytest.raises(ValueError):
            FunkSVDScorer(FunkSVD())

    def test_single_pair_default(self, ratings):
        model = FunkSVD(rank=2, epochs=2, seed=1).fit(ratings)
        scorer = FunkSVDScorer(model)
        assert scorer.score(3, 5) == pytest.approx(model.predict(3, 5))


class TestPopularityScorer:
    def test_batch_equals_predict(self, ratings):
        model = PopularityRecommender().fit(ratings)
        assert_batch_matches_pairs(PopularityScorer(model), model.predict)

    def test_requires_fitted(self):
        with pytest.raises(ValueError):
            PopularityScorer(PopularityRecommender())


class TestContentScorer:
    @pytest.fixture()
    def model(self, ratings):
        rng = np.random.default_rng(3)
        features = {item: rng.uniform(size=6) for item in range(20)}
        return ContentBasedRecommender(features).fit(ratings)

    def test_batch_equals_predict(self, model):
        assert_batch_matches_pairs(ContentScorer(model), model.predict)

    def test_raw_cosine_mode(self, model):
        assert_batch_matches_pairs(
            ContentScorer(model, rating_scale=False), model.score
        )


class TestRatingModelScorer:
    @pytest.mark.parametrize("cls", [ItemKNN, UserKNN])
    def test_batch_equals_predict(self, ratings, cls):
        model = cls(k=5).fit(ratings)
        assert_batch_matches_pairs(RatingModelScorer(model), model.predict)

    def test_rejects_predictless_object(self):
        with pytest.raises(TypeError):
            RatingModelScorer(object())


class TestLegacyScorerAdapter:
    def test_batch_equals_callable(self):
        repo = SumRepository()
        for uid in range(5):
            model = repo.get_or_create(uid)
            model.activate_emotion("hopeful", uid / 5)

        def base_scorer(model, item):
            return model.emotional["hopeful"] + len(str(item)) * 0.01

        scorer = LegacyScorerAdapter(base_scorer, repo)
        users = [0, 2, 4]
        items = ["a", "bb", "ccc"]
        batch = scorer.score_batch(users, items)
        for row, uid in enumerate(users):
            for col, item in enumerate(items):
                assert batch[row, col] == pytest.approx(
                    base_scorer(repo.get(uid), item)
                )

    def test_rejects_unresolvable(self):
        with pytest.raises(TypeError):
            LegacyScorerAdapter(lambda m, i: 0.0, object())


class TestMatrixScorer:
    def test_lookup_and_fill(self):
        matrix = np.arange(6, dtype=float).reshape(2, 3)
        scorer = MatrixScorer(matrix, [10, 20], ["x", "y", "z"], fill=-1.0)
        batch = scorer.score_batch([20, 999], ["z", "x", "missing"])
        assert batch.tolist() == [[5.0, 3.0, -1.0], [-1.0, -1.0, -1.0]]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MatrixScorer(np.zeros((2, 2)), [1], ["a", "b"])


class TestAsScorer:
    def test_passthrough_batch_scorer(self, ratings):
        scorer = PopularityScorer(PopularityRecommender().fit(ratings))
        assert as_scorer(scorer) is scorer

    def test_wraps_predict_model(self, ratings):
        adapted = as_scorer(ItemKNN(k=3).fit(ratings))
        assert isinstance(adapted, RatingModelScorer)

    def test_wraps_legacy_callable_with_resolver(self):
        repo = SumRepository()
        repo.get_or_create(1)
        adapted = as_scorer(lambda m, i: 1.0, resolver=repo)
        assert isinstance(adapted, LegacyScorerAdapter)

    def test_legacy_callable_without_resolver_rejected(self):
        with pytest.raises(TypeError):
            as_scorer(lambda m, i: 1.0)

    def test_unadaptable_rejected(self):
        with pytest.raises(TypeError):
            as_scorer(3.14)


class TestScorerBaseContract:
    def test_grid_validation_helper(self):
        class Bad(ScorerBase):
            def score_batch(self, user_ids, items):
                return self._as_grid(np.zeros((1, 1)), user_ids, items)

        with pytest.raises(ValueError):
            Bad().score_batch([1, 2], ["a"])
