"""RecommendationService: registry, both paper functions, k validation."""

import numpy as np
import pytest

from repro.cf.content import ContentBasedRecommender
from repro.cf.mf import FunkSVD
from repro.cf.neighborhood import ItemKNN, UserKNN
from repro.cf.popularity import PopularityRecommender
from repro.cf.ratings import RatingMatrix
from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.recommender import EmotionAwareRecommender
from repro.core.sum_model import SumRepository
from repro.serving import (
    FunkSVDScorer,
    MatrixScorer,
    PopularityScorer,
    RecommendationRequest,
    RecommendationService,
    SelectionRequest,
    validate_k,
)


def make_profile():
    return DomainProfile(
        "training",
        {
            "enthusiastic": {"innovative": 0.8},
            "frightened": {"challenging": -0.6, "supportive": 0.5},
        },
    )


ITEM_ATTRIBUTES = {
    "course-innovative": {"innovative": 1.0},
    "course-challenging": {"challenging": 1.0},
    "course-supportive": {"supportive": 0.8},
    "course-plain": {},
}
ITEMS = sorted(ITEM_ATTRIBUTES)


@pytest.fixture()
def repo():
    repo = SumRepository()
    keen = repo.get_or_create(1)
    keen.activate_emotion("enthusiastic", 1.0)
    keen.set_sensibility("enthusiastic", 1.0)
    timid = repo.get_or_create(2)
    timid.activate_emotion("frightened", 1.0)
    timid.set_sensibility("frightened", 1.0)
    repo.get_or_create(3)
    return repo


@pytest.fixture()
def service(repo):
    service = RecommendationService(
        sums=repo,
        domain_profile=make_profile(),
        item_attributes=ITEM_ATTRIBUTES,
    )
    service.register("base", lambda model, item: 0.5)
    return service


class TestRegistry:
    def test_first_registration_is_default(self, service):
        service.register("other", lambda model, item: 1.0)
        assert service.scorer() is service.scorer("base")

    def test_default_flag_overrides(self, service):
        other = service.register(
            "other", lambda model, item: 1.0, default=True
        )
        assert service.scorer() is other

    def test_unknown_scorer_lists_registered(self, service):
        with pytest.raises(KeyError, match="base"):
            service.scorer("nope")

    def test_empty_registry_raises(self):
        with pytest.raises(KeyError):
            RecommendationService().scorer()

    def test_contains_and_len(self, service):
        assert "base" in service and len(service) == 1
        assert "nope" not in service

    def test_invalid_name_rejected(self, service):
        with pytest.raises(ValueError):
            service.register("", lambda model, item: 1.0)


class TestRecommend:
    def test_enthusiastic_user_gets_innovative_first(self, service):
        response = service.recommend(
            RecommendationRequest(user_id=1, items=ITEMS, k=2)
        )
        assert response.items[0] == "course-innovative"
        assert response.scorer == "base"
        assert len(response.ranked) == 2

    def test_frightened_user_avoids_challenging(self, service):
        response = service.recommend(
            RecommendationRequest(user_id=2, items=ITEMS, k=len(ITEMS))
        )
        assert response.items[-1] == "course-challenging"

    def test_breakdown_is_consistent(self, service):
        response = service.recommend(
            RecommendationRequest(user_id=1, items=ITEMS, k=len(ITEMS))
        )
        for entry in response.ranked:
            assert entry.adjusted_score == pytest.approx(
                entry.base_score * entry.multiplier
            )

    def test_adjust_false_keeps_base(self, service):
        response = service.recommend(
            RecommendationRequest(user_id=1, items=ITEMS, k=3, adjust=False)
        )
        for entry in response.ranked:
            assert entry.multiplier == 1.0
            assert entry.adjusted_score == entry.base_score

    def test_best_property(self, service):
        response = service.recommend(
            RecommendationRequest(user_id=1, items=ITEMS, k=1)
        )
        assert response.best is response.ranked[0]

    def test_no_profile_means_no_adjustment(self, repo):
        service = RecommendationService(sums=repo)
        service.register("base", lambda model, item: 0.5)
        response = service.recommend(
            RecommendationRequest(user_id=1, items=ITEMS, k=2)
        )
        assert all(e.multiplier == 1.0 for e in response.ranked)


class TestSelectUsers:
    def test_ranks_by_adjusted_score(self, service):
        response = service.select_users(
            SelectionRequest(item="course-innovative")
        )
        assert response.ranked[0].user_id == 1
        assert (
            response.ranked[0].adjusted_score
            > response.ranked[1].adjusted_score
        )

    def test_all_users_when_ids_omitted(self, service, repo):
        response = service.select_users(
            SelectionRequest(item="course-plain")
        )
        assert sorted(e.user_id for e in response.ranked) == repo.user_ids()

    def test_k_truncates(self, service):
        response = service.select_users(
            SelectionRequest(item="course-innovative", k=2)
        )
        assert len(response.ranked) == 2

    def test_pairs_view(self, service):
        response = service.select_users(
            SelectionRequest(item="course-innovative", k=1)
        )
        assert response.pairs() == [
            (response.ranked[0].user_id, response.ranked[0].adjusted_score)
        ]

    def test_explicit_user_ids(self, service):
        response = service.select_users(
            SelectionRequest(item="course-innovative", user_ids=[2, 3])
        )
        assert {e.user_id for e in response.ranked} == {2, 3}

    def test_no_sums_and_no_ids_raises(self):
        service = RecommendationService()
        service.register("m", MatrixScorer(np.zeros((1, 1)), [1], ["a"]))
        with pytest.raises(RuntimeError):
            service.select_users(SelectionRequest(item="a"))


class TestUniformKValidation:
    @pytest.mark.parametrize("k", [0, -1, -100])
    def test_recommendation_request_rejects(self, k):
        with pytest.raises(ValueError):
            RecommendationRequest(user_id=1, items=ITEMS, k=k)

    @pytest.mark.parametrize("k", [0, -1, -100])
    def test_selection_request_rejects(self, k):
        with pytest.raises(ValueError):
            SelectionRequest(item="a", k=k)

    def test_selection_request_allows_none(self):
        assert SelectionRequest(item="a").k is None

    def test_recommendation_request_rejects_none(self):
        with pytest.raises(ValueError):
            RecommendationRequest(user_id=1, items=ITEMS, k=None)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            validate_k(2.5)
        with pytest.raises(TypeError):
            validate_k(True)

    def test_numpy_integers_accepted(self, service):
        assert validate_k(np.int64(3)) == 3
        response = service.recommend(
            RecommendationRequest(user_id=1, items=ITEMS, k=np.int64(2))
        )
        assert len(response.ranked) == 2
        with pytest.raises(TypeError):
            validate_k(np.float64(2.0))

    def test_legacy_select_users_now_rejects_bad_k(self, repo):
        recommender = EmotionAwareRecommender(
            base_scorer=lambda model, item: 0.5,
            domain_profile=make_profile(),
            item_attributes=ITEM_ATTRIBUTES,
        )
        with pytest.raises(ValueError):
            recommender.select_users(repo, "course-innovative", k=-3)

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            RecommendationRequest(user_id=1, items=[], k=1)


class TestLegacyEquivalence:
    """The shimmed legacy API and the service rank identically."""

    def seed_reference(self, advice, profile, base_scorer, model, items, k):
        """The seed's per-pair algorithm, reimplemented verbatim."""
        base_scores = {item: float(base_scorer(model, item)) for item in items}
        adjusted = advice.adjust_scores(
            base_scores, ITEM_ATTRIBUTES, model, profile
        )
        ranked = sorted(items, key=lambda it: (-adjusted[it], it))
        return ranked[:k]

    def test_service_matches_seed_algorithm(self, service, repo):
        advice = AdviceEngine()
        for uid in repo.user_ids():
            expected = self.seed_reference(
                advice, make_profile(), lambda m, i: 0.5,
                repo.get(uid), ITEMS, 3,
            )
            response = service.recommend(
                RecommendationRequest(user_id=uid, items=ITEMS, k=3)
            )
            assert response.items == expected

    def test_legacy_shim_matches_service(self, service, repo):
        recommender = EmotionAwareRecommender(
            base_scorer=lambda model, item: 0.5,
            domain_profile=make_profile(),
            item_attributes=ITEM_ATTRIBUTES,
        )
        for uid in repo.user_ids():
            legacy = recommender.recommend(repo.get(uid), ITEMS, k=4)
            response = service.recommend(
                RecommendationRequest(user_id=uid, items=ITEMS, k=4)
            )
            assert [r.item for r in legacy] == response.items
            for old, new in zip(legacy, response.ranked):
                assert old.adjusted_score == pytest.approx(new.adjusted_score)

    def test_shim_caches_service_across_calls(self, repo):
        recommender = EmotionAwareRecommender(
            base_scorer=lambda model, item: 0.5,
            domain_profile=make_profile(),
            item_attributes=ITEM_ATTRIBUTES,
        )
        first = recommender._service(repo)
        model = repo.get(1)
        recommender.recommend(model, ITEMS, k=2)
        assert recommender._service(repo) is first
        # retargeting between a repository and a bare model stays correct
        other = SumRepository()
        lonely = other.get_or_create(9)
        ranked = recommender.recommend(lonely, ITEMS, k=1)
        assert len(ranked) == 1
        selection = recommender.select_users(repo, "course-innovative", k=1)
        assert selection[0][0] == 1

    def test_legacy_select_matches_service(self, service, repo):
        recommender = EmotionAwareRecommender(
            base_scorer=lambda model, item: 0.5,
            domain_profile=make_profile(),
            item_attributes=ITEM_ATTRIBUTES,
        )
        legacy = recommender.select_users(repo, "course-innovative")
        response = service.select_users(
            SelectionRequest(item="course-innovative")
        )
        assert legacy == response.pairs()


class TestFiveScorerFamilies:
    """Both paper functions through >= 5 adapter-backed scorer families."""

    @pytest.fixture()
    def cf_world(self):
        rng = np.random.default_rng(7)
        triplets = []
        for user in range(1, 16):
            for item in rng.choice(30, size=10, replace=False):
                triplets.append((user, int(item), float(rng.integers(1, 6))))
        ratings = RatingMatrix(triplets)
        features = {item: rng.uniform(size=5) for item in range(30)}
        return ratings, features

    def test_service_serves_both_functions_per_scorer(self, cf_world):
        ratings, features = cf_world
        repo = SumRepository()
        for uid in ratings.user_ids:
            repo.get_or_create(uid)
        service = RecommendationService(sums=repo)
        service.register(
            "funk_svd",
            FunkSVDScorer(FunkSVD(rank=4, epochs=3, seed=0).fit(ratings)),
        )
        service.register(
            "popularity",
            PopularityScorer(PopularityRecommender().fit(ratings)),
        )
        service.register("item_knn", ItemKNN(k=5).fit(ratings))
        service.register("user_knn", UserKNN(k=5).fit(ratings))
        service.register(
            "content",
            ContentBasedRecommender(features).fit(ratings),
        )
        service.register("legacy", lambda model, item: model.user_id + item)
        assert len(service) >= 6

        items = list(range(8))
        for name in service.scorer_names():
            response = service.recommend(RecommendationRequest(
                user_id=3, items=items, k=3, scorer=name,
            ))
            assert len(response.ranked) == 3
            assert response.scorer == name
            selection = service.select_users(SelectionRequest(
                item=4, k=5, scorer=name,
            ))
            assert len(selection.ranked) == 5
            scores = [e.adjusted_score for e in selection.ranked]
            assert scores == sorted(scores, reverse=True)

    def test_score_matrix_shape(self, cf_world):
        ratings, __ = cf_world
        service = RecommendationService()
        service.register(
            "popularity",
            PopularityScorer(PopularityRecommender().fit(ratings)),
        )
        matrix = service.score_matrix([1, 2, 3], [0, 1], scorer="popularity")
        assert matrix.shape == (3, 2)


class TestEngineAndSpaIntegration:
    @pytest.fixture(scope="class")
    def spa(self):
        from repro import SimulatedWorld, SmartPredictionAssistant

        world = SimulatedWorld.generate(n_users=40, n_courses=10, seed=3)
        spa = SmartPredictionAssistant(world)
        spa.bootstrap(browsing_days=5.0)
        return spa

    def test_engine_service_registers_three_families(self, spa):
        service = spa.engine.recommendation_service()
        assert service.scorer_names() == [
            "propensity", "appeal", "engagement",
        ]
        assert service is spa.engine.recommendation_service()  # cached

    def test_propensity_requires_trained_model(self, spa):
        with pytest.raises(RuntimeError, match="no propensity model"):
            spa.recommend_courses(user_id=0, k=3)

    def test_recommend_courses_with_appeal(self, spa):
        response = spa.recommend_courses(user_id=0, k=3, scorer="appeal")
        assert len(response.ranked) == 3
        course_ids = set(spa.world.catalog.course_ids())
        assert all(entry.item in course_ids for entry in response.ranked)

    def test_select_users_for_course(self, spa):
        course_id = spa.world.catalog.course_ids()[0]
        response = spa.select_users_for(course_id, k=5, scorer="appeal")
        assert len(response.ranked) == 5
        scores = [entry.adjusted_score for entry in response.ranked]
        assert scores == sorted(scores, reverse=True)

    def test_emotional_adjustment_changes_ranking_inputs(self, spa):
        course_id = spa.world.catalog.course_ids()[0]
        adjusted = spa.select_users_for(course_id, scorer="appeal")
        raw = spa.select_users_for(course_id, scorer="appeal", adjust=False)
        assert any(entry.multiplier != 1.0 for entry in adjusted.ranked)
        assert all(entry.multiplier == 1.0 for entry in raw.ranked)


class TestFirstContactSemantics:
    """Unknown users in a batch: typed error vs opt-in auto-create."""

    def _service(self, sums, **kwargs):
        service = RecommendationService(
            sums=sums,
            domain_profile=make_profile(),
            item_attributes=ITEM_ATTRIBUTES,
            **kwargs,
        )
        service.register("base", lambda model, item: 0.5)
        return service

    def test_unknown_user_raises_typed_error_not_bare_keyerror(self, repo):
        from repro.serving import UnknownUserError

        service = self._service(repo)
        with pytest.raises(UnknownUserError) as excinfo:
            service.recommend(
                RecommendationRequest(user_id=404, items=ITEMS, k=2)
            )
        assert excinfo.value.user_ids == (404,)
        assert "404" in str(excinfo.value)

    def test_batch_error_names_every_offending_id(self, repo):
        from repro.serving import UnknownUserError

        service = self._service(repo)
        with pytest.raises(UnknownUserError) as excinfo:
            service.select_users(
                SelectionRequest(
                    item="course-plain", user_ids=[1, 404, 2, 405]
                )
            )
        assert excinfo.value.user_ids == (404, 405)

    def test_unknown_user_error_is_still_a_keyerror(self, repo):
        service = self._service(repo)
        with pytest.raises(KeyError):
            service.recommend(
                RecommendationRequest(user_id=404, items=ITEMS, k=2)
            )

    def test_create_missing_matches_streaming_first_contact(self, repo):
        # opt-in: an unknown user gets an empty (neutral) SUM, like the
        # streaming path's get_or_create, and scores unadjusted
        service = self._service(repo, create_missing=True)
        response = service.recommend(
            RecommendationRequest(user_id=404, items=ITEMS, k=2)
        )
        assert all(entry.multiplier == 1.0 for entry in response.ranked)
        assert 404 in repo

    def test_columnar_store_raises_the_same_typed_error(self):
        from repro.core.sum_store import ColumnarSumStore
        from repro.serving import UnknownUserError

        store = ColumnarSumStore()
        store.get_or_create(1).activate_emotion("enthusiastic", 1.0)
        service = self._service(store)
        with pytest.raises(UnknownUserError) as excinfo:
            service.select_users(
                SelectionRequest(item="course-plain", user_ids=[1, 9, 10])
            )
        assert excinfo.value.user_ids == (9, 10)

    def test_columnar_create_missing(self):
        from repro.core.sum_store import ColumnarSumStore

        store = ColumnarSumStore()
        service = self._service(store, create_missing=True)
        response = service.recommend(
            RecommendationRequest(user_id=7, items=ITEMS, k=1)
        )
        assert response.user_id == 7 and 7 in store

    def test_adjust_false_still_validates_the_batch(self, repo):
        # The hole: with adjust=False the batch was never resolved, so
        # unknown ids leaked into scorers as untyped per-scorer KeyErrors
        # (or silent garbage scores).
        from repro.serving import UnknownUserError

        service = self._service(repo)
        with pytest.raises(UnknownUserError) as excinfo:
            service.select_users(
                SelectionRequest(
                    item="course-plain", user_ids=[1, 404, 2, 405],
                    adjust=False,
                )
            )
        assert excinfo.value.user_ids == (404, 405)
        with pytest.raises(UnknownUserError):
            service.recommend(
                RecommendationRequest(
                    user_id=404, items=ITEMS, k=1, adjust=False
                )
            )

    def test_profile_free_service_also_validates(self, repo):
        # No domain profile means the adjusting resolve never runs, so
        # this path fell through the same hole.
        from repro.serving import UnknownUserError

        service = RecommendationService(sums=repo)
        service.register("base", lambda model, item: 0.5)
        with pytest.raises(UnknownUserError) as excinfo:
            service.select_users(
                SelectionRequest(item="course-plain", user_ids=[404, 1])
            )
        assert excinfo.value.user_ids == (404,)

    def test_no_adjust_validation_materializes_no_models(self):
        # Membership checks only: the no-adjust path must not pay for
        # snapshot builds it will never read.
        from repro.core.sum_store import ColumnarSumStore
        from repro.streaming.cache import SumCache

        store = ColumnarSumStore()
        for uid in (1, 2):
            store.get_or_create(uid).activate_emotion("enthusiastic", 0.5)
        cache = SumCache(store)
        service = RecommendationService(
            sums=cache,
            domain_profile=make_profile(),
            item_attributes=ITEM_ATTRIBUTES,
        )
        # a true batch scorer: nothing on this path needs per-user models
        service.register(
            "flat",
            MatrixScorer(np.ones((2, len(ITEMS))), [1, 2], ITEMS),
        )
        response = service.select_users(
            SelectionRequest(item="course-plain", user_ids=[1, 2], adjust=False)
        )
        assert len(response.ranked) == 2
        assert cache.cached_users == 0
        assert cache.mirrored_users == 0

    def test_create_missing_applies_on_the_no_adjust_path_too(self, repo):
        service = self._service(repo, create_missing=True)
        response = service.recommend(
            RecommendationRequest(user_id=777, items=ITEMS, k=1, adjust=False)
        )
        assert response.user_id == 777 and 777 in repo


class TestColumnarServingParity:
    """The service's adjusted grid is bit-equal across backends."""

    def test_score_matrix_identical_on_columnar_batch_path(self, repo):
        from repro.core.sum_store import ColumnarSumStore

        store = ColumnarSumStore.loads(repo.dumps())
        ids = repo.user_ids()

        def build(sums):
            service = RecommendationService(
                sums=sums,
                domain_profile=make_profile(),
                item_attributes=ITEM_ATTRIBUTES,
            )
            service.register(
                "base", lambda model, item: float(model.user_id) + len(str(item))
            )
            return service

        expected = build(repo).score_matrix(ids, ITEMS)
        actual = build(store).score_matrix(ids, ITEMS)
        assert np.array_equal(expected, actual)


class TestServingTelemetry:
    """PR 7: request instruments, trace ids, and the null default."""

    def build(self, repo, **kwargs):
        service = RecommendationService(
            sums=repo,
            domain_profile=make_profile(),
            item_attributes=ITEM_ATTRIBUTES,
            **kwargs,
        )
        service.register("base", lambda model, item: 0.5)
        return service

    def test_default_service_stamps_no_trace_ids(self, repo):
        service = self.build(repo)
        response = service.recommend(
            RecommendationRequest(user_id=1, items=ITEMS, k=2)
        )
        assert response.trace_id is None
        assert len(service.tracer) == 0

    def test_enabled_telemetry_implies_tracing(self, repo):
        from repro.obs.metrics import MetricsRegistry, labelled
        from repro.obs.tracing import Tracer

        registry = MetricsRegistry()
        service = self.build(repo, telemetry=registry)
        assert isinstance(service.tracer, Tracer)  # auto-created

        response = service.recommend(
            RecommendationRequest(user_id=1, items=ITEMS, k=2)
        )
        assert response.trace_id is not None
        assert [s.name for s in service.tracer.trace(response.trace_id)] == [
            "serving.resolve", "serving.retrieve", "serving.score",
            "serving.advice", "serving.respond",
        ]
        selection = service.select_users(
            SelectionRequest(item="course-plain", user_ids=[1, 2, 3], k=2)
        )
        assert selection.trace_id not in (None, response.trace_id)

        snap = registry.snapshot()
        assert snap.value(labelled("serving.requests", kind="recommend")) == 1
        assert snap.value(labelled("serving.requests", kind="select")) == 1
        assert snap.histogram("serving.request_seconds").count == 2
        for stage in ("resolve", "retrieve", "score", "advice", "respond"):
            hist = snap.histogram(labelled("serving.stage_seconds", stage=stage))
            assert hist.count == 2

    def test_unknown_user_errors_are_counted(self, repo):
        from repro.core.sum_model import UnknownUserError
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        service = self.build(repo, telemetry=registry)
        with pytest.raises(UnknownUserError):
            service.recommend(
                RecommendationRequest(user_id=99, items=ITEMS, k=2)
            )
        assert registry.snapshot().value("serving.unknown_user_errors") == 1
