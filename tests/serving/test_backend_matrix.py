"""Serving equivalence across the sum-backend × resolver matrix.

ISSUE 4's coverage satellite: the serving plane must produce *identical*
responses whether SUM state lives in the object repository or the
columnar store, and whether the service resolves models straight off the
repository or through the streaming cache's versioned frozen snapshots —
including while concurrent ``apply_batch_and_publish`` batches land.
"""

import threading

import pytest

from repro.core.advice import DomainProfile
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore
from repro.core.updates import RewardOp
from repro.serving import (
    RecommendationRequest,
    RecommendationService,
    SelectionRequest,
)
from repro.streaming import StreamingUpdater
from repro.streaming.cache import SumCache

PROFILE = DomainProfile(
    "training",
    {
        "enthusiastic": {"innovative": 0.8},
        "frightened": {"challenging": -0.6, "supportive": 0.5},
        "shy": {"supportive": 0.4},
    },
)

ITEM_ATTRIBUTES = {
    "course-innovative": {"innovative": 1.0},
    "course-challenging": {"challenging": 1.0},
    "course-supportive": {"supportive": 0.8},
    "course-plain": {},
}
ITEMS = sorted(ITEM_ATTRIBUTES)
USER_IDS = (1, 2, 3)


def populate(sums):
    keen = sums.get_or_create(1)
    keen.activate_emotion("enthusiastic", 1.0)
    keen.set_sensibility("enthusiastic", 1.0)
    timid = sums.get_or_create(2)
    timid.activate_emotion("frightened", 0.8)
    timid.activate_emotion("shy", 0.4)
    timid.set_sensibility("frightened", 0.9)
    sums.get_or_create(3)
    return sums


def build_service(sums):
    service = RecommendationService(
        sums=sums,
        domain_profile=PROFILE,
        item_attributes=ITEM_ATTRIBUTES,
    )
    service.register(
        "base", lambda model, item: 0.5 + 0.1 * model.user_id
    )
    return service


@pytest.fixture
def reference_service():
    return build_service(populate(SumRepository()))


@pytest.mark.parametrize("resolver", ["repository", "cache"])
def test_responses_identical_across_matrix(
    sum_backend_cls, resolver, reference_service
):
    sums = populate(sum_backend_cls())
    service = build_service(SumCache(sums) if resolver == "cache" else sums)
    for uid in USER_IDS:
        expected = reference_service.recommend(
            RecommendationRequest(user_id=uid, items=ITEMS, k=len(ITEMS))
        )
        actual = service.recommend(
            RecommendationRequest(user_id=uid, items=ITEMS, k=len(ITEMS))
        )
        assert actual.items == expected.items
        for got, want in zip(actual.ranked, expected.ranked):
            # bit-equal, not approximately equal: every leg of the matrix
            # runs the same IEEE arithmetic
            assert got.base_score == want.base_score
            assert got.multiplier == want.multiplier
            assert got.adjusted_score == want.adjusted_score
    expected = reference_service.select_users(SelectionRequest(item=ITEMS[0]))
    actual = service.select_users(SelectionRequest(item=ITEMS[0]))
    assert actual.pairs() == expected.pairs()


@pytest.mark.parametrize("resolver", ["repository", "cache"])
def test_no_adjust_responses_identical_across_matrix(
    sum_backend_cls, resolver, reference_service
):
    sums = populate(sum_backend_cls())
    service = build_service(SumCache(sums) if resolver == "cache" else sums)
    expected = reference_service.select_users(
        SelectionRequest(item=ITEMS[0], adjust=False)
    )
    actual = service.select_users(SelectionRequest(item=ITEMS[0], adjust=False))
    assert actual.pairs() == expected.pairs()


def test_streamed_state_serves_identically_through_cache_and_store(
    sum_backend_cls,
):
    """Streaming writes, then serving: cache reads == direct store reads."""
    from repro.datagen.catalog import CourseCatalog
    from repro.lifelog.events import ActionCategory, Event

    catalog = CourseCatalog.generate(20, seed=7)
    course_id = next(
        cid for cid, emotions in sorted(catalog.emotion_links().items())
        if emotions
    )
    sums = sum_backend_cls()
    for uid in USER_IDS:
        sums.get_or_create(uid)
    updater = StreamingUpdater(
        sums, catalog.emotion_links(), n_shards=2, batch_max=32
    )
    events = [
        Event(
            timestamp=1_000.0 + i, user_id=1, action="course_enroll",
            category=ActionCategory.ENROLLMENT,
            payload={"target": str(course_id)},
        )
        for i in range(30)
    ]
    with updater:
        updater.submit_many(events)
        assert updater.drain(timeout=30.0)

    item_attributes = {
        cid: dict(catalog.get(cid).attributes) for cid in catalog.course_ids()
    }
    from repro.datagen.catalog import AFFINITY_LINKS

    def serve(resolver):
        service = RecommendationService(
            sums=resolver,
            domain_profile=DomainProfile("courses", AFFINITY_LINKS),
            item_attributes=item_attributes,
        )
        service.register("flat", lambda model, item: 1.0)
        return service.recommend(RecommendationRequest(
            user_id=1, items=catalog.course_ids(), k=5
        ))

    through_cache = serve(updater.cache)
    through_store = serve(sums)
    assert through_cache.items == through_store.items
    assert [e.adjusted_score for e in through_cache.ranked] == [
        e.adjusted_score for e in through_store.ranked
    ]
    assert any(e.multiplier != 1.0 for e in through_cache.ranked)


def test_serving_over_live_cache_does_no_object_rebuilds(monkeypatch):
    """The acceptance assertion: recommend/select_users over a live
    columnar SumCache resolve through FrozenSumBatch column slices —
    zero ``to_dict``/``from_dict`` rebuilds anywhere on the read path."""
    from repro.core.sum_model import SmartUserModel
    from repro.core.sum_store import FrozenSumBatch

    store = populate(ColumnarSumStore())
    cache = SumCache(store)
    service = RecommendationService(
        sums=cache,
        domain_profile=PROFILE,
        item_attributes=ITEM_ATTRIBUTES,
    )

    class Ones:
        def score_batch(self, user_ids, items):
            import numpy as np

            return np.ones((len(user_ids), len(items)))

    service.register("flat", Ones())
    # a publish lands first, so reads exercise the refresh-then-slice path
    cache.apply_batch_and_publish(
        [(1, (RewardOp(("enthusiastic",), 0.5),))], ReinforcementPolicy()
    )
    cache.mark_batch()

    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("object rebuild on the serving read path")

    monkeypatch.setattr(SmartUserModel, "to_dict", boom)
    monkeypatch.setattr(SmartUserModel, "from_dict", boom)
    assert isinstance(service._resolve_models(list(USER_IDS)), FrozenSumBatch)
    response = service.recommend(
        RecommendationRequest(user_id=1, items=ITEMS, k=3)
    )
    assert response.sum_version == 1
    selection = service.select_users(SelectionRequest(item=ITEMS[0]))
    assert len(selection.ranked) == len(USER_IDS)
    assert cache.cached_users == 0  # no per-user snapshots materialized


def test_versions_monotonic_under_concurrent_batch_publishes():
    """sum_version and batch version stamps never go backwards while a
    writer streams ``apply_batch_and_publish`` batches concurrently."""
    store = populate(ColumnarSumStore())
    cache = SumCache(store)
    service = build_service(cache)
    policy = ReinforcementPolicy()
    stop = threading.Event()
    failures = []

    def writer():
        try:
            while not stop.is_set():
                cache.apply_batch_and_publish(
                    [
                        (1, (RewardOp(("enthusiastic",), 0.3),)),
                        (2, (RewardOp(("shy",), 0.2),)),
                    ],
                    policy,
                )
                cache.mark_batch()
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(exc)

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        floors: dict[int, int] = {}
        served = []
        for __ in range(100):
            batch = cache.batch(list(USER_IDS))
            for uid, version in batch.versions.items():
                assert version >= floors.get(uid, 0)
                floors[uid] = version
            response = service.recommend(
                RecommendationRequest(user_id=1, items=ITEMS, k=2)
            )
            served.append(response.sum_version)
    finally:
        stop.set()
        thread.join(timeout=10.0)
    assert not failures
    assert served == sorted(served)  # per-user freshness floor is monotone
    assert floors[3] == 0  # untouched user never bumps
    assert floors[1] >= 1  # the writer demonstrably landed batches
