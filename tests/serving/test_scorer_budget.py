"""The advisory budget hint: probing, cooperative cuts, service plumbing."""

from time import monotonic

import numpy as np

from repro.serving.adapters import (
    PropensityScorer,
    RatingModelScorer,
    accepts_budget,
    as_scorer,
)
from repro.serving.budget import Budget
from repro.serving.requests import RecommendationRequest
from repro.serving.scorer import ScorerBase
from repro.serving.service import RecommendationService


def expired_budget():
    return Budget(monotonic() - 1.0)


class ConstantModel:
    def predict(self, user_id, item):
        return float(item)


class TestAcceptsBudget:
    def test_probes_the_signature(self):
        assert accepts_budget(RatingModelScorer(ConstantModel()))

        class Plain(ScorerBase):
            def score_batch(self, user_ids, items):
                return np.zeros((len(user_ids), len(items)))

        assert not accepts_budget(Plain())

    def test_result_is_cached_on_the_instance(self):
        scorer = RatingModelScorer(ConstantModel())
        assert accepts_budget(scorer)
        assert scorer.__accepts_budget__ is True
        # the cache wins even if the method is monkeyed afterwards
        scorer.score_batch = lambda user_ids, items: None
        assert accepts_budget(scorer)

    def test_unprobeable_objects_are_just_false(self):
        assert not accepts_budget(object())


class TestRatingModelScorerBudget:
    def test_no_budget_scores_everything(self):
        grid = RatingModelScorer(ConstantModel()).score_batch(
            [1, 2], [10, 20]
        )
        np.testing.assert_array_equal(grid, [[10.0, 20.0], [10.0, 20.0]])

    def test_expired_budget_fills_remaining_rows_neutrally(self):
        class CountingModel:
            calls = 0

            def predict(self, user_id, item):
                CountingModel.calls += 1
                return float(item)

        scorer = RatingModelScorer(CountingModel())
        grid = scorer.score_batch([1, 2, 3], [10, 20], budget=expired_budget())
        # the budget was dead on arrival: zero predictions, all-tie grid
        assert CountingModel.calls == 0
        np.testing.assert_array_equal(grid, np.zeros((3, 2)))

    def test_mid_grid_expiry_ties_the_unscored_rows(self):
        class ExpiringBudget(Budget):
            """Alive for the first row, dead afterwards."""

            def __init__(self):
                super().__init__(monotonic() + 3600)
                self._checks = 0

            def expired(self):
                self._checks += 1
                return self._checks > 1

        grid = RatingModelScorer(ConstantModel()).score_batch(
            [1, 2, 3], [10, 20], budget=ExpiringBudget()
        )
        np.testing.assert_array_equal(grid[0], [10.0, 20.0])
        fill = float(grid[0].mean())
        np.testing.assert_array_equal(grid[1:], np.full((2, 2), fill))


class FakeCourse:
    def __init__(self, item):
        self.item = item


class FakeEngine:
    """PropensityEngine-shaped: one full pass per item column."""

    class world:
        catalog = {item: FakeCourse(item) for item in (1, 2, 3, 4)}

    def __init__(self):
        self.passes = 0

    def score_users(self, user_ids, course):
        self.passes += 1
        return np.full(len(user_ids), float(course.item))


class TestPropensityScorerBudget:
    def test_no_budget_scores_every_column(self):
        engine = FakeEngine()
        grid = PropensityScorer(engine).score_batch([1, 2], [1, 2, 3, 4])
        assert engine.passes == 4
        np.testing.assert_array_equal(
            grid, np.tile([1.0, 2.0, 3.0, 4.0], (2, 1))
        )

    def test_expired_budget_cuts_after_the_first_column(self):
        engine = FakeEngine()
        grid = PropensityScorer(engine).score_batch(
            [1, 2], [1, 2, 3, 4], budget=expired_budget()
        )
        # at least one real column always lands (there is no neutral
        # fill before any signal exists), the rest tie on its mean
        assert engine.passes == 1
        np.testing.assert_array_equal(grid[:, 0], [1.0, 1.0])
        np.testing.assert_array_equal(grid[:, 1:], np.ones((2, 3)))


class TestServicePassesBudget:
    def test_budgeted_request_reaches_an_accepting_scorer(self):
        seen = []

        class Recording(ScorerBase):
            def score_batch(self, user_ids, items, budget=None):
                seen.append(budget)
                return np.zeros((len(user_ids), len(items)))

        service = RecommendationService()
        service.register("rec", Recording())
        service.recommend(
            RecommendationRequest(user_id=1, items=[1, 2], deadline_s=30.0)
        )
        service.recommend(RecommendationRequest(user_id=1, items=[1, 2]))
        assert isinstance(seen[0], Budget)
        assert seen[0].remaining() > 0
        assert seen[1] is None  # no deadline, no budget

    def test_non_accepting_scorers_are_called_budget_free(self):
        class Plain(ScorerBase):
            def score_batch(self, user_ids, items):
                return np.zeros((len(user_ids), len(items)))

        service = RecommendationService()
        service.register("plain", Plain())
        response = service.recommend(
            RecommendationRequest(user_id=1, items=[1, 2], deadline_s=30.0)
        )
        assert len(response.ranked) == 2

    def test_as_scorer_passthrough_keeps_the_budget_signature(self):
        scorer = as_scorer(RatingModelScorer(ConstantModel()))
        assert accepts_budget(scorer)


class TestNeutralFillIsRankNeutral:
    def test_cut_rows_tie_instead_of_biasing_the_ranking(self):
        grid = np.array([[5.0, 1.0], [0.0, 0.0], [0.0, 0.0]])
        from repro.serving.adapters import _neutral_fill

        filled = _neutral_fill(grid, 1, 2)
        assert filled[1, 0] == filled[1, 1] == filled[2, 0] == 3.0
