"""Deadline budgets on the serving path.

The request-scoped half of the tail-latency control plane: a request
states its latency budget, the service checks it between pipeline
stages, and an exhausted budget either aborts with a typed
:class:`DeadlineExceeded` (exact-counted per stage) or — under
``partial_ok`` — degrades to a base-score ranking with the Advice
stage skipped.
"""

from time import monotonic, sleep

import pytest

import repro.serving.service as service_module
from repro.core.advice import DomainProfile
from repro.core.sum_model import SumRepository
from repro.obs.metrics import MetricsRegistry, labelled
from repro.serving import (
    RecommendationRequest,
    RecommendationService,
    SelectionRequest,
)
from repro.serving.budget import Budget, DeadlineExceeded


def make_profile():
    return DomainProfile(
        "training",
        {
            "enthusiastic": {"innovative": 0.8},
            "frightened": {"challenging": -0.6, "supportive": 0.5},
        },
    )


ITEM_ATTRIBUTES = {
    "course-innovative": {"innovative": 1.0},
    "course-challenging": {"challenging": 1.0},
    "course-supportive": {"supportive": 0.8},
    "course-plain": {},
}
ITEMS = sorted(ITEM_ATTRIBUTES)


@pytest.fixture()
def repo():
    repo = SumRepository()
    keen = repo.get_or_create(1)
    keen.activate_emotion("enthusiastic", 1.0)
    keen.set_sensibility("enthusiastic", 1.0)
    repo.get_or_create(2)
    return repo


def make_service(repo, telemetry=None):
    service = RecommendationService(
        sums=repo,
        domain_profile=make_profile(),
        item_attributes=ITEM_ATTRIBUTES,
        telemetry=telemetry,
    )
    service.register("base", lambda model, item: 0.5)
    return service


# -- Budget values ------------------------------------------------------------


class TestBudget:
    def test_from_timeout_rejects_nonpositive(self):
        for bad in (0, -1.0):
            with pytest.raises(ValueError):
                Budget.from_timeout(bad)

    def test_fresh_budget_has_remaining_and_passes_check(self):
        budget = Budget.from_timeout(60.0)
        assert not budget.expired()
        assert 0 < budget.remaining() <= 60.0
        budget.check("resolve")  # no raise

    def test_past_deadline_expires_and_check_raises_typed(self):
        budget = Budget(monotonic() - 0.25)
        assert budget.expired()
        assert budget.remaining() < 0
        with pytest.raises(DeadlineExceeded) as excinfo:
            budget.check("score")
        assert excinfo.value.stage == "score"
        assert excinfo.value.overshoot_s >= 0.25
        assert "score" in str(excinfo.value)

    def test_monotonic_timebase_survives_sleep(self):
        budget = Budget.from_timeout(0.01)
        sleep(0.02)
        assert budget.expired()


# -- request validation -------------------------------------------------------


def test_requests_reject_nonpositive_deadline():
    with pytest.raises(ValueError, match="deadline_s"):
        RecommendationRequest(user_id=1, items=ITEMS, deadline_s=0.0)
    with pytest.raises(ValueError, match="deadline_s"):
        SelectionRequest(item=ITEMS[0], user_ids=[1], deadline_s=-1.0)


# -- service integration ------------------------------------------------------


def test_generous_deadline_serves_complete_response(repo):
    service = make_service(repo)
    response = service.recommend(
        RecommendationRequest(user_id=1, items=ITEMS, k=2, deadline_s=60.0)
    )
    assert response.degraded is False
    assert response.items[0] == "course-innovative"


def test_exhausted_deadline_aborts_resolve_and_counts(repo):
    registry = MetricsRegistry()
    service = make_service(repo, telemetry=registry)
    with pytest.raises(DeadlineExceeded) as excinfo:
        service.recommend(
            RecommendationRequest(
                user_id=1, items=ITEMS, deadline_s=1e-9
            )
        )
    assert excinfo.value.stage == "resolve"
    snapshot = registry.snapshot().as_dict()
    key = labelled("serving.deadline_exceeded", stage="resolve")
    assert snapshot[key]["value"] == 1
    assert snapshot["serving.degraded"]["value"] == 0


def test_selection_path_honors_deadline_too(repo):
    registry = MetricsRegistry()
    service = make_service(repo, telemetry=registry)
    with pytest.raises(DeadlineExceeded):
        service.select_users(
            SelectionRequest(
                item=ITEMS[0], user_ids=[1, 2], deadline_s=1e-9
            )
        )
    snapshot = registry.snapshot().as_dict()
    key = labelled("serving.deadline_exceeded", stage="resolve")
    assert snapshot[key]["value"] == 1


class _ScoreExhaustedBudget:
    """Survives the resolve check, reads expired at the score gate.

    Deterministic stand-in for a budget that runs out *between* resolve
    and advice — the only window where ``partial_ok`` degradation can
    trigger.
    """

    def __init__(self) -> None:
        self.checked: list[str] = []

    @classmethod
    def from_timeout(cls, seconds: float) -> "_ScoreExhaustedBudget":
        return cls()

    def check(self, stage: str) -> None:
        self.checked.append(stage)
        if stage == "score":
            raise DeadlineExceeded(stage, 0.001)

    def expired(self) -> bool:
        return True


def test_partial_ok_degrades_instead_of_aborting(repo, monkeypatch):
    registry = MetricsRegistry()
    service = make_service(repo, telemetry=registry)
    monkeypatch.setattr(service_module, "Budget", _ScoreExhaustedBudget)
    response = service.recommend(
        RecommendationRequest(
            user_id=1, items=ITEMS, k=len(ITEMS),
            deadline_s=60.0, partial_ok=True,
        )
    )
    assert response.degraded is True
    # the Advice stage was skipped: base ranking served unadjusted
    assert all(entry.multiplier == 1.0 for entry in response.ranked)
    snapshot = registry.snapshot().as_dict()
    assert snapshot["serving.degraded"]["value"] == 1
    assert (
        snapshot[labelled("serving.deadline_exceeded", stage="score")]["value"]
        == 0
    )


def test_without_partial_ok_score_exhaustion_aborts(repo, monkeypatch):
    registry = MetricsRegistry()
    service = make_service(repo, telemetry=registry)
    monkeypatch.setattr(service_module, "Budget", _ScoreExhaustedBudget)
    with pytest.raises(DeadlineExceeded) as excinfo:
        service.recommend(
            RecommendationRequest(
                user_id=1, items=ITEMS, deadline_s=60.0
            )
        )
    assert excinfo.value.stage == "score"
    snapshot = registry.snapshot().as_dict()
    key = labelled("serving.deadline_exceeded", stage="score")
    assert snapshot[key]["value"] == 1
