"""Multi-process shard plane: equivalence, crash recovery, telemetry.

The contracts ISSUE 8 ships on:

* replaying a stream through per-shard worker *processes* leaves the
  shared-memory store byte-identical (``dumps()``) to one sequential
  pass through :meth:`EmotionalContextPipeline.apply_event`;
* a worker SIGKILLed mid-stream is rebuilt from the last checkpoint
  generation and its journal tail replays exactly-once — no lost and no
  duplicated commits, generations strictly monotonic;
* per-worker metrics snapshots ride the control channel and merge into
  one fleet view.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emotions import EMOTION_NAMES
from repro.core.gradual_eit import GradualEIT, QuestionBank
from repro.core.pipeline import EmotionalContextPipeline
from repro.core.reward import ReinforcementPolicy
from repro.core.shm_store import MultiProcSumStore
from repro.core.sharded_store import generation_dirs, read_manifest
from repro.core.sum_model import SumRepository
from repro.lifelog.events import ActionCategory, Event
from repro.streaming import EventUpdateMapper, MapperConfig
from repro.streaming.control import ControlPlaneConfig
from repro.streaming.procplane import MultiProcUpdater, WorkerDied

ITEM_EMOTIONS = {
    "10": (EMOTION_NAMES[0], EMOTION_NAMES[1]),
    "11": (EMOTION_NAMES[2],),
    "12": (EMOTION_NAMES[0],),
}

ACTIONS = (
    ("course_view", ActionCategory.NAVIGATION),
    ("course_enroll", ActionCategory.ENROLLMENT),
    ("course_rate", ActionCategory.RATING),
)


def make_events(specs):
    """``(uid, action_idx, item_idx, rating)`` tuples → a LifeLog stream."""
    events = []
    for i, (uid, action_idx, item_idx, rating) in enumerate(specs):
        action, category = ACTIONS[action_idx]
        payload = {"target": sorted(ITEM_EMOTIONS)[item_idx]}
        if category is ActionCategory.RATING:
            payload["value"] = str(rating)
        events.append(Event(
            timestamp=1_141_000_000.0 + float(i),
            user_id=int(uid),
            action=action,
            category=category,
            payload=payload,
        ))
    return events


def sequential_reference(events, config=None):
    sums = SumRepository()
    pipeline = EmotionalContextPipeline(
        GradualEIT(QuestionBank.default_bank()), ReinforcementPolicy()
    )
    mapper = EventUpdateMapper(ITEM_EMOTIONS, config)
    for event in events:
        pipeline.apply_event(sums.get_or_create(event.user_id), event, mapper)
    return sums


def dense_stream(n_events=600, n_users=40, seed=3):
    rng = np.random.default_rng(seed)
    return make_events(zip(
        rng.integers(0, n_users, size=n_events),
        rng.integers(0, len(ACTIONS), size=n_events),
        rng.integers(0, len(ITEM_EMOTIONS), size=n_events),
        rng.integers(1, 6, size=n_events),
    ))


def test_multiproc_replay_is_bit_equal_to_sequential():
    events = dense_stream()
    reference = sequential_reference(events)
    store = MultiProcSumStore(n_shards=4)
    try:
        updater = MultiProcUpdater(store, ITEM_EMOTIONS, chunk=64)
        with updater:
            updater.submit_many(events)
            assert updater.drain()
        assert store.dumps() == reference.dumps()
        stats = updater.stats()
        assert stats.applied == len(events)
        assert stats.dead_lettered == 0
        assert stats.pending_writes == 0
    finally:
        store.close()


def test_per_worker_metrics_export_and_merge():
    events = dense_stream(n_events=300)
    store = MultiProcSumStore(n_shards=4)
    try:
        updater = MultiProcUpdater(store, ITEM_EMOTIONS, chunk=32)
        with updater:
            updater.submit_many(events)
            assert updater.drain()
            snapshots = updater.metrics_snapshots()
            assert len(snapshots) == 4  # one registry per worker process
            per_worker = [
                snap["streaming.events_applied"]["value"]
                for snap in snapshots
            ]
            assert sum(per_worker) == len(events)
            merged = updater.merged_metrics()
            assert merged["streaming.events_applied"]["value"] == len(events)
    finally:
        store.close()


def test_decay_ticks_and_mapper_cadence_match_sequential():
    events = dense_stream(n_events=400, n_users=12)
    config = MapperConfig(decay_every=5)
    reference = sequential_reference(events, config)
    store = MultiProcSumStore(n_shards=2)
    try:
        updater = MultiProcUpdater(
            store, ITEM_EMOTIONS, mapper_config=config, chunk=32
        )
        with updater:
            updater.submit_many(events)
            assert updater.drain()
        assert store.dumps() == reference.dumps()
    finally:
        store.close()


def test_writer_crash_recovers_exactly_once(tmp_path):
    events = dense_stream(n_events=900, n_users=60)
    config = MapperConfig(decay_every=7)  # checkpointed decay counters
    reference = sequential_reference(events, config)
    store = MultiProcSumStore(n_shards=4)
    try:
        updater = MultiProcUpdater(
            store, ITEM_EMOTIONS, mapper_config=config,
            checkpoint_root=tmp_path, chunk=32,
        )
        with updater:
            # baseline generation exists before any worker could die
            assert read_manifest(tmp_path)["generation"] == 1
            updater.submit_many(events[:300])
            updater.checkpoint()
            assert read_manifest(tmp_path)["generation"] == 2
            updater.submit_many(events[300:600])
            updater.drain()  # post-checkpoint commits land on shm pages
            updater.workers[1].kill()  # SIGKILL mid-stream
            updater.submit_many(events[600:])
            assert updater.drain()  # sync hits the corpse and recovers
            assert updater.recoveries >= 1
            updater.checkpoint()
        # no lost updates, no duplicated replays: byte-identical state
        assert store.dumps() == reference.dumps()
        generations = [g for g, __ in generation_dirs(tmp_path)]
        assert generations == sorted(set(generations))  # strictly monotonic
        assert read_manifest(tmp_path)["generation"] == max(generations)
    finally:
        store.close()


def test_ensure_alive_restarts_dead_workers(tmp_path):
    events = dense_stream(n_events=200, n_users=10)
    reference = sequential_reference(events)
    store = MultiProcSumStore(n_shards=2)
    try:
        updater = MultiProcUpdater(
            store, ITEM_EMOTIONS, checkpoint_root=tmp_path, chunk=16
        )
        with updater:
            updater.submit_many(events[:100])
            updater.drain()
            updater.workers[0].kill()
            assert updater.ensure_alive() == 1
            assert updater.recoveries == 1
            updater.submit_many(events[100:])
            assert updater.drain()
        assert store.dumps() == reference.dumps()
    finally:
        store.close()


def test_expired_ticks_dropped_and_counted_across_the_plane():
    # ttl so small every tick is already past deadline when a worker
    # dequeues it: none may apply, every drop exact-counted, and the
    # final state must match an events-only sequential pass
    events = dense_stream(n_events=300, n_users=20)
    reference = sequential_reference(events)
    users = sorted({e.user_id for e in events})
    store = MultiProcSumStore(n_shards=4)
    try:
        updater = MultiProcUpdater(
            store, ITEM_EMOTIONS, chunk=32,
            control_plane=ControlPlaneConfig(tick_ttl=1e-9),
        )
        with updater:
            updater.submit_many(events)
            assert updater.tick(users) == len(users)
            assert updater.drain()
        assert updater.stats().expired_dropped == len(users)
        assert store.dumps() == reference.dumps()
    finally:
        store.close()


def test_expired_tick_drops_replay_exactly_once_after_crash(tmp_path):
    # the deadline pickles with the tick into the journal: a recovered
    # worker replaying its tail re-evaluates the *same* absolute
    # deadline, re-drops the same ticks, and the counter lands back on
    # the exact total — dropped once per tick, never applied
    events = dense_stream(n_events=400, n_users=24)
    reference = sequential_reference(events)
    users = sorted({e.user_id for e in events})
    store = MultiProcSumStore(n_shards=4)
    try:
        updater = MultiProcUpdater(
            store, ITEM_EMOTIONS, checkpoint_root=tmp_path, chunk=32,
            control_plane=ControlPlaneConfig(tick_ttl=1e-9),
        )
        with updater:
            updater.submit_many(events)
            updater.tick(users)
            assert updater.drain()
            updater.workers[2].kill()  # SIGKILL after the drops landed
            assert updater.drain()  # sync hits the corpse and recovers
            assert updater.recoveries >= 1
        assert updater.stats().expired_dropped == len(users)
        assert store.dumps() == reference.dumps()
    finally:
        store.close()


def test_crash_without_checkpoint_root_is_an_explicit_error():
    store = MultiProcSumStore(n_shards=2)
    try:
        updater = MultiProcUpdater(store, ITEM_EMOTIONS)
        with updater:
            updater.workers[0].kill()
            with pytest.raises(WorkerDied, match="checkpoint_root"):
                updater.recover(0)
            # put a live worker back so stop() shuts down cleanly
            updater.workers[0] = updater._spawn(0)
    finally:
        store.close()


def test_updater_is_single_use_and_validates_store():
    with pytest.raises(TypeError, match="MultiProcSumStore"):
        MultiProcUpdater(SumRepository(), ITEM_EMOTIONS)
    store = MultiProcSumStore(n_shards=2)
    try:
        updater = MultiProcUpdater(store, ITEM_EMOTIONS)
        with pytest.raises(RuntimeError, match="not started"):
            updater.submit_many([])
        with updater:
            pass
        with pytest.raises(RuntimeError, match="already stopped"):
            updater.start()
        updater.stop()  # second stop is a quiet no-op
    finally:
        store.close()


event_specs = st.lists(
    st.tuples(
        st.integers(0, 7),                      # user
        st.integers(0, len(ACTIONS) - 1),       # action kind
        st.integers(0, len(ITEM_EMOTIONS) - 1),  # item
        st.integers(1, 5),                      # rating
    ),
    min_size=0,
    max_size=60,
)


@settings(max_examples=8, deadline=None)
@given(specs=event_specs, decay_every=st.sampled_from([None, 3]))
def test_multiproc_replay_matches_sequential_for_arbitrary_streams(
    specs, decay_every
):
    events = make_events(specs)
    config = MapperConfig(decay_every=decay_every)
    reference = sequential_reference(events, config)
    store = MultiProcSumStore(n_shards=2)
    try:
        updater = MultiProcUpdater(
            store, ITEM_EMOTIONS, mapper_config=config, chunk=8
        )
        with updater:
            updater.submit_many(events)
            assert updater.drain()
        assert store.dumps() == reference.dumps()
    finally:
        store.close()
