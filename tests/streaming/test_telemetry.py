"""End-to-end telemetry: trace propagation, bus counters, instruments.

The ISSUE's observability contract, exercised against the real stack:
trace ids minted at the bus stamp every delivery and come out the other
side as four-stage traces; the metrics registry ends a drain with the
exact event counts; the bus exposes dead-letter/retry state as public
properties; and a stack built without telemetry keeps every envelope
untouched (``trace_id is None``) and retains nothing.
"""

import pytest

from repro.core.sum_model import SumRepository
from repro.lifelog.events import ActionCategory, Event
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry, labelled
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.streaming import StreamingUpdater
from repro.streaming.bus import EventBus, Topic
from repro.streaming.updater import LIFELOG_TOPIC

ITEM_EMOTIONS = {
    "7": ("enthusiastic", "motivated"),
    "9": ("shy",),
}

#: span names of one streamed event's lifecycle, in pipeline order
EVENT_STAGES = ["bus.queue", "worker.map", "worker.commit", "cache.publish"]


def lifelog_events(n):
    return [
        Event(
            timestamp=1_000.0 + i,
            user_id=i % 10,
            action="course_view",
            category=ActionCategory.NAVIGATION,
            payload={"target": "7" if i % 2 else "9"},
        )
        for i in range(n)
    ]


def make_updater(telemetry=None, tracer=None):
    sums = SumRepository()
    return StreamingUpdater(
        sums,
        ITEM_EMOTIONS,
        n_shards=2,
        batch_max=16,
        telemetry=telemetry,
        tracer=tracer,
    )


class TestTracePropagation:
    def test_every_event_yields_a_four_stage_trace(self):
        """bus → worker → cache publish, one trace per streamed event."""
        registry = MetricsRegistry()
        updater = make_updater(telemetry=registry)
        assert isinstance(updater.tracer, Tracer)  # implied by telemetry
        n = 40
        with updater:
            assert updater.submit_many(lifelog_events(n)) == n
            assert updater.drain(timeout=30.0)
        traces = updater.tracer.traces()
        assert len(traces) == n
        for trace_id, spans in traces.items():
            assert [s.name for s in spans] == EVENT_STAGES
            assert all(s.trace_id == trace_id for s in spans)
            assert all(s.duration >= 0.0 for s in spans)
            # stages tile the event's lifetime: each starts where the
            # previous ended, from publish to version-visible
            for prev, nxt in zip(spans, spans[1:]):
                assert nxt.start == pytest.approx(prev.end)
        breakdown = updater.tracer.breakdown(next(iter(traces)))
        assert set(breakdown) == set(EVENT_STAGES)

    def test_explicit_tracer_is_used_even_without_metrics(self):
        tracer = Tracer()
        updater = make_updater(telemetry=None, tracer=tracer)
        assert updater.tracer is tracer
        assert updater.telemetry is NULL_REGISTRY
        with updater:
            updater.submit_many(lifelog_events(8))
            assert updater.drain(timeout=30.0)
        assert len(tracer) == 8

    def test_retention_rotates_but_every_trace_stays_complete(self):
        tracer = Tracer(max_traces=10)
        updater = make_updater(telemetry=MetricsRegistry(), tracer=tracer)
        with updater:
            updater.submit_many(lifelog_events(50))
            assert updater.drain(timeout=30.0)
        traces = tracer.traces()
        assert len(traces) == 10
        for spans in traces.values():
            assert [s.name for s in spans] == EVENT_STAGES


class TestInstrumentedDrain:
    def test_metrics_account_for_every_event(self):
        registry = MetricsRegistry()
        updater = make_updater(telemetry=registry)
        n = 60
        with updater:
            updater.submit_many(lifelog_events(n))
            assert updater.drain(timeout=30.0)
            snap = registry.snapshot()
        topic = {"topic": LIFELOG_TOPIC}
        assert snap.value(labelled("bus.published", **topic)) == n
        assert snap.value(labelled("bus.acked", **topic)) == n
        assert snap.value(labelled("bus.redelivered", **topic)) == 0
        assert snap.value("streaming.events_applied") == n
        assert snap.value("streaming.events_failed") == 0
        assert snap.value("streaming.submitted") == n
        assert snap.value(labelled("bus.depth", **topic)) == 0
        visible = snap.histogram("streaming.update_visible_seconds")
        assert visible.count == n
        assert visible.quantile(0.99) > 0.0
        batches = snap.histogram("streaming.batch_size")
        assert batches.sum == n
        assert snap.value("cache.publishes") > 0
        assert snap.value("cache.global_version") > 0

    def test_per_shard_commit_latency_is_labelled(self):
        registry = MetricsRegistry()
        updater = make_updater(telemetry=registry)
        with updater:
            updater.submit_many(lifelog_events(30))
            assert updater.drain(timeout=30.0)
        snap = registry.snapshot()
        shard_counts = [
            snap.histogram(labelled("streaming.commit_seconds", shard=str(s))).count
            for s in range(2)
        ]
        assert sum(shard_counts) > 0


class TestBusObservability:
    def test_public_counters_follow_the_delivery_lifecycle(self):
        bus = EventBus()
        bus.create_topic("t", partitions=1, capacity=16, max_attempts=2)
        for i in range(3):
            bus.publish("t", f"m{i}", key=1)
        assert bus.published == 3
        assert bus.depth == 3
        queue = bus.topic("t").partitions[0]

        delivery = queue.get(timeout=1.0)
        queue.ack(delivery)
        assert bus.acked == 1

        # first nack requeues (attempt 2), second exhausts max_attempts
        delivery = queue.get(timeout=1.0)
        assert queue.nack(delivery) is True
        assert bus.redelivered == 1
        assert bus.dead_lettered == 0
        delivery = queue.get(timeout=1.0)
        assert queue.nack(delivery) is False
        assert bus.dead_lettered == 1
        assert bus.depth == 1

    def test_counter_gauges_mirror_the_properties(self):
        registry = MetricsRegistry()
        bus = EventBus(telemetry=registry)
        bus.create_topic("t", partitions=1, capacity=16, max_attempts=1)
        bus.publish("t", "poison", key=1)
        queue = bus.topic("t").partitions[0]
        assert queue.nack(queue.get(timeout=1.0)) is False
        snap = registry.snapshot()
        assert snap.value("bus.dead_lettered") == bus.dead_lettered == 1
        assert snap.value("bus.redeliveries") == bus.redelivered == 0
        assert snap.value(labelled("bus.dead_letters", topic="t")) == 1


class TestNullDefault:
    def test_untelemetried_topic_stamps_no_trace_ids(self):
        topic = Topic("t", partitions=1)
        topic.publish("m", key=1)
        delivery = topic.partitions[0].get(timeout=1.0)
        assert delivery.trace_id is None

    def test_traced_topic_stamps_unique_trace_ids(self):
        topic = Topic("t", partitions=1, tracer=Tracer())
        topic.publish("a", key=1)
        topic.publish_many([("b", 1), ("c", 1)])
        queue = topic.partitions[0]
        ids = [queue.get(timeout=1.0).trace_id for _ in range(3)]
        assert all(tid is not None for tid in ids)
        assert len(set(ids)) == 3

    def test_default_updater_keeps_the_null_facades(self):
        updater = make_updater()
        assert updater.telemetry is NULL_REGISTRY
        assert updater.tracer is NULL_TRACER
        with updater:
            updater.submit_many(lifelog_events(12))
            assert updater.drain(timeout=30.0)
        assert len(updater.tracer) == 0
        assert updater.stats().applied == 12
