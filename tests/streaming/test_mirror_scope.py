"""Mirror scope + per-shard mirror isolation (ISSUE 5 satellites).

The cache's copy-on-write mirror stages only what the Advice stage
reads by default; ``mirror_families`` extends it to the subjective and
evidence column families so batch consumers beyond the Advice stage get
the same snapshot isolation.  On a sharded store the cache keeps one
mirror (and one dirty set) per partition, so a write burst on shard 3
never invalidates shard 0's staged rows.
"""

import numpy as np
import pytest

from repro.core.reward import ReinforcementPolicy
from repro.core.sharded_store import ShardedSumStore
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore
from repro.core.updates import RewardOp
from repro.streaming.cache import SumCache
from repro.streaming.updater import StreamingUpdater

POLICY = ReinforcementPolicy()


def seeded_store(cls=ColumnarSumStore, n_users=8):
    store = cls()
    for uid in range(n_users):
        model = store.get_or_create(uid)
        model.set_subjective(f"pref[p{uid % 2}]", 0.25 + 0.05 * uid)
        model.evidence["shy"] = uid
    return store


class TestMirrorScope:
    def test_default_capture_does_not_stage_extra_families(self):
        cache = SumCache(seeded_store())
        batch = cache.batch([1, 2])
        with pytest.raises(TypeError, match="subjective"):
            batch.subjective_matrix(("pref[p0]",))
        with pytest.raises(TypeError, match="evidence"):
            batch.evidence_matrix(("shy",))

    @pytest.mark.parametrize("cls", [ColumnarSumStore, ShardedSumStore])
    def test_staged_families_are_snapshot_isolated(self, cls):
        store = seeded_store(cls)
        cache = SumCache(store, mirror_families=("subjective", "evidence"))
        ids = list(range(8))
        before = cache.batch(ids)
        subjective = before.subjective_matrix(("pref[p0]", "pref[p1]")).copy()
        evidence = before.evidence_matrix(("shy",)).copy()
        assert np.array_equal(
            evidence[:, 0], np.arange(8, dtype=float)
        )

        # a streamed batch lands: rewards bump evidence counters
        cache.apply_batch_and_publish(
            [(uid, (RewardOp(("shy",), 1.0),)) for uid in ids], POLICY
        )
        assert np.array_equal(
            before.subjective_matrix(("pref[p0]", "pref[p1]")), subjective
        )
        assert np.array_equal(before.evidence_matrix(("shy",)), evidence)

        after = cache.batch(ids)
        assert np.array_equal(
            after.evidence_matrix(("shy",))[:, 0],
            np.arange(8, dtype=float) + 1.0,
        )
        # the staged values match the live store bit for bit
        live = store.batch(ids)
        assert np.array_equal(
            after.subjective_matrix(("pref[p0]", "pref[p1]")),
            live.subjective_matrix(("pref[p0]", "pref[p1]")),
        )

    def test_mirror_families_validated(self):
        with pytest.raises(ValueError, match="unknown mirror families"):
            SumCache(ColumnarSumStore(), mirror_families=("bogus",))
        with pytest.raises(TypeError, match="columnar"):
            SumCache(SumRepository(), mirror_families=("subjective",))

    def test_updater_threads_mirror_families_through(self):
        updater = StreamingUpdater(
            seeded_store(), {}, mirror_families=("evidence",)
        )
        batch = updater.cache.batch([1, 2])
        assert batch.evidence_matrix(("shy",)).shape == (2, 1)


class TestPerShardMirrors:
    def test_write_burst_on_one_shard_leaves_others_clean(self):
        store = ShardedSumStore(n_shards=4)
        for uid in range(16):
            store.get_or_create(uid)
        cache = SumCache(store)
        ids = list(range(16))
        cache.batch(ids)  # stage every row
        assert cache.mirrored_users == 16
        assert all(not s.stale for s in cache._mirror_shards)

        # burst on shard 3 only (uids ≡ 3 mod 4)
        shard3 = [uid for uid in ids if store.shard_of(uid) == 3]
        cache.apply_batch_and_publish(
            [(uid, (RewardOp(("shy",), 0.5),)) for uid in shard3], POLICY
        )
        stale_by_shard = [set(s.stale) for s in cache._mirror_shards]
        assert stale_by_shard[3] == set(shard3)
        assert stale_by_shard[0] == stale_by_shard[1] == stale_by_shard[2] == set()

        # shard-0 reads refresh nothing: their staged versions are current
        shard0 = [uid for uid in ids if store.shard_of(uid) == 0]
        batch = cache.batch(shard0)
        assert [batch.versions[uid] for uid in shard0] == [0] * len(shard0)
        assert set(cache._mirror_shards[3].stale) == set(shard3)

    def test_cross_shard_capture_stamps_and_values(self):
        store = ShardedSumStore(n_shards=4)
        for uid in range(16):
            store.get_or_create(uid)
        cache = SumCache(store)
        cache.apply_batch_and_publish(
            [(uid, (RewardOp(("enthusiastic",), 0.4),)) for uid in (1, 6, 11)],
            POLICY,
        )
        ids = [11, 0, 6, 13, 1]  # interleaved shards, arbitrary order
        batch = cache.batch(ids)
        assert batch.user_ids == ids
        assert [batch.versions[uid] for uid in ids] == [1, 0, 1, 0, 1]
        column = batch.intensity_matrix(("enthusiastic",))[:, 0]
        live = store.batch(ids).intensity_matrix(("enthusiastic",))[:, 0]
        assert np.array_equal(column, live)
