"""Serving/streaming integration: fresh emotional state on the Advice path.

The satellite contract: a rewarded attribute changes the next
``recommend()`` response for that user — and only that user — because
cache invalidation is per-user and the version counter bumps exactly
once per applied batch.
"""

import pytest

from repro.core.advice import DomainProfile
from repro.core.sum_model import SumRepository
from repro.datagen.catalog import AFFINITY_LINKS, CourseCatalog
from repro.lifelog.events import ActionCategory, Event
from repro.serving import RecommendationRequest, RecommendationService
from repro.serving.requests import SelectionRequest
from repro.streaming import StreamingUpdater


@pytest.fixture()
def world():
    catalog = CourseCatalog.generate(30, seed=7)
    sums = SumRepository()
    for uid in (1, 2):
        sums.get_or_create(uid)
    updater = StreamingUpdater(
        sums, catalog.emotion_links(), n_shards=2, batch_max=64
    )
    service = RecommendationService(
        sums=updater.cache,
        domain_profile=DomainProfile("courses", AFFINITY_LINKS),
        item_attributes={
            cid: dict(catalog.get(cid).attributes)
            for cid in catalog.course_ids()
        },
    )
    service.register("flat", lambda model, item: 1.0)
    return catalog, sums, updater, service


def recommend(service, catalog, uid, k=5):
    return service.recommend(RecommendationRequest(
        user_id=uid, items=catalog.course_ids(), k=k
    ))


def enrollment_events(catalog, uid, n=40):
    """Enough enrollments in one course to move the Advice multipliers."""
    # pick a course whose salient attributes actually link to emotions
    course_id = next(
        cid for cid, emotions in sorted(catalog.emotion_links().items())
        if emotions
    )
    return [
        Event(
            timestamp=1_000.0 + i, user_id=uid, action="course_enroll",
            category=ActionCategory.ENROLLMENT,
            payload={"target": str(course_id)},
        )
        for i in range(n)
    ]


def test_reward_changes_recommendations_for_that_user_only(world):
    catalog, sums, updater, service = world
    before_1 = recommend(service, catalog, 1)
    before_2 = recommend(service, catalog, 2)
    assert before_1.sum_version == 0
    assert all(e.multiplier == pytest.approx(1.0) for e in before_1.ranked)

    with updater:
        updater.submit_many(enrollment_events(catalog, uid=1))
        assert updater.drain(timeout=30.0)

    after_1 = recommend(service, catalog, 1)
    after_2 = recommend(service, catalog, 2)

    # user 1's emotional state moved: version advanced, multipliers shifted
    assert after_1.sum_version >= 1
    assert any(
        e.multiplier != pytest.approx(1.0) for e in after_1.ranked
    )
    assert [e.item for e in after_1.ranked] != [e.item for e in before_1.ranked] or (
        [e.adjusted_score for e in after_1.ranked]
        != [e.adjusted_score for e in before_1.ranked]
    )

    # user 2 is untouched: same version, bit-identical response
    assert after_2.sum_version == before_2.sum_version == 0
    assert after_2 == before_2


def test_version_increments_exactly_once_per_applied_batch(world):
    catalog, sums, updater, service = world
    events = enrollment_events(catalog, uid=1, n=10)
    with updater:
        # submit everything, then drain: batch_max=64 >= 10, and all ten
        # events sit in one partition queue by the time the worker wakes,
        # so they apply as a single batch with a single version bump...
        updater.submit_many(events)
        assert updater.drain(timeout=30.0)
    batches = updater.stats().batches
    assert batches >= 1
    # ...and the user's version equals the number of applied batches
    # (exactly one bump per batch), as does the cache's global version.
    assert updater.cache.version(1) == batches
    assert updater.cache.global_version == batches
    assert recommend(service, catalog, 1).sum_version == batches


def test_selection_response_carries_global_version(world):
    catalog, sums, updater, service = world
    course_id = catalog.course_ids()[0]
    response = service.select_users(SelectionRequest(item=course_id))
    assert response.sum_version == 0
    with updater:
        updater.submit_many(enrollment_events(catalog, uid=2, n=5))
        assert updater.drain(timeout=30.0)
    response = service.select_users(SelectionRequest(item=course_id))
    assert response.sum_version == updater.cache.global_version >= 1


def test_offline_campaign_writes_invalidate_live_caches():
    # The offline loop mutates the shared SumRepository directly; caches
    # spawned by engine.streaming_updater() must not keep serving the
    # pre-campaign snapshots.
    from repro.campaigns.delivery import CampaignEngine
    from repro.datagen.behavior import BehaviorModel
    from repro.datagen.campaigns_plan import CampaignSpec
    from repro.datagen.population import Population

    population = Population.generate(80, seed=7)
    catalog = CourseCatalog.generate(20, seed=7)
    engine = CampaignEngine(BehaviorModel(population, catalog, seed=7))
    engine.register_population()
    updater = engine.streaming_updater(n_shards=2)
    cache = updater.cache

    # materialize snapshots for everyone, then run an offline campaign
    for uid in cache.user_ids():
        cache.get(uid)
    before = {uid: cache.version(uid) for uid in cache.user_ids()}
    spec = CampaignSpec("c-test", "push", catalog.course_ids()[0], 0.5)
    result = engine.run_campaign(
        spec, scored=False, personalize=False, retrain=False
    )

    touched = {t.user_id for t in result.touches}
    assert touched
    for uid in touched:
        assert cache.version(uid) == before[uid] + 1
        # the snapshot now reflects the campaign's decay/reward writes
        assert cache.get(uid).to_dict() == engine.sums.get(uid).to_dict()
    untouched = set(cache.user_ids()) - touched
    for uid in sorted(untouched)[:5]:
        assert cache.version(uid) == before[uid]


def test_plain_repository_serves_unversioned_responses():
    catalog = CourseCatalog.generate(10, seed=3)
    sums = SumRepository()
    sums.get_or_create(1)
    service = RecommendationService(sums=sums)
    service.register("flat", lambda model, item: 1.0)
    response = recommend(service, catalog, 1)
    assert response.sum_version is None
