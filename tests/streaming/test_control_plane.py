"""Tail-latency control plane: adaptive batching, two-class shedding,
deadline-stamped decay ticks, and seqlock reader captures.

The contracts ISSUE 9 ships on:

* batch sizing is a pure function of observed queue depth and commit
  cost — deterministic, clamped to ``[min_batch, batch_max]``;
* the bus's two service classes shed *background* work first, count
  every shed exactly, and never shed user-facing events;
* an expired decay tick is dropped unapplied and counted — and with the
  control plane off (or nothing expiring), streamed replay stays
  bit-equal to the legacy single-class plane;
* lock-free mirror captures survive a writer saturating the seqlock
  (bounded spin, writer-lock fallback) and vocabulary compaction under
  live captures.
"""

import threading
from time import monotonic, sleep

import pytest

from repro.core.gradual_eit import GradualEIT, QuestionBank
from repro.core.pipeline import EmotionalContextPipeline
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore
from repro.core.updates import RewardOp
from repro.datagen.behavior import BehaviorModel
from repro.datagen.catalog import CourseCatalog
from repro.datagen.population import Population
from repro.obs.metrics import MetricsRegistry
from repro.streaming.bus import EventBus, PartitionQueue
from repro.streaming.cache import SumCache
from repro.streaming.consumer import DecayTick, ShardWorker
from repro.streaming.control import AdaptiveBatcher, ControlPlaneConfig
from repro.streaming.mapper import EventUpdateMapper
from repro.streaming.updater import StreamingUpdater


def browsing_stream(n_users=40, n_courses=30, days=6.0, seed=7):
    population = Population.generate(n_users, seed=seed)
    catalog = CourseCatalog.generate(n_courses, seed=seed)
    behavior = BehaviorModel(population, catalog, seed=seed)
    events = []
    for user in population:
        events.extend(
            behavior.generate_browsing_events(user, horizon_days=days)
        )
    events.sort(key=lambda e: (e.timestamp, e.user_id, e.action))
    return catalog, events


def sequential_reference(events, item_emotions, config=None):
    sums = SumRepository()
    pipeline = EmotionalContextPipeline(
        GradualEIT(QuestionBank.default_bank()), ReinforcementPolicy()
    )
    mapper = EventUpdateMapper(item_emotions, config)
    for event in events:
        pipeline.apply_event(
            sums.get_or_create(event.user_id), event, mapper
        )
    return sums


# -- adaptive batching --------------------------------------------------------


def test_config_validates_fields():
    with pytest.raises(ValueError, match="min_batch"):
        ControlPlaneConfig(min_batch=0)
    with pytest.raises(ValueError, match="target_commit_seconds"):
        ControlPlaneConfig(target_commit_seconds=0.0)
    with pytest.raises(ValueError, match="ewma_alpha"):
        ControlPlaneConfig(ewma_alpha=1.5)
    with pytest.raises(ValueError, match="tick_ttl"):
        ControlPlaneConfig(tick_ttl=-1.0)
    assert ControlPlaneConfig(tick_ttl=None).tick_ttl is None


def test_batcher_with_no_history_tracks_depth():
    batcher = AdaptiveBatcher(ControlPlaneConfig(min_batch=8), batch_max=256)
    assert batcher.next_size(0) == 8       # floor
    assert batcher.next_size(100) == 100   # follow the queue
    assert batcher.next_size(5000) == 256  # saturated: cap for throughput


def test_batcher_latency_cap_shrinks_batches_under_slow_commits():
    config = ControlPlaneConfig(
        min_batch=4, target_commit_seconds=0.010, ewma_alpha=1.0
    )
    batcher = AdaptiveBatcher(config, batch_max=256)
    batcher.record(n_ops=100, commit_seconds=0.100)  # 1ms per op
    assert batcher.per_op_seconds == pytest.approx(0.001)
    # 10ms budget / 1ms per op -> 10-op batches, despite a deep queue
    assert batcher.next_size(200) == 10
    # fast commits re-open the throttle (alpha=1.0: last sample wins)
    batcher.record(n_ops=100, commit_seconds=0.0001)
    assert batcher.next_size(200) == 200


def test_batcher_never_leaves_bounds():
    config = ControlPlaneConfig(min_batch=8, target_commit_seconds=0.001)
    batcher = AdaptiveBatcher(config, batch_max=64)
    batcher.record(n_ops=10, commit_seconds=10.0)  # pathologically slow
    assert batcher.next_size(1000) == 64  # depth >= batch_max: throughput
    assert batcher.next_size(63) == 8     # latency cap, clamped to floor
    with pytest.raises(ValueError, match="batch_max"):
        AdaptiveBatcher(ControlPlaneConfig(min_batch=32), batch_max=16)


def test_batcher_record_ignores_empty_and_instant_batches():
    batcher = AdaptiveBatcher(ControlPlaneConfig(), batch_max=64)
    batcher.record(n_ops=0, commit_seconds=1.0)
    batcher.record(n_ops=10, commit_seconds=0.0)
    assert batcher.per_op_seconds == 0.0


# -- two-class partition queue ------------------------------------------------


def _queue(capacity=4):
    return PartitionQueue(partition=0, capacity=capacity, max_attempts=3)


def test_background_publish_on_full_queue_is_shed_not_blocked():
    q = _queue(capacity=2)
    assert q.put("u1", key=1) >= 0
    assert q.put("u2", key=2) >= 0
    started = monotonic()
    assert q.put("b1", key=3, background=True) == -1  # drop-new, no wait
    assert monotonic() - started < 0.5
    assert q.shed_background == 1
    assert q.shed_user == 0
    batch = q.get_batch(10, timeout=0.1)
    assert [d.value for d in batch] == ["u1", "u2"]


def test_user_publish_evicts_oldest_background_first():
    q = _queue(capacity=3)
    q.put("b1", key=1, background=True)
    q.put("u1", key=2)
    q.put("b2", key=3, background=True)
    # full; a user-facing publish sheds b1 (the oldest background entry)
    assert q.put("u2", key=4, timeout=0.1) >= 0
    assert q.shed_background == 1
    batch = q.get_batch(10, timeout=0.1)
    assert [d.value for d in batch] == ["u1", "b2", "u2"]  # FIFO survivors


def test_expired_background_shed_at_dequeue_with_exact_counts():
    q = _queue(capacity=8)
    q.put("b-old", key=1, background=True, deadline=monotonic() - 1.0)
    q.put("u1", key=2)
    q.put("b-live", key=3, background=True, deadline=monotonic() + 60.0)
    batch = q.get_batch(10, timeout=0.1)
    assert [d.value for d in batch] == ["u1", "b-live"]
    assert q.shed_expired == 1
    assert q.shed_background == 0
    assert q.shed_user == 0


def test_put_many_background_drops_only_the_overflow():
    q = _queue(capacity=3)
    placed = q.put_many(
        [("b1", 1), ("b2", 2), ("b3", 3), ("b4", 4)], background=True
    )
    assert placed == 3
    assert q.shed_background == 1


def test_bus_stats_aggregate_shed_counts_per_class():
    registry = MetricsRegistry()
    bus = EventBus(telemetry=registry)
    topic = bus.create_topic("t", partitions=1, capacity=2)
    topic.publish("u1", key=1)
    topic.publish("u2", key=2)
    topic.publish("b1", key=3, background=True)  # full: shed, not queued
    stats = bus.stats()
    assert stats.shed_background == 1
    assert stats.shed_expired == 0
    assert stats.shed_user == 0
    snapshot = registry.snapshot().as_dict()
    key = (
        'bus.shed{op_class="background",reason="capacity",topic="t"}'
    )
    assert snapshot[key]["value"] == 1
    bus.close()


# -- deadline-stamped decay ticks --------------------------------------------


def _shard_worker(control, registry=None):
    store = ColumnarSumStore()
    store.get_or_create(1).sensibility["enthusiastic"] = 0.8
    cache = SumCache(store)
    bus = EventBus(telemetry=registry)
    topic = bus.create_topic("t", partitions=1, capacity=64)
    (partition,) = tuple(topic)
    worker = ShardWorker(
        partition=partition,
        mapper=EventUpdateMapper({}),
        cache=cache,
        policy=ReinforcementPolicy(),
        telemetry=registry,
        control=control,
    )
    return store, bus, topic, partition, worker


def test_expired_decay_tick_dropped_counted_and_unapplied():
    registry = MetricsRegistry()
    store, bus, topic, partition, worker = _shard_worker(
        ControlPlaneConfig(), registry
    )
    before = store.get(1).sensibility["enthusiastic"]
    # stale value-level deadline only: the queue delivers it, and the
    # *worker* is the one that must notice expiry and drop before apply
    topic.publish(
        DecayTick(1, deadline=monotonic() - 1.0), key=1, background=True,
    )
    worker.start()
    assert topic.join(timeout=5.0)
    worker.request_stop()
    bus.close()
    worker.join(timeout=5.0)
    assert worker.stats.expired_dropped == 1
    assert worker.stats.processed == 0
    assert store.get(1).sensibility["enthusiastic"] == before
    snapshot = registry.snapshot().as_dict()
    assert snapshot["streaming.expired_dropped"]["value"] == 1


def test_live_decay_tick_still_applies_under_control_plane():
    store, bus, topic, partition, worker = _shard_worker(
        ControlPlaneConfig(tick_ttl=60.0)
    )
    before = store.get(1).sensibility["enthusiastic"]
    topic.publish(
        DecayTick(1, deadline=monotonic() + 60.0), key=1, background=True
    )
    worker.start()
    assert topic.join(timeout=5.0)
    worker.request_stop()
    bus.close()
    worker.join(timeout=5.0)
    assert worker.stats.expired_dropped == 0
    assert worker.stats.processed == 1
    assert store.get(1).sensibility["enthusiastic"] < before


def test_without_control_plane_stale_deadlines_are_ignored():
    # legacy wiring must stay bit-exact: a deadline-stamped tick reaching
    # a control-less worker applies normally instead of being shed
    store, bus, topic, partition, worker = _shard_worker(control=None)
    topic.publish(DecayTick(1, deadline=monotonic() - 1.0), key=1)
    worker.start()
    assert topic.join(timeout=5.0)
    worker.request_stop()
    bus.close()
    worker.join(timeout=5.0)
    assert worker.stats.expired_dropped == 0
    assert worker.stats.processed == 1


# -- end-to-end: control plane on, nothing shed => bit-equal ------------------


def test_streamed_replay_with_control_plane_is_bit_equal_when_nothing_sheds():
    catalog, events = browsing_stream(n_users=40, days=6.0)
    item_emotions = catalog.emotion_links()
    reference = sequential_reference(events, item_emotions)

    live = ColumnarSumStore()
    updater = StreamingUpdater(
        live, item_emotions, n_shards=4, batch_max=64,
        control_plane=ControlPlaneConfig(tick_ttl=300.0),
    )
    with updater:
        for event in events:
            updater.submit(event)
        assert updater.drain(timeout=60.0)
    stats = updater.stats()
    assert stats.shed_background == 0
    assert stats.shed_expired == 0
    assert stats.expired_dropped == 0
    assert live.dumps() == reference.dumps()


def test_updater_stats_surface_shed_and_expiry_counters():
    live = ColumnarSumStore()
    live.get_or_create(1).sensibility["enthusiastic"] = 0.5
    updater = StreamingUpdater(
        live, {}, n_shards=1,
        control_plane=ControlPlaneConfig(tick_ttl=1e-9),
    )
    with updater:
        updater.tick([1])
        sleep(0.01)  # let the nanosecond TTL lapse before the dequeue
        assert updater.drain(timeout=30.0)
        stats = updater.stats()
    assert stats.expired_dropped + stats.shed_expired == 1
    assert stats.shed_background == 0


# -- seqlock captures under concurrent writers --------------------------------

USER_IDS = (1, 2, 3)


def _columnar_cache():
    store = ColumnarSumStore()
    for uid in USER_IDS:
        store.get_or_create(uid).sensibility["enthusiastic"] = 0.1
    return store, SumCache(store)


def test_captures_progress_while_a_writer_saturates_the_seqlock():
    # a back-to-back batch writer keeps the row generations odd for
    # nearly its whole duty cycle; captures must fall back to the store
    # writer lock instead of spinning forever
    __, cache = _columnar_cache()
    policy = ReinforcementPolicy()
    stop = threading.Event()

    def write_forever():
        while not stop.is_set():
            cache.apply_batch_and_publish(
                [(1, (RewardOp(("enthusiastic",), 0.3),)),
                 (2, (RewardOp(("shy",), 0.2),))],
                policy,
            )
            cache.mark_batch()

    writer = threading.Thread(target=write_forever, daemon=True)
    writer.start()
    try:
        deadline = monotonic() + 30.0
        for __ in range(50):
            batch = cache.batch(list(USER_IDS))
            assert set(batch.versions) == set(USER_IDS)
            assert monotonic() < deadline, "captures starved by writer"
    finally:
        stop.set()
        writer.join(timeout=10.0)
    assert not writer.is_alive()


def test_compact_vocab_during_live_captures_restages_cleanly():
    store, cache = _columnar_cache()
    policy = ReinforcementPolicy()
    # intern a column, orphan it, and keep capturing across compactions
    cache.apply_batch_and_publish(
        [(1, (RewardOp(("hopeful",), 0.4),))], policy
    )
    cache.mark_batch()
    stop = threading.Event()
    failures = []

    def capture_forever():
        while not stop.is_set():
            try:
                batch = cache.batch(list(USER_IDS))
                values = batch.sensibility_matrix(
                    ["enthusiastic"], default=0.0
                )
                if not (values >= 0.0).all():
                    failures.append("negative sensibility")
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(repr(exc))

    reader = threading.Thread(target=capture_forever, daemon=True)
    reader.start()
    try:
        for round_ in range(20):
            cache.apply_batch_and_publish(
                [(2, (RewardOp(("enthusiastic",), 0.05),))], policy
            )
            cache.mark_batch()
            store.compact_vocab()
    finally:
        stop.set()
        reader.join(timeout=10.0)
    assert not reader.is_alive()
    assert failures == []
