"""Unit tests for the write-behind persistence buffer."""

import pytest

from repro.lifelog.events import ActionCategory, Event
from repro.lifelog.store import EventLog
from repro.streaming.writebehind import WriteBehindWriter


def make_events(n, user_id=1):
    return [
        Event(timestamp=float(i), user_id=user_id, action="course_view",
              category=ActionCategory.NAVIGATION, payload={"target": "3"})
        for i in range(n)
    ]


def test_buffers_until_threshold():
    log = EventLog()
    writer = WriteBehindWriter(log, flush_every=10)
    assert writer.add_batch(make_events(4)) == 0
    assert writer.pending == 4
    assert len(log) == 0


def test_flushes_when_threshold_reached():
    log = EventLog()
    writer = WriteBehindWriter(log, flush_every=10)
    writer.add_batch(make_events(4))
    written = writer.add_batch(make_events(7))
    assert written == 11  # the whole buffer goes in one batched extend
    assert writer.pending == 0
    assert len(log) == 11
    assert writer.flush_count == 1
    assert writer.flushed_events == 11


def test_explicit_flush_writes_remainder():
    log = EventLog()
    writer = WriteBehindWriter(log, flush_every=100)
    writer.add_batch(make_events(3))
    assert writer.flush() == 3
    assert writer.flush() == 0  # idempotent on empty buffer
    assert len(log) == 3


def test_preserves_event_order():
    log = EventLog()
    writer = WriteBehindWriter(log, flush_every=5)
    events = make_events(12)
    for event in events:
        writer.add_batch([event])
    writer.flush()
    stored = list(log.events())
    assert [e.timestamp for e in stored] == [e.timestamp for e in events]


def test_invalid_flush_every():
    with pytest.raises(ValueError):
        WriteBehindWriter(EventLog(), flush_every=0)


def test_failed_flush_keeps_buffer_for_retry():
    class FlakyLog(EventLog):
        def __init__(self):
            super().__init__()
            self.fail_next = True

        def extend(self, events):
            if self.fail_next:
                self.fail_next = False
                raise OSError("disk on fire")
            return super().extend(events)

    log = FlakyLog()
    writer = WriteBehindWriter(log, flush_every=100)
    writer.add_batch(make_events(3))
    with pytest.raises(OSError):
        writer.flush()
    assert writer.pending == 3  # nothing lost
    assert len(log) == 0
    assert writer.flush() == 3  # retry succeeds, order intact
    assert [e.timestamp for e in log.events()] == [0.0, 1.0, 2.0]
