"""Unit tests for the in-process partitioned event bus."""

import threading
import time

import pytest

from repro.streaming.bus import (
    BusClosed,
    EventBus,
    PartitionQueue,
    PublishTimeout,
    Topic,
    partition_for,
)


class TestPartitioning:
    def test_integer_keys_partition_by_value(self):
        assert partition_for(13, 4) == 1
        assert partition_for(16, 4) == 0

    def test_stable_across_calls(self):
        assert partition_for("user-7", 8) == partition_for("user-7", 8)

    def test_all_partitions_reachable(self):
        hit = {partition_for(uid, 4) for uid in range(100)}
        assert hit == {0, 1, 2, 3}

    def test_single_partition(self):
        assert partition_for(12345, 1) == 0

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            partition_for(1, 0)

    def test_same_key_same_partition_via_topic(self):
        topic = Topic("t", partitions=4)
        indexes = {topic.publish(f"m{i}", key=42) for i in range(10)}
        assert len(indexes) == 1


class TestBoundedQueue:
    def test_publish_timeout_when_full(self):
        queue = PartitionQueue(0, capacity=2, max_attempts=3)
        queue.put("a", 1)
        queue.put("b", 1)
        with pytest.raises(PublishTimeout):
            queue.put("c", 1, timeout=0.05)

    def test_backpressure_releases_when_consumed(self):
        queue = PartitionQueue(0, capacity=1, max_attempts=3)
        queue.put("a", 1)
        unblocked = []

        def producer():
            queue.put("b", 1, timeout=5.0)
            unblocked.append(True)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.02)
        assert not unblocked  # still blocked on the full queue
        delivery = queue.get(timeout=1.0)
        queue.ack(delivery)
        thread.join(timeout=5.0)
        assert unblocked

    def test_fifo_order(self):
        queue = PartitionQueue(0, capacity=10, max_attempts=3)
        for i in range(5):
            queue.put(i, 1)
        got = [queue.get(0.1).value for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_get_batch_drains_up_to_max(self):
        queue = PartitionQueue(0, capacity=10, max_attempts=3)
        for i in range(5):
            queue.put(i, 1)
        batch = queue.get_batch(3, timeout=0.1)
        assert [d.value for d in batch] == [0, 1, 2]
        assert queue.depth == 2

    def test_get_timeout_returns_none(self):
        queue = PartitionQueue(0, capacity=4, max_attempts=3)
        assert queue.get(timeout=0.01) is None


class TestAtLeastOnce:
    def test_nack_redelivers_at_front(self):
        queue = PartitionQueue(0, capacity=4, max_attempts=3)
        queue.put("a", 1)
        queue.put("b", 1)
        first = queue.get(0.1)
        assert first.value == "a" and first.attempt == 1
        assert queue.nack(first) is True
        again = queue.get(0.1)
        assert again.value == "a" and again.attempt == 2  # before "b"
        assert queue.redelivered == 1

    def test_dead_letter_after_max_attempts(self):
        queue = PartitionQueue(0, capacity=4, max_attempts=2)
        queue.put("poison", 1)
        first = queue.get(0.1)
        assert queue.nack(first) is True
        second = queue.get(0.1)
        assert second.attempt == 2
        assert queue.nack(second) is False  # exhausted -> dead letter
        assert [d.value for d in queue.dead_letters] == ["poison"]
        assert queue.get(timeout=0.01) is None

    def test_join_waits_for_acks(self):
        queue = PartitionQueue(0, capacity=4, max_attempts=3)
        queue.put("a", 1)
        assert queue.join(timeout=0.05) is False  # unconsumed
        delivery = queue.get(0.1)
        assert queue.join(timeout=0.05) is False  # in flight
        queue.ack(delivery)
        assert queue.join(timeout=1.0) is True

    def test_join_counts_dead_letters_as_settled(self):
        queue = PartitionQueue(0, capacity=4, max_attempts=1)
        queue.put("poison", 1)
        delivery = queue.get(0.1)
        queue.nack(delivery)
        assert queue.join(timeout=1.0) is True


class TestEventBus:
    def test_publish_routes_to_topic(self):
        bus = EventBus()
        bus.create_topic("t", partitions=2, capacity=8)
        bus.publish("t", "hello", key=3)
        assert bus.topic("t").published == 1
        assert bus.stats().depth == 1

    def test_unknown_topic(self):
        bus = EventBus()
        with pytest.raises(KeyError):
            bus.publish("nope", "x", key=1)

    def test_duplicate_topic(self):
        bus = EventBus()
        bus.create_topic("t")
        with pytest.raises(ValueError):
            bus.create_topic("t")

    def test_closed_bus_rejects_publish(self):
        bus = EventBus()
        bus.create_topic("t")
        bus.close()
        with pytest.raises(BusClosed):
            bus.publish("t", "x", key=1)
