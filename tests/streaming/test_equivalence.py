"""Sharded streaming replay ≡ sequential pipeline application.

The correctness contract of the whole subsystem: pushing a LifeLog
stream through hash-partitioned consumer workers leaves the SUM
population in exactly the state a single sequential pass through
:meth:`EmotionalContextPipeline.apply_event` produces, because per-user
order is preserved and different users' updates commute.
"""

import numpy as np
import pytest

from repro.core.gradual_eit import GradualEIT, QuestionBank
from repro.core.pipeline import EmotionalContextPipeline
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore
from repro.datagen.behavior import BehaviorModel
from repro.datagen.catalog import CourseCatalog
from repro.datagen.population import Population
from repro.lifelog.events import ActionCategory, Event
from repro.lifelog.store import EventLog
from repro.streaming import (
    EventUpdateMapper,
    MapperConfig,
    ReplayDriver,
    StreamingUpdater,
)


def browsing_stream(n_users=120, n_courses=30, days=12.0, seed=7):
    population = Population.generate(n_users, seed=seed)
    catalog = CourseCatalog.generate(n_courses, seed=seed)
    behavior = BehaviorModel(population, catalog, seed=seed)
    events = []
    for user in population:
        events.extend(
            behavior.generate_browsing_events(user, horizon_days=days)
        )
    events.sort(key=lambda e: (e.timestamp, e.user_id, e.action))
    return catalog, events


def sequential_reference(events, item_emotions, config=None):
    sums = SumRepository()
    pipeline = EmotionalContextPipeline(
        GradualEIT(QuestionBank.default_bank()), ReinforcementPolicy()
    )
    mapper = EventUpdateMapper(item_emotions, config)
    for event in events:
        pipeline.apply_event(
            sums.get_or_create(event.user_id), event, mapper
        )
    return sums


def assert_same_state(reference: SumRepository, live: SumRepository):
    assert reference.user_ids() == live.user_ids()
    for uid in reference.user_ids():
        expected, actual = reference.get(uid), live.get(uid)
        np.testing.assert_allclose(
            actual.emotional_vector(), expected.emotional_vector(),
            atol=1e-12,
        )
        assert set(actual.sensibility) == set(expected.sensibility)
        for name, weight in expected.sensibility.items():
            assert actual.sensibility[name] == pytest.approx(weight, abs=1e-12)
        assert actual.evidence == expected.evidence


@pytest.mark.parametrize("n_shards", [1, 4])
def test_streaming_replay_matches_sequential_pipeline(sum_backend_cls, n_shards):
    catalog, events = browsing_stream()
    item_emotions = catalog.emotion_links()
    reference = sequential_reference(events, item_emotions)

    live = sum_backend_cls()
    updater = StreamingUpdater(
        live, item_emotions, n_shards=n_shards, batch_max=64,
    )
    with updater:
        ReplayDriver(updater).replay(events)
        assert updater.drain(timeout=60.0)

    stats = updater.stats()
    assert stats.applied == len(events)
    assert stats.dead_lettered == 0
    assert_same_state(reference, live)


def test_sharded_streamed_state_is_bit_equal_to_object_sequential():
    # ISSUE 5: four writer threads streaming into four store partitions
    # (per-shard locks, no cross-shard contention) leave the population
    # in byte-identical JSON to a single sequential object-backend pass.
    from repro.core.sharded_store import ShardedSumStore

    catalog, events = browsing_stream()
    item_emotions = catalog.emotion_links()
    reference = sequential_reference(events, item_emotions)

    live = ShardedSumStore(n_shards=4)
    updater = StreamingUpdater(live, item_emotions, n_shards=4, batch_max=64)
    with updater:
        ReplayDriver(updater).replay(events)
        assert updater.drain(timeout=60.0)
    assert live.dumps() == reference.dumps()


def test_columnar_streamed_state_is_bit_equal_to_object_sequential():
    # The ISSUE-3 contract, stated at full strength: the vectorized
    # columnar commit path and the object-backed sequential pipeline
    # serialize to the *same JSON string* after the same stream.
    catalog, events = browsing_stream()
    item_emotions = catalog.emotion_links()
    reference = sequential_reference(events, item_emotions)

    live = ColumnarSumStore()
    updater = StreamingUpdater(live, item_emotions, n_shards=4, batch_max=64)
    with updater:
        ReplayDriver(updater).replay(events)
        assert updater.drain(timeout=60.0)
    assert live.dumps() == reference.dumps()


def test_columnar_sequential_fig4_pipeline_is_bit_equal():
    # Same Fig. 4 one-event-at-a-time loop, run over row views instead
    # of SmartUserModel objects: identical JSON state.
    catalog, events = browsing_stream(n_users=60, days=8.0)
    item_emotions = catalog.emotion_links()
    reference = sequential_reference(events, item_emotions)

    store = ColumnarSumStore()
    pipeline = EmotionalContextPipeline(
        GradualEIT(QuestionBank.default_bank()), ReinforcementPolicy()
    )
    mapper = EventUpdateMapper(item_emotions)
    for event in events:
        pipeline.apply_event(
            store.get_or_create(event.user_id), event, mapper
        )
    assert store.dumps() == reference.dumps()


def test_streaming_with_decay_ticks_matches_sequential(_seed=11):
    catalog, events = browsing_stream(seed=_seed)
    item_emotions = catalog.emotion_links()
    config = MapperConfig(decay_every=10)
    reference = sequential_reference(events, item_emotions, config)

    live = SumRepository()
    updater = StreamingUpdater(
        live, item_emotions, mapper_config=config, n_shards=3,
    )
    with updater:
        updater.submit_many(events)
        assert updater.drain(timeout=60.0)
    assert_same_state(reference, live)


def test_write_behind_persists_every_event():
    catalog, events = browsing_stream(n_users=60, days=6.0)
    log = EventLog(segment_rows=500)
    updater = StreamingUpdater(
        SumRepository(), catalog.emotion_links(),
        event_log=log, n_shards=2, flush_every=128,
    )
    with updater:
        updater.submit_many(events)
        assert updater.drain(timeout=60.0)
    assert len(log) == len(events)
    # the log holds the same per-user streams, order preserved
    sample_uid = events[0].user_id
    expected = [e for e in events if e.user_id == sample_uid]
    stored = log.events_for_user(sample_uid)
    assert [e.action for e in stored] == [e.action for e in expected]
    stats = updater.stats()
    assert stats.flushed_events == len(events)
    assert stats.pending_writes == 0
    assert 1 <= stats.flush_count <= -(-len(events) // 128) + 1


def test_malformed_event_dead_letters_without_corrupting_state():
    catalog, events = browsing_stream(n_users=40, days=5.0)
    item_emotions = catalog.emotion_links()
    reference = sequential_reference(events, item_emotions)

    live = SumRepository()
    updater = StreamingUpdater(live, item_emotions, n_shards=2, max_attempts=2)
    poison = Event(
        timestamp=1.0, user_id=events[0].user_id, action="course_rate",
        category=ActionCategory.RATING,
        payload={"target": "7", "value": "not-a-number"},
    )
    with updater:
        updater.submit_many(events[: len(events) // 2])
        updater.submit(poison)
        updater.submit_many(events[len(events) // 2:])
        assert updater.drain(timeout=60.0)

    stats = updater.stats()
    assert stats.dead_lettered == 1
    assert stats.applied == len(events)
    assert_same_state(reference, live)


def test_unknown_emotion_names_rejected_at_construction():
    # The apply stage must never see an invalid attribute: the mapper
    # validates the whole item_emotions mapping up front.
    with pytest.raises(ValueError, match="not-an-emotion"):
        StreamingUpdater(SumRepository(), {"7": ("not-an-emotion",)})


def test_apply_failure_dead_letters_without_retry_or_killing_the_shard(
    sum_backend_cls,
):
    # An op that fails mid-apply may have left side effects, so it goes
    # straight to the dead-letter list (no double-applying retries) and
    # the shard keeps consuming.  On the columnar backend the batch
    # validation rejects the poison op *before* mutating, and the shard
    # falls back to the scalar path for the same dead-letter outcome.
    from repro.core.reward import ReinforcementPolicy as Policy
    from repro.core.updates import RewardOp
    from repro.streaming.bus import PartitionQueue
    from repro.streaming.cache import SumCache
    from repro.streaming.consumer import ShardWorker

    class StubMapper:
        def ops(self, event):
            if event.action == "poison":
                return (object(),)  # apply_ops raises TypeError on this
            return (RewardOp(("shy",), 1.0),)

        def tick_ops(self, user_id):
            return ()

    queue = PartitionQueue(0, capacity=16, max_attempts=3)
    sums = sum_backend_cls()
    cache = SumCache(sums)
    worker = ShardWorker(queue, StubMapper(), cache, Policy(), batch_max=8)
    for action in ("poison", "course_view"):
        queue.put(Event(timestamp=1.0, user_id=1, action=action,
                        category=ActionCategory.NAVIGATION), key=1)
    worker.start()
    assert queue.join(timeout=30.0)
    worker.request_stop()
    worker.join(timeout=10.0)
    assert [d.value.action for d in queue.dead_letters] == ["poison"]
    assert queue.redelivered == 0  # rejected, not retried
    assert queue.acked == 1
    assert sums.get(1).emotional["shy"] > 0.0  # the good event applied
    assert cache.version(1) >= 1  # commit happened despite the bad op


def test_updater_is_single_use():
    catalog, _ = browsing_stream(n_users=5)
    updater = StreamingUpdater(SumRepository(), catalog.emotion_links())
    with updater:
        pass
    with pytest.raises(RuntimeError, match="already stopped"):
        updater.start()
    updater.stop()  # second stop is a quiet no-op


def test_explicit_decay_ticks_apply_to_ticked_users_only():
    catalog, _ = browsing_stream(n_users=10)
    sums = SumRepository()
    for uid in (1, 2):
        sums.get_or_create(uid).activate_emotion("enthusiastic", 0.8)
    updater = StreamingUpdater(sums, catalog.emotion_links(), n_shards=2)
    with updater:
        updater.tick([1])
        assert updater.drain(timeout=30.0)
    decay = ReinforcementPolicy().decay
    assert sums.get(1).emotional["enthusiastic"] == pytest.approx(
        0.8 * (1.0 - decay)
    )
    assert sums.get(2).emotional["enthusiastic"] == pytest.approx(0.8)
