"""Unit tests for the event→op mapper and the versioned SUM cache."""

import pytest

from repro.core.sum_model import SumRepository
from repro.core.updates import DecayOp, PunishOp, RewardOp
from repro.lifelog.events import ActionCategory, Event
from repro.streaming.cache import SumCache
from repro.streaming.mapper import EventUpdateMapper, MapperConfig

ITEM_EMOTIONS = {"7": ("enthusiastic", "motivated"), "9": ("shy",)}


def event(action="course_view", category=ActionCategory.NAVIGATION,
          user_id=1, target="7", **payload):
    full_payload = dict(payload)
    if target is not None:
        full_payload["target"] = target
    return Event(timestamp=1_000.0, user_id=user_id, action=action,
                 category=category, payload=full_payload)


class TestMapper:
    def test_navigation_rewards_linked_emotions(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        ops = mapper.ops(event())
        assert ops == (RewardOp(("enthusiastic", "motivated"), 0.10),)

    def test_enrollment_full_strength(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        (op,) = mapper.ops(
            event("course_enroll", ActionCategory.ENROLLMENT)
        )
        assert isinstance(op, RewardOp) and op.strength == 1.0

    def test_low_rating_punishes(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        (op,) = mapper.ops(
            event("course_rate", ActionCategory.RATING, value="2")
        )
        assert op == PunishOp(("enthusiastic", "motivated"), 0.50)

    def test_high_rating_rewards(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        (op,) = mapper.ops(
            event("course_rate", ActionCategory.RATING, value="5")
        )
        assert isinstance(op, RewardOp)

    def test_campaign_open_vs_click_strengths(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        (open_op,) = mapper.ops(event("push_open", ActionCategory.CAMPAIGN))
        (click_op,) = mapper.ops(event("push_click", ActionCategory.CAMPAIGN))
        assert open_op.strength == pytest.approx(0.30)
        assert click_op.strength == pytest.approx(0.60)

    def test_campaign_events_resolve_course_payload(self):
        # Engine campaign events keep target=campaign_id and name the
        # advertised course separately; replay must still reinforce.
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        (op,) = mapper.ops(event(
            "push_open", ActionCategory.CAMPAIGN,
            target="push-01", course="7",
        ))
        assert op == RewardOp(("enthusiastic", "motivated"), 0.30)

    def test_unknown_target_produces_no_ops(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        assert mapper.ops(event(target="999")) == ()

    def test_missing_target_produces_no_ops(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        assert mapper.ops(event(target=None, q="science")) == ()

    def test_eit_and_account_are_not_reinforcement(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        assert mapper.ops(event("eit_answer", ActionCategory.EIT_ANSWER)) == ()
        assert mapper.ops(event("login", ActionCategory.ACCOUNT)) == ()

    def test_decay_every_n_op_bearing_events(self):
        mapper = EventUpdateMapper(
            ITEM_EMOTIONS, MapperConfig(decay_every=3)
        )
        sequences = [mapper.ops(event()) for _ in range(7)]
        decayed = [i for i, ops in enumerate(sequences)
                   if any(isinstance(op, DecayOp) for op in ops)]
        assert decayed == [2, 5]  # every third op-bearing event

    def test_decay_counters_are_per_user(self):
        mapper = EventUpdateMapper(
            ITEM_EMOTIONS, MapperConfig(decay_every=2)
        )
        assert not any(isinstance(op, DecayOp)
                       for op in mapper.ops(event(user_id=1)))
        assert not any(isinstance(op, DecayOp)
                       for op in mapper.ops(event(user_id=2)))
        assert any(isinstance(op, DecayOp)
                   for op in mapper.ops(event(user_id=1)))

    def test_tick_ops_reset_decay_counter(self):
        mapper = EventUpdateMapper(
            ITEM_EMOTIONS, MapperConfig(decay_every=2)
        )
        mapper.ops(event(user_id=1))
        assert mapper.tick_ops(1) == (DecayOp(),)
        # counter was reset, so the next event does not decay again
        assert not any(isinstance(op, DecayOp)
                       for op in mapper.ops(event(user_id=1)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MapperConfig(reward_navigation=1.5)
        with pytest.raises(ValueError):
            MapperConfig(decay_every=0)


class TestSumCache:
    def test_reads_are_snapshots_until_publish(self):
        sums = SumRepository()
        sums.get_or_create(1).activate_emotion("shy", 0.4)
        cache = SumCache(sums)
        assert cache.get(1).emotional["shy"] == pytest.approx(0.4)

        cache.mutate(1, lambda m: m.activate_emotion("shy", 0.3))
        # mutation applied to the live model but not yet visible
        assert sums.get(1).emotional["shy"] == pytest.approx(0.7)
        assert cache.get(1).emotional["shy"] == pytest.approx(0.4)

        cache.publish(1)
        assert cache.get(1).emotional["shy"] == pytest.approx(0.7)

    def test_versions_start_at_zero_and_bump_on_publish(self):
        cache = SumCache(SumRepository())
        assert cache.version(1) == 0
        cache.mutate(1, lambda m: m.activate_emotion("shy", 0.1))
        assert cache.version(1) == 0
        assert cache.publish(1) == 1
        assert cache.version(1) == 1

    def test_invalidate_bumps_each_user_once(self):
        cache = SumCache(SumRepository())
        for uid in (1, 1, 2, 2, 2):
            cache.mutate(uid, lambda m: m.activate_emotion("shy", 0.05))
        versions = cache.invalidate([1, 1, 2, 2, 2])
        assert versions == {1: 1, 2: 1}
        assert cache.global_version == 1  # one batch, one global bump

    def test_invalidate_all_users_covers_external_writes(self):
        sums = SumRepository()
        for uid in (3, 4):
            sums.get_or_create(uid).activate_emotion("shy", 0.2)
        cache = SumCache(sums)
        assert cache.get(3).emotional["shy"] == pytest.approx(0.2)
        # an external writer (the offline campaign loop) bypasses the cache
        sums.get(3).activate_emotion("shy", 0.5)
        assert cache.get(3).emotional["shy"] == pytest.approx(0.2)  # stale
        versions = cache.invalidate()
        assert versions == {3: 1, 4: 1}
        assert cache.get(3).emotional["shy"] == pytest.approx(0.7)

    def test_apply_and_publish_commits_atomically(self):
        sums = SumRepository()
        sums.get_or_create(1).activate_emotion("shy", 0.2)
        cache = SumCache(sums)
        assert cache.get(1).emotional["shy"] == pytest.approx(0.2)
        def bump(model):
            model.activate_emotion("shy", 0.3)
            return 1  # ops applied

        applied, version = cache.apply_and_publish(1, bump)
        assert applied == 1
        assert version == 1 == cache.version(1)
        # visible immediately at the new version — no mutate/publish gap
        assert cache.get(1).emotional["shy"] == pytest.approx(0.5)
        assert cache.global_version == 0  # batches are marked separately
        assert cache.mark_batch() == 1

    def test_apply_and_publish_zero_ops_commits_nothing(self):
        sums = SumRepository()
        sums.get_or_create(1)
        cache = SumCache(sums)
        applied, version = cache.apply_and_publish(1, lambda m: 0)
        assert (applied, version) == (0, 0)
        assert cache.version(1) == 0

    def test_invalidate_empty_is_noop(self):
        cache = SumCache(SumRepository())
        assert cache.invalidate([]) == {}
        assert cache.invalidate() == {}  # empty repository
        assert cache.global_version == 0

    def test_snapshot_mutation_does_not_leak_to_live_model(self):
        sums = SumRepository()
        sums.get_or_create(5).activate_emotion("shy", 0.2)
        cache = SumCache(sums)
        snapshot = cache.get(5)
        snapshot.activate_emotion("shy", 0.7)
        assert sums.get(5).emotional["shy"] == pytest.approx(0.2)

    def test_repository_duck_type(self):
        sums = SumRepository()
        sums.get_or_create(3)
        cache = SumCache(sums)
        assert cache.user_ids() == [3]
        assert 3 in cache
        assert len(cache) == 1
        assert cache.get_or_create(8).user_id == 8
        assert 8 in sums
