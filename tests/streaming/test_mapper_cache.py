"""Unit tests for the event→op mapper and the versioned SUM cache."""

import pytest

from repro.core.sum_model import SumRepository
from repro.core.updates import DecayOp, PunishOp, RewardOp
from repro.lifelog.events import ActionCategory, Event
from repro.streaming.cache import SumCache
from repro.streaming.mapper import EventUpdateMapper, MapperConfig

ITEM_EMOTIONS = {"7": ("enthusiastic", "motivated"), "9": ("shy",)}


def event(action="course_view", category=ActionCategory.NAVIGATION,
          user_id=1, target="7", **payload):
    full_payload = dict(payload)
    if target is not None:
        full_payload["target"] = target
    return Event(timestamp=1_000.0, user_id=user_id, action=action,
                 category=category, payload=full_payload)


class TestMapper:
    def test_navigation_rewards_linked_emotions(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        ops = mapper.ops(event())
        assert ops == (RewardOp(("enthusiastic", "motivated"), 0.10),)

    def test_enrollment_full_strength(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        (op,) = mapper.ops(
            event("course_enroll", ActionCategory.ENROLLMENT)
        )
        assert isinstance(op, RewardOp) and op.strength == 1.0

    def test_low_rating_punishes(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        (op,) = mapper.ops(
            event("course_rate", ActionCategory.RATING, value="2")
        )
        assert op == PunishOp(("enthusiastic", "motivated"), 0.50)

    def test_high_rating_rewards(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        (op,) = mapper.ops(
            event("course_rate", ActionCategory.RATING, value="5")
        )
        assert isinstance(op, RewardOp)

    def test_campaign_open_vs_click_strengths(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        (open_op,) = mapper.ops(event("push_open", ActionCategory.CAMPAIGN))
        (click_op,) = mapper.ops(event("push_click", ActionCategory.CAMPAIGN))
        assert open_op.strength == pytest.approx(0.30)
        assert click_op.strength == pytest.approx(0.60)

    def test_campaign_events_resolve_course_payload(self):
        # Engine campaign events keep target=campaign_id and name the
        # advertised course separately; replay must still reinforce.
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        (op,) = mapper.ops(event(
            "push_open", ActionCategory.CAMPAIGN,
            target="push-01", course="7",
        ))
        assert op == RewardOp(("enthusiastic", "motivated"), 0.30)

    def test_unknown_target_produces_no_ops(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        assert mapper.ops(event(target="999")) == ()

    def test_missing_target_produces_no_ops(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        assert mapper.ops(event(target=None, q="science")) == ()

    def test_eit_and_account_are_not_reinforcement(self):
        mapper = EventUpdateMapper(ITEM_EMOTIONS)
        assert mapper.ops(event("eit_answer", ActionCategory.EIT_ANSWER)) == ()
        assert mapper.ops(event("login", ActionCategory.ACCOUNT)) == ()

    def test_decay_every_n_op_bearing_events(self):
        mapper = EventUpdateMapper(
            ITEM_EMOTIONS, MapperConfig(decay_every=3)
        )
        sequences = [mapper.ops(event()) for _ in range(7)]
        decayed = [i for i, ops in enumerate(sequences)
                   if any(isinstance(op, DecayOp) for op in ops)]
        assert decayed == [2, 5]  # every third op-bearing event

    def test_decay_counters_are_per_user(self):
        mapper = EventUpdateMapper(
            ITEM_EMOTIONS, MapperConfig(decay_every=2)
        )
        assert not any(isinstance(op, DecayOp)
                       for op in mapper.ops(event(user_id=1)))
        assert not any(isinstance(op, DecayOp)
                       for op in mapper.ops(event(user_id=2)))
        assert any(isinstance(op, DecayOp)
                   for op in mapper.ops(event(user_id=1)))

    def test_tick_ops_reset_decay_counter(self):
        mapper = EventUpdateMapper(
            ITEM_EMOTIONS, MapperConfig(decay_every=2)
        )
        mapper.ops(event(user_id=1))
        assert mapper.tick_ops(1) == (DecayOp(),)
        # counter was reset, so the next event does not decay again
        assert not any(isinstance(op, DecayOp)
                       for op in mapper.ops(event(user_id=1)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MapperConfig(reward_navigation=1.5)
        with pytest.raises(ValueError):
            MapperConfig(decay_every=0)


class TestSumCache:
    def test_reads_are_snapshots_until_publish(self):
        sums = SumRepository()
        sums.get_or_create(1).activate_emotion("shy", 0.4)
        cache = SumCache(sums)
        assert cache.get(1).emotional["shy"] == pytest.approx(0.4)

        cache.mutate(1, lambda m: m.activate_emotion("shy", 0.3))
        # mutation applied to the live model but not yet visible
        assert sums.get(1).emotional["shy"] == pytest.approx(0.7)
        assert cache.get(1).emotional["shy"] == pytest.approx(0.4)

        cache.publish(1)
        assert cache.get(1).emotional["shy"] == pytest.approx(0.7)

    def test_versions_start_at_zero_and_bump_on_publish(self):
        cache = SumCache(SumRepository())
        assert cache.version(1) == 0
        cache.mutate(1, lambda m: m.activate_emotion("shy", 0.1))
        assert cache.version(1) == 0
        assert cache.publish(1) == 1
        assert cache.version(1) == 1

    def test_invalidate_bumps_each_user_once(self):
        cache = SumCache(SumRepository())
        for uid in (1, 1, 2, 2, 2):
            cache.mutate(uid, lambda m: m.activate_emotion("shy", 0.05))
        versions = cache.invalidate([1, 1, 2, 2, 2])
        assert versions == {1: 1, 2: 1}
        assert cache.global_version == 1  # one batch, one global bump

    def test_invalidate_all_users_covers_external_writes(self):
        sums = SumRepository()
        for uid in (3, 4):
            sums.get_or_create(uid).activate_emotion("shy", 0.2)
        cache = SumCache(sums)
        assert cache.get(3).emotional["shy"] == pytest.approx(0.2)
        # an external writer (the offline campaign loop) bypasses the cache
        sums.get(3).activate_emotion("shy", 0.5)
        assert cache.get(3).emotional["shy"] == pytest.approx(0.2)  # stale
        versions = cache.invalidate()
        assert versions == {3: 1, 4: 1}
        assert cache.get(3).emotional["shy"] == pytest.approx(0.7)

    def test_apply_and_publish_commits_atomically(self):
        sums = SumRepository()
        sums.get_or_create(1).activate_emotion("shy", 0.2)
        cache = SumCache(sums)
        assert cache.get(1).emotional["shy"] == pytest.approx(0.2)
        def bump(model):
            model.activate_emotion("shy", 0.3)
            return 1  # ops applied

        applied, version = cache.apply_and_publish(1, bump)
        assert applied == 1
        assert version == 1 == cache.version(1)
        # visible immediately at the new version — no mutate/publish gap
        assert cache.get(1).emotional["shy"] == pytest.approx(0.5)
        assert cache.global_version == 0  # batches are marked separately
        assert cache.mark_batch() == 1

    def test_apply_and_publish_zero_ops_commits_nothing(self):
        sums = SumRepository()
        sums.get_or_create(1)
        cache = SumCache(sums)
        applied, version = cache.apply_and_publish(1, lambda m: 0)
        assert (applied, version) == (0, 0)
        assert cache.version(1) == 0

    def test_invalidate_empty_is_noop(self):
        cache = SumCache(SumRepository())
        assert cache.invalidate([]) == {}
        assert cache.invalidate() == {}  # empty repository
        assert cache.global_version == 0

    def test_snapshots_are_frozen_and_raise_on_write(self):
        # One mutating reader used to silently poison every other reader
        # at that version ("immutable-by-convention"); snapshots are now
        # genuinely immutable on both backends.
        sums = SumRepository()
        sums.get_or_create(5).activate_emotion("shy", 0.2)
        cache = SumCache(sums)
        snapshot = cache.get(5)
        with pytest.raises((TypeError, ValueError)):
            snapshot.activate_emotion("shy", 0.7)
        with pytest.raises((TypeError, ValueError)):
            snapshot.set_subjective("pref", 0.4)
        with pytest.raises((TypeError, ValueError)):
            snapshot.set_sensibility("shy", 0.9)
        with pytest.raises((TypeError, ValueError, AttributeError)):
            snapshot.asked_questions.add("q-1")
        # the live model and the shared snapshot are both unharmed
        assert sums.get(5).emotional["shy"] == pytest.approx(0.2)
        assert cache.get(5).emotional["shy"] == pytest.approx(0.2)

    def test_columnar_snapshots_are_frozen_row_views(self):
        from repro.core.sum_store import ColumnarSumStore

        store = ColumnarSumStore()
        view = store.get_or_create(5)
        view.activate_emotion("shy", 0.2)
        view.set_subjective("pref[a]", 0.7)
        cache = SumCache(store)
        snapshot = cache.get(5)
        assert snapshot.to_dict() == store.get(5).to_dict()
        with pytest.raises((TypeError, ValueError, KeyError)):
            snapshot.activate_emotion("shy", 0.5)
        with pytest.raises((TypeError, ValueError, KeyError)):
            snapshot.subjective["pref[b]"] = 0.1
        with pytest.raises(TypeError):
            snapshot.objective = {"age": 30}
        # frozen at the published version: live writes don't show through
        store.get(5).activate_emotion("shy", 0.3)
        assert snapshot.emotional["shy"] == pytest.approx(0.2)
        assert cache.get(5) is snapshot  # cached until the next publish

    def test_repository_duck_type(self):
        sums = SumRepository()
        sums.get_or_create(3)
        cache = SumCache(sums)
        assert cache.user_ids() == [3]
        assert 3 in cache
        assert len(cache) == 1
        assert cache.get_or_create(8).user_id == 8
        assert 8 in sums


class TestColumnarBatchReads:
    """SumCache.batch: the allocation-free columnar serving read path."""

    def _world(self):
        from repro.core.reward import ReinforcementPolicy
        from repro.core.sum_store import ColumnarSumStore

        store = ColumnarSumStore()
        for uid in (1, 2, 3):
            view = store.get_or_create(uid)
            view.activate_emotion("shy", 0.1 * uid)
            view.set_sensibility("shy", 0.2)
        return store, SumCache(store), ReinforcementPolicy()

    def test_batch_exposed_only_on_columnar_repositories(self):
        assert not callable(getattr(SumCache(SumRepository()), "batch", None))
        __, cache, __ = self._world()
        assert callable(cache.batch)

    def test_batch_slices_match_scalar_snapshots(self):
        import numpy as np

        from repro.core.emotions import EMOTION_NAMES

        __, cache, __ = self._world()
        batch = cache.batch([1, 2, 3])
        intensity = batch.intensity_matrix(EMOTION_NAMES)
        for row, uid in enumerate(batch.user_ids):
            np.testing.assert_array_equal(
                intensity[row], cache.get(uid).emotional_vector()
            )
        sens = batch.sensibility_matrix(("shy", "never-set"), default=1.0)
        assert np.all(sens[:, 0] == 0.2)
        assert np.all(sens[:, 1] == 1.0)

    def test_batch_is_version_stamped_and_bit_stable(self):
        import numpy as np

        from repro.core.emotions import EMOTION_NAMES

        __, cache, policy = self._world()
        old = cache.batch([1, 2])
        before = old.intensity_matrix(EMOTION_NAMES).copy()
        assert old.versions == {1: 0, 2: 0}

        cache.apply_batch_and_publish([(1, (RewardOp(("shy",), 1.0),))], policy)
        # the captured batch is frozen at its versions, bit for bit
        np.testing.assert_array_equal(
            old.intensity_matrix(EMOTION_NAMES), before
        )
        fresh = cache.batch([1, 2])
        assert fresh.versions == {1: 1, 2: 0}
        assert fresh.intensity_matrix(EMOTION_NAMES)[0].sum() > before[0].sum()

    def test_batch_read_builds_no_models_and_no_dict_roundtrips(self, monkeypatch):
        from repro.core.emotions import EMOTION_NAMES
        from repro.core.sum_model import SmartUserModel

        __, cache, __ = self._world()

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("object rebuild on the columnar read path")

        monkeypatch.setattr(SmartUserModel, "to_dict", boom)
        monkeypatch.setattr(SmartUserModel, "from_dict", boom)
        batch = cache.batch([1, 2, 3])
        batch.intensity_matrix(EMOTION_NAMES)
        batch.sensibility_matrix(EMOTION_NAMES)
        assert cache.cached_users == 0  # no per-user snapshots either

    def test_batch_unknown_users_raise_one_typed_error(self):
        from repro.core.sum_model import UnknownUserError

        __, cache, __ = self._world()
        with pytest.raises(UnknownUserError) as excinfo:
            cache.batch([1, 404, 405])
        assert excinfo.value.user_ids == (404, 405)
        batch = cache.batch([404], create=True)
        assert batch.user_ids == [404] and 404 in cache

    def test_mirror_copies_rows_once_per_published_version(self):
        from repro.core.emotions import EMOTION_NAMES

        store, cache, policy = self._world()
        assert cache.mirrored_users == 0
        cache.batch([1, 2, 3])
        assert cache.mirrored_users == 3
        # unpublished live writes stay invisible at the old version
        store.get(1).activate_emotion("shy", 0.5)
        stale = cache.batch([1])
        assert stale.intensity_matrix(EMOTION_NAMES)[0][
            EMOTION_NAMES.index("shy")
        ] == pytest.approx(0.1)
        cache.invalidate([1])
        fresh = cache.batch([1])
        assert fresh.intensity_matrix(EMOTION_NAMES)[0][
            EMOTION_NAMES.index("shy")
        ] == pytest.approx(0.6)
        assert fresh.versions[1] == 1

    def test_batch_iteration_yields_frozen_snapshots(self):
        __, cache, __ = self._world()
        models = list(cache.batch([1, 2]))
        assert [m.user_id for m in models] == [1, 2]
        with pytest.raises((TypeError, ValueError, KeyError)):
            models[0].activate_emotion("shy", 0.4)

    def test_mirror_survives_store_growth_between_reads(self):
        # regression: a torn (values, mask) shape pair during capacity
        # growth could leave the mirror permanently divergent and crash
        # every later refresh with IndexError
        from repro.core.emotions import EMOTION_NAMES
        from repro.core.sum_store import ColumnarSumStore

        store = ColumnarSumStore(initial_capacity=2)
        for uid in (1, 2):
            store.get_or_create(uid).activate_emotion("shy", 0.1 * uid)
        cache = SumCache(store)
        cache.batch([1, 2])  # mirror sized to the tiny initial capacity
        for uid in range(10, 90):  # several row-capacity doublings
            store.get_or_create(uid).set_subjective(f"pref[{uid}]", 0.5)
        cache.invalidate([1])
        batch = cache.batch(list(range(10, 90)) + [1, 2])
        assert batch.intensity_matrix(EMOTION_NAMES).shape == (82, 10)
        shy = EMOTION_NAMES.index("shy")
        assert batch.intensity_matrix(EMOTION_NAMES)[-2, shy] == pytest.approx(0.1)

    def test_object_snapshots_reject_attribute_rebinding(self):
        # regression: mapping proxies stopped item writes, but a reader
        # could still swap whole attribute mappings on the shared copy
        sums = SumRepository()
        sums.get_or_create(5).activate_emotion("shy", 0.2)
        cache = SumCache(sums)
        snapshot = cache.get(5)
        with pytest.raises(TypeError, match="read-only"):
            snapshot.objective = {"poison": 1}
        with pytest.raises(TypeError, match="read-only"):
            snapshot.sensibility = {"shy": 99.0}
        # nested objects are sealed too, not just the model itself
        with pytest.raises(TypeError, match="read-only"):
            snapshot.emotional.intensities = {"shy": 0.99}
        with pytest.raises(TypeError, match="read-only"):
            snapshot.ei_profile.scores = {}
        assert cache.get(5).sensibility.get("shy", 0.0) != 99.0
        assert cache.get(5).emotional["shy"] == pytest.approx(0.2)

    def test_columnar_snapshots_reject_attribute_rebinding(self):
        from repro.core.sum_store import ColumnarSumStore

        store = ColumnarSumStore()
        store.get_or_create(5).activate_emotion("shy", 0.2)
        cache = SumCache(store)
        snapshot = cache.get(5)
        with pytest.raises(TypeError, match="read-only"):
            snapshot.sensibility = {"shy": 99.0}
        with pytest.raises(TypeError, match="read-only"):
            snapshot.emotional.intensities = {"shy": 0.99}
        with pytest.raises(TypeError, match="read-only"):
            snapshot.ei_profile.scores = {}
        assert cache.get(5).emotional["shy"] == pytest.approx(0.2)
