"""Snapshot isolation of the versioned SUM cache, pinned as properties.

The tentpole contract of ISSUE 4: a snapshot taken at version *v* —
whether a per-user frozen view or a columnar batch capture — reflects
exactly the batches published up to *v* and is **bit-stable** no matter
how many batches land afterwards; fresh reads then observe the
batch-applied state at the bumped version.  Never a torn read.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emotions import EMOTION_NAMES
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_store import ColumnarSumStore
from repro.core.updates import DecayOp, PunishOp, RewardOp
from repro.streaming.cache import SumCache

POLICY = ReinforcementPolicy()
N_USERS = 5

emotions = st.sampled_from(EMOTION_NAMES)
attributes = st.lists(emotions, min_size=1, max_size=3).map(tuple)
strengths = st.floats(0.0, 1.0, allow_nan=False)
ops = st.one_of(
    st.just(DecayOp()),
    st.builds(RewardOp, attributes, strengths),
    st.builds(PunishOp, attributes, strengths),
)
op_sequences = st.lists(ops, min_size=1, max_size=4).map(tuple)
batches = st.lists(
    st.tuples(st.integers(0, N_USERS - 1), op_sequences),
    min_size=1,
    max_size=4,
)


def build_cache(seed_batches):
    store = ColumnarSumStore()
    for uid in range(N_USERS):
        store.get_or_create(uid)
    cache = SumCache(store)
    for batch in seed_batches:
        cache.apply_batch_and_publish(batch, POLICY)
        cache.mark_batch()
    return store, cache


@settings(max_examples=40, deadline=None)
@given(seed_batches=st.lists(batches, max_size=3), later_batches=st.lists(batches, min_size=1, max_size=3))
def test_snapshot_at_version_v_is_bit_stable_while_batches_land(
    seed_batches, later_batches
):
    __, cache = build_cache(seed_batches)
    ids = list(range(N_USERS))

    views = {uid: cache.get(uid) for uid in ids}
    view_dicts = {uid: views[uid].to_dict() for uid in ids}
    capture = cache.batch(ids)
    intensity = capture.intensity_matrix(EMOTION_NAMES).copy()
    sensibility = capture.sensibility_matrix(EMOTION_NAMES).copy()
    versions = dict(capture.versions)

    for batch in later_batches:
        cache.apply_batch_and_publish(batch, POLICY)
        cache.mark_batch()

    # the capture is frozen: bit-identical matrices, same version stamps
    np.testing.assert_array_equal(
        capture.intensity_matrix(EMOTION_NAMES), intensity
    )
    np.testing.assert_array_equal(
        capture.sensibility_matrix(EMOTION_NAMES), sensibility
    )
    assert capture.versions == versions
    # per-user frozen views are equally stable
    for uid in ids:
        assert views[uid].to_dict() == view_dicts[uid]

    # fresh reads observe the batch-applied state at bumped versions,
    # and equal the live store bit for bit (no torn rows)
    fresh = cache.batch(ids)
    touched = {int(uid) for batch in later_batches for uid, __ in batch}
    for uid in ids:
        if uid in touched:
            assert fresh.versions[uid] > versions[uid]
        else:
            assert fresh.versions[uid] == versions[uid]
    live_rows = np.vstack(
        [cache.repository.get(uid).emotional_vector() for uid in ids]
    )
    np.testing.assert_array_equal(
        fresh.intensity_matrix(EMOTION_NAMES), live_rows
    )


@settings(max_examples=25, deadline=None)
@given(seed_batches=st.lists(batches, max_size=2), later=batches)
def test_scalar_snapshots_pin_old_state_at_old_version(seed_batches, later):
    store, cache = build_cache(seed_batches)
    ids = list(range(N_USERS))
    before = {uid: cache.version(uid) for uid in ids}
    old_views = {uid: cache.get(uid) for uid in ids}
    old_dicts = {uid: old_views[uid].to_dict() for uid in ids}

    counts, versions = cache.apply_batch_and_publish(later, POLICY)
    assert sum(counts) > 0

    for uid in ids:
        # old snapshot object: old state, regardless of publishes
        assert old_views[uid].to_dict() == old_dicts[uid]
        # new snapshot: live state at the (possibly bumped) version
        assert cache.get(uid).to_dict() == store.get(uid).to_dict()
        if versions.get(uid, before[uid]) > before[uid]:
            assert cache.version(uid) == before[uid] + 1
        else:
            assert cache.version(uid) == before[uid]


def test_zero_op_batches_do_not_bump_or_invalidate():
    __, cache = build_cache([])
    capture = cache.batch(list(range(N_USERS)))
    counts, versions = cache.apply_batch_and_publish([], POLICY)
    assert counts == [] and versions == {}
    fresh = cache.batch(list(range(N_USERS)))
    assert fresh.versions == capture.versions == {
        uid: 0 for uid in range(N_USERS)
    }


def test_object_backend_rejects_batch_publish():
    from repro.core.sum_model import SumRepository

    cache = SumCache(SumRepository())
    with pytest.raises(TypeError, match="columnar"):
        cache.apply_batch_and_publish(
            [(1, (RewardOp(("shy",), 1.0),))], POLICY
        )
