"""Property tests pinning ReinforcementPolicy edge cases.

The reinforcement mechanism is the only writer of emotional intensities
on the hot streaming path, so its boundary behaviour is load-bearing:
zero-strength interactions must be no-ops, punishment must never drive
an intensity below zero, and no sequence of reward/punish rounds may
push a sensibility weight outside [0, 1].
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emotions import EMOTION_NAMES
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SmartUserModel

emotion_lists = st.lists(
    st.sampled_from(EMOTION_NAMES), min_size=1, max_size=5, unique=True
)
strengths = st.floats(0.0, 1.0, allow_nan=False)
policies = st.builds(
    ReinforcementPolicy,
    learning_rate=st.floats(0.01, 1.0, allow_nan=False),
    punish_ratio=st.floats(0.0, 1.0, allow_nan=False),
    decay=st.floats(0.0, 0.5, allow_nan=False, exclude_max=True),
)


def snapshot(model):
    return (
        dict(model.emotional.intensities),
        dict(model.sensibility),
        dict(model.evidence),
    )


class TestZeroStrength:
    @given(policies, emotion_lists)
    def test_reward_strength_zero_moves_no_values(self, policy, attributes):
        model = SmartUserModel(1)
        for name in attributes:
            model.activate_emotion(name, 0.3)
            model.set_sensibility(name, 0.4)
        values_before = (
            dict(model.emotional.intensities), dict(model.sensibility)
        )
        policy.reward(model, attributes, strength=0.0)
        assert (
            dict(model.emotional.intensities), dict(model.sensibility)
        ) == values_before

    @given(policies, emotion_lists)
    def test_punish_strength_zero_moves_no_values(self, policy, attributes):
        model = SmartUserModel(1)
        for name in attributes:
            model.activate_emotion(name, 0.3)
            model.set_sensibility(name, 0.4)
        values_before = (
            dict(model.emotional.intensities), dict(model.sensibility)
        )
        policy.punish(model, attributes, strength=0.0)
        assert (
            dict(model.emotional.intensities), dict(model.sensibility)
        ) == values_before


class TestBounds:
    @given(policies, emotion_lists, st.integers(1, 30))
    def test_punish_never_drives_intensity_below_zero(
        self, policy, attributes, rounds
    ):
        model = SmartUserModel(1)
        for name in attributes:
            model.activate_emotion(name, 0.2)
        for __ in range(rounds):
            policy.punish(model, attributes, strength=1.0)
        for name in attributes:
            assert model.emotional[name] >= 0.0

    @settings(max_examples=60)
    @given(
        policies,
        st.lists(
            st.tuples(
                st.booleans(), emotion_lists, strengths
            ),
            max_size=40,
        ),
    )
    def test_values_stay_clamped_after_many_rounds(self, policy, rounds):
        model = SmartUserModel(1)
        for is_reward, attributes, strength in rounds:
            if is_reward:
                policy.reward(model, attributes, strength)
            else:
                policy.punish(model, attributes, strength)
        for name, weight in model.sensibility.items():
            assert 0.0 <= weight <= 1.0, name
        for name in model.emotional:
            assert 0.0 <= model.emotional[name] <= 1.0, name

    @given(policies, emotion_lists, st.integers(1, 10))
    def test_decay_keeps_everything_clamped(self, policy, attributes, ticks):
        model = SmartUserModel(1)
        for name in attributes:
            model.activate_emotion(name, 1.0)
            model.set_sensibility(name, 1.0)
        for __ in range(ticks):
            policy.apply_decay(model)
        for name in attributes:
            assert 0.0 <= model.emotional[name] <= 1.0
            assert 0.0 <= model.sensibility[name] <= 1.0


class TestAsymmetry:
    @given(emotion_lists, st.floats(0.1, 1.0, allow_nan=False))
    def test_punish_is_weaker_than_reward(self, attributes, strength):
        policy = ReinforcementPolicy(punish_ratio=0.5)
        rewarded = SmartUserModel(1)
        punished = SmartUserModel(2)
        for name in attributes:
            rewarded.activate_emotion(name, 0.5)
            punished.activate_emotion(name, 0.5)
        policy.reward(rewarded, attributes, strength)
        policy.punish(punished, attributes, strength)
        for name in attributes:
            gain = rewarded.emotional[name] - 0.5
            loss = 0.5 - punished.emotional[name]
            assert loss <= gain + 1e-12
