"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.emotions import EMOTION_NAMES, EmotionalState
from repro.core.human_values import DEFAULT_VALUES, HumanValuesScale
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SmartUserModel
from repro.lifelog.events import ActionCategory, Event
from repro.lifelog.sessionizer import sessionize
from repro.ml.calibration import PlattScaler
from repro.ml.metrics import cumulative_gain_curve, roc_auc

emotion = st.sampled_from(EMOTION_NAMES)
intensity = st.floats(0.0, 1.0, allow_nan=False)
delta = st.floats(-2.0, 2.0, allow_nan=False)


class TestEmotionalStateInvariants:
    @given(st.lists(st.tuples(emotion, delta), max_size=50))
    def test_activation_sequences_stay_bounded(self, updates):
        state = EmotionalState()
        for name, d in updates:
            state.activate(name, d)
        for name in EMOTION_NAMES:
            assert 0.0 <= state[name] <= 1.0

    @given(st.dictionaries(emotion, intensity, max_size=10))
    def test_mood_bounded(self, intensities):
        state = EmotionalState(dict(intensities))
        assert -1.0 <= state.mood() <= 1.0
        assert 0.0 <= state.arousal() <= 1.0

    @given(st.dictionaries(emotion, intensity, max_size=10),
           st.floats(0.0, 1.0, allow_nan=False))
    def test_decay_never_increases(self, intensities, rate):
        state = EmotionalState(dict(intensities))
        before = {n: state[n] for n in EMOTION_NAMES}
        state.decay(rate)
        for name in EMOTION_NAMES:
            assert state[name] <= before[name] + 1e-12

    @given(st.dictionaries(emotion, intensity, max_size=10))
    def test_vector_round_trip(self, intensities):
        state = EmotionalState(dict(intensities))
        clone = EmotionalState.from_vector(state.as_vector())
        for name in EMOTION_NAMES:
            assert abs(clone[name] - state[name]) < 1e-12


class TestReinforcementInvariants:
    @given(
        st.lists(
            st.tuples(st.booleans(),
                      st.lists(emotion, min_size=1, max_size=3),
                      st.floats(0.0, 1.0, allow_nan=False)),
            max_size=30,
        )
    )
    def test_arbitrary_reward_punish_sequences_stay_valid(self, steps):
        policy = ReinforcementPolicy()
        model = SmartUserModel(1)
        for is_reward, attributes, strength in steps:
            if is_reward:
                policy.reward(model, attributes, strength)
            else:
                policy.punish(model, attributes, strength)
        for name in EMOTION_NAMES:
            assert 0.0 <= model.emotional[name] <= 1.0
        for weight in model.sensibility.values():
            assert 0.0 <= weight <= 1.0


class TestSessionizerInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.floats(0, 10_000, allow_nan=False)),
            min_size=1,
            max_size=60,
        ),
        st.floats(1.0, 5_000.0, allow_nan=False),
    )
    def test_partition_and_gap_invariants(self, pairs, timeout):
        events = [
            Event(ts, uid, "view", ActionCategory.NAVIGATION)
            for uid, ts in pairs
        ]
        sessions = sessionize(events, timeout=timeout)
        # every event in exactly one session
        assert sum(len(s) for s in sessions) == len(events)
        for session in sessions:
            times = [e.timestamp for e in session.events]
            assert times == sorted(times)
            for a, b in zip(times, times[1:]):
                assert b - a <= timeout
        # consecutive sessions of one user are separated by > timeout
        by_user = {}
        for session in sessions:
            by_user.setdefault(session.user_id, []).append(session)
        for user_sessions in by_user.values():
            user_sessions.sort(key=lambda s: s.start)
            for a, b in zip(user_sessions, user_sessions[1:]):
                assert b.start - a.end > timeout


class TestGainCurveInvariants:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.floats(-5, 5, allow_nan=False)),
            min_size=5,
            max_size=200,
        ).filter(lambda rows: any(y for y, __ in rows))
    )
    def test_monotone_with_unit_endpoints(self, rows):
        y = np.asarray([int(label) for label, __ in rows])
        scores = np.asarray([s for __, s in rows])
        fractions, captured = cumulative_gain_curve(y, scores)
        assert captured[0] == 0.0
        assert captured[-1] == 1.0
        assert np.all(np.diff(captured) >= -1e-12)
        assert np.all((captured >= 0) & (captured <= 1))


class TestPlattInvariants:
    @given(st.integers(0, 10_000))
    def test_calibration_preserves_auc(self, seed):
        rng = np.random.default_rng(seed)
        margins = rng.normal(size=80)
        y = (rng.random(80) < 1 / (1 + np.exp(-margins))).astype(int)
        if y.sum() in (0, len(y)):
            return
        proba = PlattScaler().fit(margins, y).predict_proba(margins)
        assert np.all((proba >= 0) & (proba <= 1))
        assert abs(roc_auc(y, proba) - roc_auc(y, margins)) < 1e-9


class TestHumanValuesInvariants:
    value_name = st.sampled_from(DEFAULT_VALUES)

    @given(st.lists(st.dictionaries(value_name, intensity, min_size=1,
                                    max_size=4), max_size=20))
    def test_weights_stay_bounded(self, actions):
        scale = HumanValuesScale()
        for signals in actions:
            scale.observe_action(signals)
        for weight in scale.weights.values():
            assert 0.0 <= weight <= 1.0

    @given(st.dictionaries(value_name, intensity, min_size=2, max_size=8))
    def test_coherence_bounded_and_reflexive(self, stated):
        scale = HumanValuesScale()
        for name, value in stated.items():
            scale.observe_action({name: value})
        coherence = scale.coherence(stated)
        assert 0.0 <= coherence <= 1.0
