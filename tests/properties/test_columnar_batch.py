"""Vectorized batch application ≡ sequential scalar application, bit for bit.

The columnar store's correctness contract: for *arbitrary* interleavings
of Decay/Reward/Punish ops — duplicate attributes inside one op,
duplicate users across batch items, clamp-saturating strengths, any
policy knobs — :func:`repro.core.updates.apply_ops_batch` over a
columnar shard leaves every user in exactly (``==``, not approximately)
the state sequential :func:`repro.core.updates.apply_op` produces on the
object backend.  The JSON serializations must therefore also be equal
byte for byte, which is what these tests compare.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.emotions import EMOTION_NAMES
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore
from repro.core.updates import (
    DecayOp,
    PunishOp,
    RewardOp,
    apply_ops,
    apply_ops_batch,
)

# duplicates allowed on purpose: one op rewarding ("shy", "shy") must
# clamp between the two touches, a case scatter-adds naively get wrong
attribute_tuples = st.lists(
    st.sampled_from(EMOTION_NAMES), min_size=1, max_size=4
).map(tuple)
strengths = st.floats(0.0, 2.0, allow_nan=False)  # > 1 exercises clamp01

ops = st.one_of(
    st.just(DecayOp()),
    st.builds(RewardOp, attributes=attribute_tuples, strength=strengths),
    st.builds(PunishOp, attributes=attribute_tuples, strength=strengths),
)

#: (user_id, ops) batch items; small id range forces duplicate users
batch_items = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),
        st.lists(ops, max_size=6).map(tuple),
    ),
    max_size=8,
)

policies = st.builds(
    ReinforcementPolicy,
    learning_rate=st.floats(0.01, 1.0, allow_nan=False),
    punish_ratio=st.floats(0.0, 1.0, allow_nan=False),
    decay=st.floats(0.0, 0.5, allow_nan=False, exclude_max=True),
)


@settings(max_examples=150, deadline=None)
@given(batch_items, policies)
def test_batch_apply_bit_equal_to_sequential(items, policy):
    reference = SumRepository()
    for user_id, user_ops in items:
        apply_ops(reference.get_or_create(user_id), user_ops, policy)

    store = ColumnarSumStore()
    counts = apply_ops_batch(store, items, policy)

    assert counts == [len(user_ops) for __, user_ops in items]
    assert store.dumps() == reference.dumps()


@settings(max_examples=100, deadline=None)
@given(batch_items, policies)
def test_batch_apply_on_object_repo_matches_columnar(items, policy):
    # the dispatcher's scalar fallback and the vectorized path agree
    repo = SumRepository()
    store = ColumnarSumStore()
    assert apply_ops_batch(repo, items, policy) == apply_ops_batch(
        store, items, policy
    )
    assert repo.dumps() == store.dumps()


@settings(max_examples=50, deadline=None)
@given(batch_items, policies)
def test_json_and_catalog_round_trips_preserve_state(tmp_path_factory, items, policy):
    store = ColumnarSumStore()
    apply_ops_batch(store, items, policy)
    payload = store.dumps()

    # JSON import/export path (SumRepository-compatible both ways)
    assert ColumnarSumStore.loads(payload).dumps() == payload
    assert SumRepository.loads(payload).dumps() == payload

    # columnar .npz pages through the repro.db Catalog
    directory = tmp_path_factory.mktemp("pages")
    store.save(directory)
    assert ColumnarSumStore.load(directory).dumps() == payload
    assert json.loads(payload) == json.loads(ColumnarSumStore.load(directory).dumps())
