"""Property-based tests on the database substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.index import HashIndex, SortedIndex
from repro.db.query import Query, hash_join
from repro.db.schema import Column, ColumnType, Schema
from repro.db.storage import load_table, save_table
from repro.db.table import Table

SCHEMA = Schema(
    [
        Column("k", ColumnType.INT64),
        Column("v", ColumnType.FLOAT64),
        Column("s", ColumnType.STRING),
    ]
)

row_strategy = st.fixed_dictionaries(
    {
        "k": st.integers(-50, 50),
        "v": st.floats(-1e6, 1e6, allow_nan=False),
        "s": st.text(alphabet="abcXYZ ", max_size=8),
    }
)


class TestTableProperties:
    @given(st.lists(row_strategy, max_size=60))
    def test_append_then_read_back(self, rows):
        table = Table.from_rows(SCHEMA, rows)
        assert len(table) == len(rows)
        assert list(table.rows()) == rows

    @given(st.lists(row_strategy, min_size=1, max_size=40), st.data())
    def test_take_preserves_rows(self, rows, data):
        table = Table.from_rows(SCHEMA, rows)
        ids = data.draw(
            st.lists(st.integers(0, len(rows) - 1), max_size=20)
        )
        taken = table.take(ids)
        assert [taken.row(i) for i in range(len(ids))] == [
            rows[j] for j in ids
        ]


class TestIndexVsScanProperties:
    @given(st.lists(row_strategy, min_size=1, max_size=60),
           st.integers(-50, 50))
    def test_hash_index_equals_scan(self, rows, key):
        table = Table.from_rows(SCHEMA, rows)
        index = HashIndex(table, "k")
        scan = {i for i, row in enumerate(rows) if row["k"] == key}
        assert set(index.lookup(key).tolist()) == scan

    @given(st.lists(row_strategy, min_size=1, max_size=60),
           st.floats(-1e6, 1e6, allow_nan=False),
           st.floats(-1e6, 1e6, allow_nan=False))
    def test_sorted_index_range_equals_scan(self, rows, a, b):
        low, high = min(a, b), max(a, b)
        table = Table.from_rows(SCHEMA, rows)
        index = SortedIndex(table, "v")
        scan = {i for i, row in enumerate(rows) if low <= row["v"] <= high}
        assert set(index.range(low, high).tolist()) == scan

    @given(st.lists(row_strategy, min_size=1, max_size=60),
           st.integers(-50, 50))
    def test_query_where_equals_python_filter(self, rows, threshold):
        table = Table.from_rows(SCHEMA, rows)
        got = Query(table).where("k", ">=", threshold).count()
        expected = sum(1 for row in rows if row["k"] >= threshold)
        assert got == expected


class TestStorageProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(row_strategy, max_size=40))
    def test_npz_round_trip(self, rows):
        import tempfile
        from pathlib import Path

        table = Table.from_rows(SCHEMA, rows)
        with tempfile.TemporaryDirectory() as tmp:
            loaded = load_table(save_table(table, Path(tmp) / "t.npz"))
        assert list(loaded.rows()) == rows

    @settings(max_examples=25, deadline=None)
    @given(st.lists(row_strategy, max_size=40))
    def test_jsonl_round_trip(self, rows):
        import tempfile
        from pathlib import Path

        table = Table.from_rows(SCHEMA, rows)
        with tempfile.TemporaryDirectory() as tmp:
            loaded = load_table(save_table(table, Path(tmp) / "t.jsonl"))
        assert list(loaded.rows()) == rows


class TestJoinProperties:
    @given(st.lists(row_strategy, max_size=30), st.lists(row_strategy, max_size=30))
    def test_join_cardinality_matches_nested_loop(self, left_rows, right_rows):
        left = Table.from_rows(SCHEMA, left_rows, name="l")
        right_schema = Schema(
            [Column("k", ColumnType.INT64), Column("w", ColumnType.FLOAT64)]
        )
        right = Table.from_rows(
            right_schema,
            [{"k": r["k"], "w": r["v"]} for r in right_rows],
            name="r",
        )
        joined = hash_join(left, right, on="k")
        expected = sum(
            1
            for lrow in left_rows
            for rrow in right_rows
            if lrow["k"] == rrow["k"]
        )
        assert len(joined) == expected
