"""Event model and the segmented event log."""

import pytest

from repro.lifelog.events import (
    ActionCategory,
    EVENT_SCHEMA,
    Event,
    USEFUL_IMPACT_CATEGORIES,
)
from repro.lifelog.store import EventLog


def make_event(ts=1.0, uid=1, action="course_view",
               category=ActionCategory.NAVIGATION, **payload):
    return Event(ts, uid, action, category, payload=payload)


class TestEvent:
    def test_row_round_trip(self):
        event = make_event(target="12", q="python")
        clone = Event.from_row(event.to_row())
        assert clone == event

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            make_event(ts=-1.0)

    def test_empty_action_rejected(self):
        with pytest.raises(ValueError):
            Event(1.0, 1, "", ActionCategory.NAVIGATION)

    def test_unknown_category_parse(self):
        with pytest.raises(ValueError):
            ActionCategory.from_value("teleport")

    def test_useful_impact_categories_are_commercial(self):
        assert ActionCategory.ENROLLMENT in USEFUL_IMPACT_CATEGORIES
        assert ActionCategory.NAVIGATION not in USEFUL_IMPACT_CATEGORIES

    def test_schema_matches_row_keys(self):
        assert set(EVENT_SCHEMA.names) == set(make_event().to_row())


class TestEventLog:
    def test_append_and_count(self):
        log = EventLog()
        log.append(make_event())
        assert len(log) == 1

    def test_segments_seal_at_threshold(self):
        log = EventLog(segment_rows=10)
        log.extend(make_event(ts=float(i), uid=i % 3) for i in range(25))
        assert len(log) == 25
        assert log.segment_count == 3  # two sealed + active

    def test_events_preserve_append_order(self):
        log = EventLog(segment_rows=5)
        log.extend(make_event(ts=float(i), uid=i) for i in range(12))
        timestamps = [e.timestamp for e in log.events()]
        assert timestamps == [float(i) for i in range(12)]

    def test_events_for_user_time_ordered(self):
        log = EventLog(segment_rows=4)
        log.extend(make_event(ts=float(10 - i), uid=i % 2) for i in range(10))
        events = log.events_for_user(0)
        assert all(e.user_id == 0 for e in events)
        assert [e.timestamp for e in events] == sorted(
            e.timestamp for e in events
        )

    def test_events_in_window_half_open(self):
        log = EventLog()
        log.extend(make_event(ts=float(i), uid=1) for i in range(10))
        window = log.events_in_window(2.0, 5.0)
        assert [e.timestamp for e in window] == [2.0, 3.0, 4.0]

    def test_window_validation(self):
        with pytest.raises(ValueError):
            EventLog().events_in_window(5.0, 2.0)

    def test_user_ids_distinct_sorted(self):
        log = EventLog()
        log.extend(make_event(ts=float(i), uid=uid) for i, uid in enumerate([3, 1, 3, 2]))
        assert log.user_ids() == [1, 2, 3]

    def test_count_by_category(self):
        log = EventLog()
        log.append(make_event(action="course_info", category=ActionCategory.INFO_REQUEST))
        log.append(make_event(ts=2.0))
        counts = log.count_by_category()
        assert counts["info_request"] == 1
        assert counts["navigation"] == 1

    def test_compact_merges_and_sorts(self):
        log = EventLog(segment_rows=3)
        log.extend(make_event(ts=float(10 - i), uid=1) for i in range(9))
        count = log.compact()
        assert count == 9
        assert log.segment_count == 1
        timestamps = [e.timestamp for e in log.events()]
        assert timestamps == sorted(timestamps)

    def test_save_load_round_trip(self, tmp_path):
        log = EventLog(segment_rows=4)
        log.extend(make_event(ts=float(i), uid=i % 2, target=str(i)) for i in range(9))
        log.save(tmp_path / "log")
        loaded = EventLog.load(tmp_path / "log")
        assert len(loaded) == 9
        assert [e.timestamp for e in loaded.events_for_user(0)] == [
            e.timestamp for e in log.events_for_user(0)
        ]

    def test_segment_rows_validation(self):
        with pytest.raises(ValueError):
            EventLog(segment_rows=0)
