"""Batched EventLog.extend: same semantics as appending one at a time."""


from repro.lifelog.events import ActionCategory, Event
from repro.lifelog.store import EventLog


def make_events(n, user_id=1):
    return [
        Event(timestamp=float(i), user_id=user_id + (i % 3),
              action=f"action-{i % 5}", category=ActionCategory.NAVIGATION,
              payload={"target": str(i)})
        for i in range(n)
    ]


def test_extend_equals_repeated_append():
    events = make_events(2_507)
    batched = EventLog(segment_rows=500)
    one_by_one = EventLog(segment_rows=500)
    assert batched.extend(events) == len(events)
    for event in events:
        one_by_one.append(event)
    assert len(batched) == len(one_by_one) == len(events)
    assert batched.segment_count == one_by_one.segment_count
    assert [e.to_row() for e in batched.events()] == [
        e.to_row() for e in one_by_one.events()
    ]


def test_extend_seals_segments_at_exact_boundaries():
    log = EventLog(segment_rows=100)
    log.extend(make_events(250))
    # 2 sealed segments of 100 + active of 50
    assert log.segment_count == 3
    assert len(log) == 250
    log.extend(make_events(50))
    assert len(log) == 300
    assert log.segment_count == 3  # the third just sealed, active empty


def test_extend_batch_larger_than_segment():
    log = EventLog(segment_rows=10)
    log.extend(make_events(35))
    assert len(log) == 35
    assert log.segment_count == 4


def test_extend_accepts_iterator_and_empty():
    log = EventLog(segment_rows=50)
    assert log.extend(iter(make_events(7))) == 7
    assert log.extend([]) == 0
    assert len(log) == 7


def test_append_is_one_element_extend():
    log = EventLog(segment_rows=3)
    for event in make_events(7):
        log.append(event)
    assert len(log) == 7
    assert log.segment_count == 3  # two sealed + active(1)


def test_indexes_still_serve_user_queries_after_batched_ingest():
    log = EventLog(segment_rows=20)
    events = make_events(90)
    log.extend(events)
    for uid in {e.user_id for e in events}:
        expected = sorted(
            (e for e in events if e.user_id == uid),
            key=lambda e: (e.timestamp, e.action),
        )
        got = log.events_for_user(uid)
        assert [e.to_row() for e in got] == [e.to_row() for e in expected]
