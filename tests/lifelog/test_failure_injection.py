"""Failure injection: corrupt storage, fuzzy weblogs, degenerate inputs."""

import json

import numpy as np
import pytest

from repro.db.catalog import Catalog
from repro.db.schema import Column, ColumnType, Schema
from repro.db.storage import StorageError, load_table, save_table
from repro.db.table import Table
from repro.datagen import BehaviorModel, CourseCatalog, Population
from repro.datagen.weblog_gen import generate_population_weblog, write_weblog
from repro.lifelog.events import ActionCategory, Event
from repro.lifelog.weblog import WeblogParseError, parse_line, records_to_events


def small_table():
    schema = Schema([Column("x", ColumnType.INT64), Column("s", ColumnType.STRING)])
    return Table.from_rows(
        schema, [{"x": 1, "s": "a"}, {"x": 2, "s": "b"}], name="t"
    )


class TestCorruptStorage:
    def test_truncated_npz_rejected(self, tmp_path):
        path = save_table(small_table(), tmp_path / "t.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            load_table(path)

    def test_npz_missing_column_rejected(self, tmp_path):
        path = tmp_path / "t.npz"
        np.savez_compressed(
            path,
            __schema__=np.asarray(
                [json.dumps(small_table().schema.to_dict())], dtype=np.str_
            ),
            # only one of the two columns present
            **{"col::x": np.asarray([1, 2])},
        )
        with pytest.raises(StorageError, match="missing column"):
            load_table(path)

    def test_npz_without_schema_rejected(self, tmp_path):
        path = tmp_path / "t.npz"
        np.savez_compressed(path, some=np.asarray([1]))
        with pytest.raises(StorageError, match="schema"):
            load_table(path)

    def test_jsonl_with_garbage_row_rejected(self, tmp_path):
        path = save_table(small_table(), tmp_path / "t.jsonl")
        with path.open("a") as fh:
            fh.write('{"x": "not-an-int", "s": "c"}\n')
        with pytest.raises(Exception):
            load_table(path)

    def test_catalog_with_missing_table_file(self, tmp_path):
        catalog = Catalog()
        catalog.register(small_table())
        directory = catalog.save(tmp_path / "cat")
        (directory / "t.npz").unlink()
        with pytest.raises(Exception):
            Catalog.load(directory)


class TestWeblogFuzz:
    @pytest.mark.parametrize("line", [
        "",
        "   ",
        "GET /course/1/view",
        '10.0.0.1 - u1 [bad-time] "GET / HTTP/1.1" 200 1',
        '10.0.0.1 - u1 [15/Mar/2006:10:30:00 +0000] "GET" 200 1',
        "\x00\x01\x02",
        '10.0.0.1 - u1 "GET / HTTP/1.1" 200 1',
    ])
    def test_garbage_lines_raise_parse_error(self, line):
        with pytest.raises(WeblogParseError):
            parse_line(line)

    def test_mixed_stream_survives(self):
        good = (
            '10.0.0.1 - u7 [15/Mar/2006:10:30:00 +0000] '
            '"GET /course/3/info HTTP/1.1" 200 64 "-" "UA"'
        )
        records = []
        for line in [good, good.replace("u7", "-"), good]:
            try:
                records.append(parse_line(line))
            except WeblogParseError:
                pass
        events = records_to_events(records)
        assert len(events) == 2  # the anonymous one dropped


class TestWeblogGen:
    def test_write_weblog_skips_unrepresentable(self, tmp_path):
        events = [
            Event(1.0, 1, "course_view", ActionCategory.NAVIGATION,
                  payload={"target": "5"}),
            Event(2.0, 1, "mystery_action", ActionCategory.NAVIGATION),
        ]
        count = write_weblog(events, tmp_path / "w.log")
        assert count == 1

    def test_population_weblog_round_trips(self, tmp_path):
        population = Population.generate(30, seed=7)
        catalog = CourseCatalog.generate(10, seed=7)
        model = BehaviorModel(population, catalog, seed=7)
        path = tmp_path / "access.log"
        lines = generate_population_weblog(model, population, path)
        parsed = [parse_line(l) for l in path.read_text().splitlines()]
        events = records_to_events(parsed)
        assert len(events) == lines
        timestamps = [r.timestamp for r in parsed]
        assert timestamps == sorted(timestamps)
