"""Weblog parsing, sessionization, feature extraction."""

import pytest

from repro.lifelog.events import ActionCategory, Event
from repro.lifelog.preprocess import LifeLogPreprocessor, UserFeatures
from repro.lifelog.sessionizer import Session, session_stats, sessionize
from repro.lifelog.weblog import (
    WeblogParseError,
    event_to_line,
    parse_line,
    record_to_event,
    records_to_events,
)

GOOD_LINE = (
    '10.0.0.1 - u42 [15/Mar/2006:10:30:00 +0000] '
    '"GET /course/7/view HTTP/1.1" 200 512 "-" "Mozilla/5.0"'
)


class TestWeblogParsing:
    def test_parse_good_line(self):
        record = parse_line(GOOD_LINE)
        assert record.user_id == 42
        assert record.path == "/course/7/view"
        assert record.status == 200

    def test_parse_rejects_garbage(self):
        with pytest.raises(WeblogParseError):
            parse_line("not a log line at all")

    def test_parse_rejects_bad_timestamp(self):
        bad = GOOD_LINE.replace("15/Mar/2006", "99/Zzz/2006")
        with pytest.raises(WeblogParseError):
            parse_line(bad)

    def test_anonymous_user_yields_no_event(self):
        line = GOOD_LINE.replace("u42", "-")
        assert record_to_event(parse_line(line)) is None

    def test_error_status_yields_no_event(self):
        line = GOOD_LINE.replace(" 200 ", " 404 ")
        assert record_to_event(parse_line(line)) is None

    def test_unknown_path_yields_no_event(self):
        line = GOOD_LINE.replace("/course/7/view", "/robots.txt")
        assert record_to_event(parse_line(line)) is None

    def test_course_view_maps_to_navigation(self):
        event = record_to_event(parse_line(GOOD_LINE))
        assert event.action == "course_view"
        assert event.category is ActionCategory.NAVIGATION
        assert event.payload["target"] == "7"

    def test_rating_query_captured(self):
        line = GOOD_LINE.replace("/course/7/view", "/course/7/rate?value=4")
        event = record_to_event(parse_line(line))
        assert event.action == "course_rate"
        assert event.payload["value"] == "4"

    @pytest.mark.parametrize("action", [
        "course_view", "course_info", "course_enroll", "course_rate",
        "course_opinion", "catalog_search", "push_open", "newsletter_open",
        "eit_answer", "account_op",
    ])
    def test_event_line_round_trip(self, action):
        categories = {
            "course_view": ActionCategory.NAVIGATION,
            "course_info": ActionCategory.INFO_REQUEST,
            "course_enroll": ActionCategory.ENROLLMENT,
            "course_rate": ActionCategory.RATING,
            "course_opinion": ActionCategory.OPINION,
            "catalog_search": ActionCategory.NAVIGATION,
            "push_open": ActionCategory.CAMPAIGN,
            "newsletter_open": ActionCategory.CAMPAIGN,
            "eit_answer": ActionCategory.EIT_ANSWER,
            "account_op": ActionCategory.ACCOUNT,
        }
        payload = {"target": "5"}
        if action == "course_rate":
            payload["value"] = "3"
        if action == "eit_answer":
            payload["opt"] = "1"
        if action == "catalog_search":
            payload = {"q": "python"}
        event = Event(1_142_000_000.0, 9, action, categories[action], payload=payload)
        clone = record_to_event(parse_line(event_to_line(event)))
        assert clone.action == event.action
        assert clone.user_id == event.user_id
        assert clone.timestamp == event.timestamp

    def test_unrepresentable_action_raises(self):
        event = Event(1.0, 1, "mystery", ActionCategory.NAVIGATION)
        with pytest.raises(ValueError):
            event_to_line(event)

    def test_records_to_events_drops_non_events(self):
        lines = [GOOD_LINE, GOOD_LINE.replace("u42", "-")]
        events = records_to_events([parse_line(line) for line in lines])
        assert len(events) == 1


def ev(ts, uid=1):
    return Event(ts, uid, "course_view", ActionCategory.NAVIGATION)


class TestSessionizer:
    def test_splits_on_gap(self):
        events = [ev(0), ev(100), ev(100 + 40 * 60)]
        sessions = sessionize(events, timeout=30 * 60)
        assert [len(s) for s in sessions] == [2, 1]

    def test_unsorted_input_handled(self):
        events = [ev(100), ev(0), ev(50)]
        sessions = sessionize(events)
        assert len(sessions) == 1
        assert sessions[0].start == 0

    def test_users_kept_separate(self):
        events = [ev(0, 1), ev(1, 2), ev(2, 1)]
        sessions = sessionize(events)
        assert len(sessions) == 2
        assert {s.user_id for s in sessions} == {1, 2}

    def test_every_event_in_exactly_one_session(self):
        events = [ev(t, uid) for t in range(0, 10000, 700) for uid in (1, 2)]
        sessions = sessionize(events, timeout=1000)
        total = sum(len(s) for s in sessions)
        assert total == len(events)

    def test_session_duration(self):
        session = Session(1, [ev(10), ev(40)])
        assert session.duration == 30

    def test_session_rejects_foreign_events(self):
        with pytest.raises(ValueError):
            Session(1, [ev(0, uid=2)])

    def test_session_rejects_empty(self):
        with pytest.raises(ValueError):
            Session(1, [])

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            sessionize([ev(0)], timeout=0)

    def test_stats(self):
        sessions = sessionize([ev(0), ev(10), ev(10_000)], timeout=100)
        stats = session_stats(sessions)
        assert stats["n_sessions"] == 2
        assert stats["n_users"] == 1

    def test_stats_empty(self):
        assert session_stats([])["n_sessions"] == 0


class TestPreprocessor:
    def test_clean_removes_duplicates(self):
        pre = LifeLogPreprocessor()
        events = [ev(1.0), ev(1.0), ev(2.0)]
        cleaned, drops = pre.clean(events)
        assert len(cleaned) == 2
        assert drops["duplicate"] == 1

    def test_extract_user_counts_categories(self):
        pre = LifeLogPreprocessor()
        events = [
            ev(0),
            Event(1, 1, "course_info", ActionCategory.INFO_REQUEST),
            Event(2, 1, "course_enroll", ActionCategory.ENROLLMENT),
        ]
        features = pre.extract_user(1, events)
        assert features.category_counts["navigation"] == 1
        assert features.useful_impacts == 2

    def test_extract_user_no_events(self):
        features = LifeLogPreprocessor().extract_user(5, [])
        assert features.n_sessions == 0
        assert features.as_vector().shape == (
            len(UserFeatures.feature_names()),
        )

    def test_recency_relative_to_now(self):
        pre = LifeLogPreprocessor()
        features = pre.extract_user(1, [ev(100.0)], now=3700.0)
        assert features.recency == 3600.0

    def test_extract_all_covers_all_users(self):
        pre = LifeLogPreprocessor()
        events = [ev(0, 1), ev(1, 2), ev(2, 3)]
        features = pre.extract_all(events)
        assert sorted(features) == [1, 2, 3]

    def test_feature_matrix_alignment(self):
        pre = LifeLogPreprocessor()
        features = pre.extract_all([ev(0, 2), ev(1, 1)])
        matrix, ids = pre.feature_matrix(features)
        assert matrix.shape == (2, len(UserFeatures.feature_names()))
        assert ids == [1, 2]

    def test_vector_monotone_in_counts(self):
        light = UserFeatures(1, {"navigation": 1})
        heavy = UserFeatures(1, {"navigation": 100})
        column = UserFeatures.feature_names().index("log1p_count[navigation]")
        assert heavy.as_vector()[column] > light.as_vector()[column]
