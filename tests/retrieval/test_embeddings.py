"""Embedding providers: layout, score-proxy faithfulness, fingerprints."""

import numpy as np
import pytest

from repro.cf.mf import FunkSVD
from repro.cf.ratings import RatingMatrix
from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.emotions import EMOTION_NAMES
from repro.ml.preprocessing import NotFittedError
from repro.retrieval.embeddings import EmbeddingProvider, StaticEmbeddingProvider

RANK = 4
PROFILE = DomainProfile(
    "test",
    {
        EMOTION_NAMES[0]: {"attr-a": 0.8, "attr-b": 0.2},
        EMOTION_NAMES[1]: {"attr-b": -0.5},
    },
)
ITEM_ATTRS = {1: {"attr-a": 1.0}, 2: {"attr-b": 0.5}, 3: {}}


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(0)
    triplets = [
        (u, i, float(rng.uniform(1, 5)))
        for u in range(6)
        for i in (1, 2, 3, 4, 5)
    ]
    return FunkSVD(rank=RANK, epochs=3, seed=0).fit(RatingMatrix(triplets))


class FakeModel:
    """One emotional state shaped like a SmartUserModel for context tests."""

    def __init__(self, intensities):
        self.emotional = {name: 0.0 for name in EMOTION_NAMES}
        self.emotional.update(intensities)
        self.sensibility = {}


class TestFunkSVDAccessors:
    def test_unfitted_model_raises_typed_error(self):
        raw = FunkSVD(rank=2)
        with pytest.raises(NotFittedError):
            raw.item_embeddings()
        with pytest.raises(NotFittedError):
            raw.user_embeddings()
        with pytest.raises(NotFittedError):
            raw.predict(1, 1)
        # backward compatible: NotFittedError is a RuntimeError
        with pytest.raises(RuntimeError, match="before fit"):
            raw.predict(1, 1)

    def test_embeddings_are_read_only_views(self, model):
        ids, factors, biases = model.item_embeddings()
        assert ids == [1, 2, 3, 4, 5]
        assert factors.shape == (5, RANK)
        assert not factors.flags.writeable and not biases.flags.writeable
        with pytest.raises(ValueError):
            factors[0, 0] = 1.0


class TestEmbeddingProvider:
    def test_vector_layout_and_dims(self, model):
        provider = EmbeddingProvider(
            model, domain_profile=PROFILE, item_attributes=ITEM_ATTRS
        )
        ids, vectors = provider.item_vectors()
        n_emotions = len(PROFILE.layout()[0])
        assert vectors.shape == (5, RANK + 1 + n_emotions)
        queries = provider.query_vectors([0, 1])
        assert queries.shape == (2, RANK + 1 + n_emotions)
        # the bias pickup coordinate is the constant 1
        np.testing.assert_array_equal(queries[:, RANK], [1.0, 1.0])

    def test_no_profile_means_no_context_block(self, model):
        provider = EmbeddingProvider(model)
        __, vectors = provider.item_vectors()
        assert vectors.shape == (5, RANK + 1)

    def test_inner_product_reproduces_rank_relevant_score(self, model):
        """query·item == (b_i + p_u·q_i) + w·(first-order advice term)."""
        provider = EmbeddingProvider(
            model, domain_profile=PROFILE, item_attributes=ITEM_ATTRS
        )
        item_ids, item_vecs = provider.item_vectors()
        emotions, __, gains = PROFILE.layout()
        context = [FakeModel({emotions[0]: 0.7, emotions[1]: 0.3})]
        query = provider.query_vectors([2], context=context)[0]
        u_ids, u_factors, __b = model.user_embeddings()
        i_ids, i_factors, i_biases = model.item_embeddings()
        row = u_ids.index(2)
        evidence = np.array([0.7, 0.3])
        engine = AdviceEngine()
        presence = engine.presence_matrix(item_ids, ITEM_ATTRS, PROFILE)
        for col, item in enumerate(item_ids):
            expected = (
                float(u_factors[row] @ i_factors[col])
                + float(i_biases[col])
                + provider.context_weight
                * float(evidence @ (gains @ presence[col]))
            )
            assert query @ item_vecs[col] == pytest.approx(expected)

    def test_unknown_user_gets_zero_factors_but_bias_pickup(self, model):
        provider = EmbeddingProvider(model, domain_profile=PROFILE)
        query = provider.query_vectors([999])[0]
        np.testing.assert_array_equal(query[:RANK], np.zeros(RANK))
        assert query[RANK] == 1.0

    def test_context_from_batch_and_sequence_agree(self, model):
        from repro.core.sum_store import ColumnarSumStore
        from repro.streaming.cache import SumCache

        store = ColumnarSumStore()
        sum_model = store.get_or_create(7)
        provider = EmbeddingProvider(model, domain_profile=PROFILE)
        batch = SumCache(store).batch([7])
        via_batch = provider.query_vectors([7], context=batch)
        via_models = provider.query_vectors([7], context=[store.get(7)])
        np.testing.assert_allclose(via_batch, via_models)
        assert sum_model is not None

    def test_fingerprint_changes_on_refit(self, model):
        provider = EmbeddingProvider(model)
        before = provider.fingerprint()
        assert provider.fingerprint() == before  # stable between fits
        model.fit(model.ratings)
        assert provider.fingerprint() != before

    def test_rejects_models_without_accessors(self):
        with pytest.raises(TypeError, match="embeddings"):
            EmbeddingProvider(object())


class TestStaticEmbeddingProvider:
    def test_round_trip_and_fingerprint_bump(self):
        items = np.eye(3)
        users = np.arange(6, dtype=np.float64).reshape(2, 3)
        provider = StaticEmbeddingProvider(["a", "b", "c"], items, [10, 20], users)
        ids, vectors = provider.item_vectors()
        assert ids == ["a", "b", "c"]
        np.testing.assert_array_equal(vectors, items)
        np.testing.assert_array_equal(
            provider.query_vectors([20, 99]),
            np.vstack([users[1], np.zeros(3)]),
        )
        before = provider.fingerprint()
        provider.bump()
        assert provider.fingerprint() != before

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="item"):
            StaticEmbeddingProvider(["a"], np.eye(2), [1], np.eye(2)[:1])
        with pytest.raises(ValueError, match="dim"):
            StaticEmbeddingProvider(
                ["a"], np.ones((1, 2)), [1], np.ones((1, 3))
            )
