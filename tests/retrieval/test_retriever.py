"""The candidate retriever: fallbacks, budgets, and the swap protocol."""

import threading
from time import monotonic

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, labelled
from repro.retrieval.embeddings import StaticEmbeddingProvider
from repro.retrieval.index import ClusteredANNIndex
from repro.retrieval.refresh import IndexRefresher
from repro.retrieval.retriever import CandidateRetriever, RetrievalConfig
from repro.serving.budget import Budget, DeadlineExceeded

DIM = 8


def make_provider(n_items=400, n_users=20, seed=0):
    rng = np.random.default_rng(seed)
    items = [f"item-{i}" for i in range(n_items)]
    return StaticEmbeddingProvider(
        items,
        rng.normal(0.0, 1.0, (n_items, DIM)),
        list(range(n_users)),
        rng.normal(0.0, 1.0, (n_users, DIM)),
    )


def make_retriever(provider=None, registry=None, **config):
    provider = provider or make_provider()
    defaults = dict(k_candidates=32, n_probe=4, min_catalog=10)
    defaults.update(config)
    return CandidateRetriever(
        provider,
        config=RetrievalConfig(**defaults),
        telemetry=registry,
    )


def build_index(provider, seed=0):
    ids, vectors = provider.item_vectors()
    return ClusteredANNIndex.build(ids, vectors, seed=seed)


class TestFallbacks:
    def test_no_index_falls_back(self):
        registry = MetricsRegistry()
        retriever = make_retriever(registry=registry)
        assert retriever.retrieve([1], None, 5) is None
        snap = registry.snapshot()
        assert snap.value(
            labelled("serving.retrieval.fallbacks", reason="no_index")
        ) == 1
        assert snap.value(
            labelled("serving.retrieval.requests", path="fallback")
        ) == 1

    def test_small_catalog_falls_back(self):
        provider = make_provider(n_items=20)
        registry = MetricsRegistry()
        retriever = make_retriever(provider, registry, min_catalog=100)
        retriever.swap(build_index(provider))
        assert retriever.retrieve([1], None, 5) is None
        assert registry.snapshot().value(
            labelled("serving.retrieval.fallbacks", reason="small_catalog")
        ) == 1

    def test_oversampling_reaching_catalog_falls_back_exact(self):
        provider = make_provider(n_items=50)
        registry = MetricsRegistry()
        retriever = make_retriever(
            provider, registry, k_candidates=64, min_catalog=10
        )
        retriever.swap(build_index(provider))
        # k_candidates (64) >= catalog (50): exact scan is the same set
        assert retriever.retrieve([1], None, 5) is None
        assert registry.snapshot().value(
            labelled("serving.retrieval.fallbacks", reason="exact_k")
        ) == 1

    def test_unindexed_item_in_request_falls_back(self):
        provider = make_provider()
        registry = MetricsRegistry()
        retriever = make_retriever(provider, registry)
        retriever.swap(build_index(provider))
        assert retriever.retrieve([1], ["item-1", "ghost"], 5) is None
        assert registry.snapshot().value(
            labelled("serving.retrieval.fallbacks", reason="uncovered")
        ) == 1

    def test_explicit_full_catalog_is_the_hot_path(self):
        provider = make_provider()
        retriever = make_retriever(provider)
        index = build_index(provider)
        retriever.swap(index)
        # spelling out the whole served catalog == asking for it by name
        via_list = retriever.retrieve([1], list(index.item_ids), 5)
        via_none = retriever.retrieve([1], None, 5)
        assert via_list == via_none


class TestRetrieve:
    def test_retrieves_oversampled_candidates(self):
        provider = make_provider()
        registry = MetricsRegistry()
        retriever = make_retriever(provider, registry, k_candidates=32)
        retriever.swap(build_index(provider))
        candidates = retriever.retrieve([3], None, 5)
        assert len(candidates) == 32
        assert len(set(candidates)) == 32
        snap = registry.snapshot()
        assert snap.value(
            labelled("serving.retrieval.requests", path="retrieved")
        ) == 1
        assert snap.histogram("serving.retrieval.seconds").count == 1

    def test_restricted_request_is_exact_over_the_subset(self):
        provider = make_provider()
        retriever = make_retriever(provider, k_candidates=8)
        index = build_index(provider)
        retriever.swap(index)
        subset = [f"item-{i}" for i in range(0, 400, 5)]
        got = retriever.retrieve([2], subset, 3)
        query = provider.query_vectors([2])[0]
        rows = index.mask_rows(subset)
        expected = index.search(query, 8, allowed_rows=rows)
        assert got == expected

    def test_expired_budget_aborts_with_retrieve_stage(self):
        provider = make_provider()
        retriever = make_retriever(provider)
        retriever.swap(build_index(provider))
        with pytest.raises(DeadlineExceeded) as excinfo:
            retriever.retrieve(
                [1], None, 5, budget=Budget(monotonic() - 1.0)
            )
        assert excinfo.value.stage == "retrieve"

    def test_tight_budget_shrinks_probes_then_candidates(self):
        provider = make_provider()
        registry = MetricsRegistry()
        retriever = make_retriever(provider, registry, k_candidates=32)
        retriever.swap(build_index(provider))
        retriever.retrieve([1], None, 5)  # seed the search-time EWMA
        assert retriever._search_ewma > 0.0
        # pretend searches take ~1s: any real budget is "tight"
        retriever._search_ewma = 1.0
        candidates = retriever.retrieve(
            [1], None, 5, budget=Budget.from_timeout(0.5)
        )
        assert len(candidates) == 5  # k_candidates cut down to k
        snap = registry.snapshot()
        assert snap.value(
            labelled("serving.retrieval.shrunk", knob="n_probe")
        ) == 1
        assert snap.value(
            labelled("serving.retrieval.shrunk", knob="k_candidates")
        ) == 1


class TestSwapProtocol:
    def test_generations_are_monotonic(self):
        provider = make_provider(n_items=50)
        retriever = make_retriever(provider)
        index = build_index(provider)
        assert retriever.generation == 0
        assert retriever.swap(index) == 1
        assert retriever.swap(index, generation=7) == 7
        with pytest.raises(ValueError, match="backwards"):
            retriever.swap(index, generation=7)
        with pytest.raises(ValueError, match="backwards"):
            retriever.swap(index, generation=3)
        assert retriever.generation == 7

    def test_generation_gauge_tracks_swaps(self):
        provider = make_provider(n_items=50)
        registry = MetricsRegistry()
        retriever = make_retriever(provider, registry)
        retriever.swap(build_index(provider))
        assert registry.snapshot().value(
            "serving.retrieval.generation"
        ) == 1.0

    def test_catalog_items_page_order(self):
        provider = make_provider(n_items=30)
        retriever = make_retriever(provider)
        assert retriever.catalog_items() == ()
        index = build_index(provider)
        retriever.swap(index)
        assert retriever.catalog_items() == index.item_ids

    def test_concurrent_swaps_never_tear_the_pair(self):
        """The seqlock contract, witnessed: readers racing a swap storm
        always observe (index, generation) pairs that were published
        together, and generations never go backwards per reader —
        mirroring tests/streaming/test_snapshot_isolation.py for the
        index plane."""
        provider = make_provider(n_items=60)
        retriever = make_retriever(provider)
        ids, vectors = provider.item_vectors()
        # one distinct index object per generation: a torn pair is then
        # directly visible as "index of gen X served with stamp Y"
        n_swaps = 200
        by_gen = {
            g: ClusteredANNIndex.build(ids, vectors, n_clusters=4)
            for g in range(1, n_swaps + 1)
        }
        published = {id(index): g for g, index in by_gen.items()}
        errors = []
        done = threading.Event()

        def reader():
            last = 0
            while not done.is_set():
                index, generation = retriever.current()
                if index is None:
                    if generation != 0:
                        errors.append("index None at gen %d" % generation)
                    continue
                if published.get(id(index)) != generation:
                    errors.append(
                        f"torn pair: index of gen {published.get(id(index))} "
                        f"served with stamp {generation}"
                    )
                if generation < last:
                    errors.append(
                        f"generation went backwards: {last} -> {generation}"
                    )
                last = generation

        threads = [threading.Thread(target=reader) for __ in range(4)]
        for thread in threads:
            thread.start()
        for g in range(1, n_swaps + 1):
            retriever.swap(by_gen[g], generation=g)
        done.set()
        for thread in threads:
            thread.join()
        assert errors == []
        assert retriever.generation == n_swaps


class TestIndexRefresher:
    def test_first_poll_builds_then_stays_quiet(self):
        provider = make_provider(n_items=60)
        retriever = make_retriever(provider)
        refresher = IndexRefresher(provider, retriever, seed=0)
        assert refresher.poll() == 1
        assert len(retriever.catalog_items()) == 60
        assert refresher.poll() is None  # nothing moved
        assert refresher.poll(force=True) == 2

    def test_fingerprint_change_triggers_rebuild(self):
        provider = make_provider(n_items=60)
        retriever = make_retriever(provider)
        refresher = IndexRefresher(provider, retriever, seed=0)
        refresher.poll()
        provider.bump()
        assert refresher.poll() == 2

    def test_cache_version_advance_triggers_rebuild(self):
        class FakeCache:
            global_version = 0

        cache = FakeCache()
        provider = make_provider(n_items=60)
        retriever = make_retriever(provider)
        refresher = IndexRefresher(
            provider, retriever, cache=cache, min_new_versions=2, seed=0
        )
        refresher.poll()
        cache.global_version = 1  # below the damping threshold
        assert refresher.poll() is None
        cache.global_version = 2
        assert refresher.poll() == 2

    def test_build_instruments(self):
        registry = MetricsRegistry()
        provider = make_provider(n_items=60)
        retriever = make_retriever(provider)
        refresher = IndexRefresher(
            provider, retriever, seed=0, telemetry=registry
        )
        refresher.poll()
        snap = registry.snapshot()
        assert snap.value("serving.retrieval.index_rebuilds") == 1
        assert snap.value("serving.retrieval.index_items") == 60.0
        assert snap.histogram(
            "serving.retrieval.index_build_seconds"
        ).count == 1

    def test_cadence_context_manager(self):
        provider = make_provider(n_items=60)
        retriever = make_retriever(provider)
        refresher = IndexRefresher(
            provider, retriever, interval=0.01, seed=0
        )
        deadline = monotonic() + 5.0
        with refresher:
            while not retriever.catalog_items() and monotonic() < deadline:
                pass
        assert len(retriever.catalog_items()) == 60

    def test_validations(self):
        provider = make_provider(n_items=20)
        retriever = make_retriever(provider)
        with pytest.raises(TypeError, match="item_vectors"):
            IndexRefresher(object(), retriever)
        with pytest.raises(ValueError, match="min_new_versions"):
            IndexRefresher(provider, retriever, min_new_versions=0)
        with pytest.raises(ValueError, match="interval"):
            IndexRefresher(provider, retriever).start()
