"""The clustered ANN index: layout invariants, exactness, recall gates."""

import numpy as np
import pytest

from repro.retrieval.index import ClusteredANNIndex, kmeans


def clustered_catalog(n_items, dim, n_true=12, noise=0.05, seed=0):
    """A synthetic catalog with genuine cluster structure."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 1.0, (n_true, dim))
    labels = rng.integers(0, n_true, n_items)
    vectors = centers[labels] + rng.normal(0.0, noise, (n_items, dim))
    return [f"item-{i}" for i in range(n_items)], vectors


def brute_topk(vectors, ids, query, k):
    scores = vectors @ query
    order = np.argsort(-scores, kind="stable")[:k]
    return [ids[int(i)] for i in order]


class TestKMeans:
    def test_deterministic_for_fixed_seed(self):
        __, vectors = clustered_catalog(400, 8)
        c1, l1 = kmeans(vectors, 10, seed=3)
        c2, l2 = kmeans(vectors, 10, seed=3)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(l1, l2)

    def test_labels_are_nearest_centers(self):
        __, vectors = clustered_catalog(300, 6)
        centers, labels = kmeans(vectors, 8, seed=1)
        dists = (
            np.linalg.norm(vectors[:, None, :] - centers[None], axis=2) ** 2
        )
        np.testing.assert_array_equal(labels, np.argmin(dists, axis=1))

    def test_subsampled_training_still_assigns_every_point(self):
        __, vectors = clustered_catalog(2000, 4)
        centers, labels = kmeans(vectors, 16, seed=0, train_sample=256)
        assert len(labels) == 2000
        assert centers.shape == (16, 4)

    def test_rejects_bad_cluster_counts(self):
        __, vectors = clustered_catalog(10, 4)
        with pytest.raises(ValueError, match="n_clusters"):
            kmeans(vectors, 11)
        with pytest.raises(ValueError, match="n_clusters"):
            kmeans(vectors, 0)


class TestIndexLayout:
    def test_pages_are_contiguous_cluster_major_and_read_only(self):
        ids, vectors = clustered_catalog(500, 8)
        index = ClusteredANNIndex.build(ids, vectors, seed=2)
        assert not index.pages.flags.writeable
        assert not index.centroids.flags.writeable
        assert index.pages.flags.c_contiguous
        # offsets partition the catalog exactly
        assert index.offsets[0] == 0 and index.offsets[-1] == len(ids)
        assert (np.diff(index.offsets) >= 0).all()
        # every input row appears exactly once, in some page slot
        assert sorted(index.item_ids) == sorted(ids)
        originals = {item: vectors[i] for i, item in enumerate(ids)}
        for row, item in enumerate(index.item_ids):
            np.testing.assert_array_equal(index.pages[row], originals[item])

    def test_default_cluster_count_is_sqrt_n(self):
        ids, vectors = clustered_catalog(900, 4)
        index = ClusteredANNIndex.build(ids, vectors)
        assert index.n_clusters == 30

    def test_build_validations(self):
        with pytest.raises(ValueError, match="empty"):
            ClusteredANNIndex.build([], np.zeros((0, 4)))
        with pytest.raises(ValueError, match="does not match"):
            ClusteredANNIndex.build(["a"], np.zeros((2, 4)))

    def test_membership_and_coverage(self):
        ids, vectors = clustered_catalog(100, 4)
        index = ClusteredANNIndex.build(ids, vectors)
        assert "item-0" in index and "missing" not in index
        assert index.coverage(["item-1", "missing", "item-2"]) == 2
        assert index.mask_rows(["item-1", "missing"]) is None
        rows = index.mask_rows(["item-3", "item-7"])
        assert [index.item_ids[int(r)] for r in rows] == ["item-3", "item-7"]


class TestSearch:
    def test_exact_topk_matches_brute_force(self):
        ids, vectors = clustered_catalog(600, 8, seed=4)
        index = ClusteredANNIndex.build(ids, vectors, seed=4)
        rng = np.random.default_rng(9)
        for __ in range(5):
            query = rng.normal(0.0, 1.0, 8)
            assert index.exact_topk(query, 10) == brute_topk(
                index.pages, list(index.item_ids), query, 10
            )

    def test_probing_all_clusters_is_exact(self):
        ids, vectors = clustered_catalog(300, 6, seed=5)
        index = ClusteredANNIndex.build(ids, vectors, seed=5)
        query = np.random.default_rng(1).normal(0.0, 1.0, 6)
        assert index.search(
            query, 15, n_probe=index.n_clusters
        ) == index.exact_topk(query, 15)

    def test_recall_at_k_on_clustered_catalog(self):
        """The ISSUE gate: recall@k >= 0.95 on clustered synthetic data."""
        ids, vectors = clustered_catalog(5000, 16, n_true=25, seed=6)
        index = ClusteredANNIndex.build(ids, vectors, seed=6)
        rng = np.random.default_rng(2)
        hits = total = 0
        for __ in range(20):
            query = rng.normal(0.0, 1.0, 16)
            exact = set(index.exact_topk(query, 10))
            approx = set(index.search(query, 10, n_probe=8))
            hits += len(exact & approx)
            total += 10
        assert hits / total >= 0.95

    def test_allowed_rows_restricts_exactly(self):
        ids, vectors = clustered_catalog(200, 4, seed=7)
        index = ClusteredANNIndex.build(ids, vectors, seed=7)
        subset = [f"item-{i}" for i in range(0, 200, 3)]
        rows = index.mask_rows(subset)
        query = np.random.default_rng(3).normal(0.0, 1.0, 4)
        got = index.search(query, 5, allowed_rows=rows)
        sub_vectors = np.vstack([vectors[int(s.split("-")[1])] for s in subset])
        assert got == brute_topk(sub_vectors, subset, query, 5)
        assert set(got) <= set(subset)

    def test_k_larger_than_catalog_returns_everything_ranked(self):
        ids, vectors = clustered_catalog(30, 4, seed=8)
        index = ClusteredANNIndex.build(ids, vectors, seed=8)
        query = np.ones(4)
        got = index.search(query, 100, n_probe=index.n_clusters)
        assert sorted(got) == sorted(ids)

    def test_dimension_mismatch_raises(self):
        ids, vectors = clustered_catalog(50, 4)
        index = ClusteredANNIndex.build(ids, vectors)
        with pytest.raises(ValueError, match="dim"):
            index.search(np.ones(5), 3)
