"""Retrieval wired into the service: parity with the exact full scan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, labelled
from repro.retrieval.embeddings import StaticEmbeddingProvider
from repro.retrieval.index import ClusteredANNIndex
from repro.retrieval.refresh import IndexRefresher
from repro.retrieval.retriever import CandidateRetriever, RetrievalConfig
from repro.serving.requests import RecommendationRequest
from repro.serving.scorer import ScorerBase
from repro.serving.service import RecommendationService

DIM = 6


class DotScorer(ScorerBase):
    """Scores are exactly the embedding inner products.

    With the scorer and the index agreeing on the score function, the
    retrieve+rerank pipeline is rank-faithful whenever the search is
    exact — which is what the parity tests pin.
    """

    def __init__(self, provider):
        self.provider = provider
        ids, self._items = provider.item_vectors()
        self._cols = {item: c for c, item in enumerate(ids)}

    def score_batch(self, user_ids, items):
        queries = self.provider.query_vectors(user_ids)
        cols = [self._cols[i] for i in items]
        return queries @ self._items[cols].T


def catalog(n_items, n_users=8, seed=0):
    rng = np.random.default_rng(seed)
    return StaticEmbeddingProvider(
        list(range(n_items)),
        rng.normal(0.0, 1.0, (n_items, DIM)),
        list(range(n_users)),
        rng.normal(0.0, 1.0, (n_users, DIM)),
    )


def services(provider, registry=None, exact_probes=True, **config):
    """(service-with-retriever, full-scan service) over one catalog."""
    ids, vectors = provider.item_vectors()
    index = ClusteredANNIndex.build(ids, vectors, seed=0)
    defaults = dict(k_candidates=16, min_catalog=1)
    defaults.setdefault(
        "n_probe", index.n_clusters if exact_probes else 4
    )
    defaults.update(config)
    retriever = CandidateRetriever(
        provider,
        config=RetrievalConfig(**defaults),
        index=index,
        telemetry=registry,
    )
    with_retrieval = RecommendationService(retriever=retriever)
    with_retrieval.register("dot", DotScorer(provider))
    full_scan = RecommendationService()
    full_scan.register("dot", DotScorer(provider))
    return with_retrieval, full_scan


class TestExactFallbackParity:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_items=st.integers(8, 60),
        user_id=st.integers(0, 7),
    )
    def test_k_equals_catalog_is_exact(self, seed, n_items, user_id):
        """The ISSUE pin: retrieve+rerank == full scan when k == catalog.

        Oversampling then reaches the whole catalog, so the retriever
        must step aside (``exact_k``) and both services serve the very
        same ranking — scores, multipliers and tie-breaks included.
        """
        provider = catalog(n_items, seed=seed)
        with_retrieval, full_scan = services(provider)
        items = list(range(n_items))
        request = RecommendationRequest(
            user_id=user_id, items=items, k=n_items
        )
        assert (
            with_retrieval.recommend(request).ranked
            == full_scan.recommend(request).ranked
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        user_id=st.integers(0, 7),
        k=st.integers(1, 10),
    )
    def test_exact_probing_parity_below_catalog(self, seed, user_id, k):
        """With every cluster probed the candidate set provably contains
        the true top-k, so re-ranking returns the full-scan ranking even
        on the retrieved (O(k)) path."""
        n_items = 80
        provider = catalog(n_items, seed=seed)
        with_retrieval, full_scan = services(provider, exact_probes=True)
        got = with_retrieval.recommend(
            RecommendationRequest(user_id=user_id, items=None, k=k)
        )
        want = full_scan.recommend(
            RecommendationRequest(
                user_id=user_id, items=list(range(n_items)), k=k
            )
        )
        assert got.ranked == want.ranked


class TestServiceWiring:
    def test_items_none_without_retriever_raises(self):
        service = RecommendationService()
        service.register("dot", DotScorer(catalog(20)))
        with pytest.raises(RuntimeError, match="retriever"):
            service.recommend(RecommendationRequest(user_id=1, items=None))

    def test_items_none_serves_the_indexed_catalog(self):
        registry = MetricsRegistry()
        provider = catalog(300)
        with_retrieval, __ = services(provider, registry=registry)
        response = with_retrieval.recommend(
            RecommendationRequest(user_id=2, items=None, k=3)
        )
        assert len(response.ranked) == 3
        assert registry.snapshot().value(
            labelled("serving.retrieval.requests", path="retrieved")
        ) == 1

    def test_retrieved_scores_match_full_scan_per_item(self):
        provider = catalog(300)
        with_retrieval, full_scan = services(provider)
        got = with_retrieval.recommend(
            RecommendationRequest(user_id=3, items=None, k=5)
        )
        want = full_scan.recommend(
            RecommendationRequest(user_id=3, items=list(range(300)), k=5)
        )
        # identical rankings, and the surviving candidates carry the
        # *real* scorer scores, not index approximations
        assert got.ranked == want.ranked
        by_item = {e.item: e.base_score for e in want.ranked}
        for entry in got.ranked:
            assert entry.base_score == by_item[entry.item]

    def test_set_retriever_detaches_the_stage(self):
        registry = MetricsRegistry()
        provider = catalog(300)
        with_retrieval, __ = services(provider, registry=registry)
        with_retrieval.set_retriever(None)
        with pytest.raises(RuntimeError, match="retriever"):
            with_retrieval.recommend(
                RecommendationRequest(user_id=1, items=None)
            )
        assert registry.snapshot().value(
            labelled("serving.retrieval.requests", path="retrieved")
        ) == 0

    def test_refresher_keeps_the_service_fresh(self):
        """End-to-end: build via refresher, serve, refit, rebuild, serve."""
        provider = catalog(300)
        retriever = CandidateRetriever(
            provider,
            config=RetrievalConfig(k_candidates=16, n_probe=64, min_catalog=1),
        )
        refresher = IndexRefresher(provider, retriever, seed=0)
        service = RecommendationService(retriever=retriever)
        service.register("dot", DotScorer(provider))
        refresher.poll()
        first = service.recommend(
            RecommendationRequest(user_id=4, items=None, k=5)
        )
        assert len(first.ranked) == 5
        provider.bump()
        assert refresher.poll() == 2
        assert retriever.generation == 2
        second = service.recommend(
            RecommendationRequest(user_id=4, items=None, k=5)
        )
        assert second.ranked == first.ranked  # same vectors, same answer
