"""The shared business-case harness behind benches and examples."""

import numpy as np
import pytest

from repro.campaigns.delivery import EngineConfig
from repro.experiments import run_business_case


@pytest.fixture(scope="module")
def tiny_run():
    return run_business_case(n_users=400, n_courses=30, seed=7, n_warmups=1)


class TestBusinessCaseHarness:
    def test_ten_reported_campaigns(self, tiny_run):
        assert len(tiny_run.results) == 10

    def test_summary_and_baseline_attached(self, tiny_run):
        assert tiny_run.summary.average_performance > 0
        assert tiny_run.baseline_summary.average_performance > 0

    def test_gain_curve_shape(self, tiny_run):
        fractions, captured = tiny_run.gain_curve
        assert captured[0] == 0.0
        assert captured[-1] == pytest.approx(1.0)
        assert np.all(np.diff(captured) >= -1e-12)

    def test_gain_at_40_matches_curve(self, tiny_run):
        fractions, captured = tiny_run.gain_curve
        interpolated = float(np.interp(0.40, fractions, captured))
        assert tiny_run.gain_at_40 == pytest.approx(interpolated, abs=0.02)

    def test_improvement_definition(self, tiny_run):
        expected = (
            tiny_run.summary.average_performance
            / tiny_run.baseline_summary.average_performance
            - 1.0
        )
        assert tiny_run.improvement == pytest.approx(expected)

    def test_aucs_better_than_random(self, tiny_run):
        aucs = tiny_run.per_campaign_auc()
        assert aucs
        assert np.mean(aucs) > 0.55
        assert tiny_run.pooled_auc() > 0.5

    def test_custom_config_respected(self):
        run = run_business_case(
            n_users=200,
            n_courses=20,
            seed=3,
            n_warmups=1,
            config=EngineConfig(seed=3, estimator="logistic"),
        )
        assert run.spa.engine.config.estimator == "logistic"
        assert len(run.results) == 10
