"""Template bank and the Fig. 5 / Section 5.3 case law."""

import pytest

from repro.core.sum_model import SmartUserModel
from repro.datagen.catalog import Course, PRODUCT_ATTRIBUTES
from repro.messaging.assigner import (
    AssignmentCase,
    MessageAssigner,
    TieBreak,
)
from repro.messaging.templates import (
    MessageTemplate,
    STANDARD_MESSAGE,
    default_template_bank,
)


class TestTemplates:
    def test_bank_covers_every_product_attribute(self):
        bank = default_template_bank()
        for attribute in PRODUCT_ATTRIBUTES:
            assert attribute in bank

    def test_render_mentions_course(self):
        bank = default_template_bank()
        text = bank.get("practical").render("Python 101")
        assert "Python 101" in text

    def test_standard_message_renders(self):
        assert "Python 101" in STANDARD_MESSAGE.render("Python 101")

    def test_template_requires_course_placeholder(self):
        with pytest.raises(ValueError):
            MessageTemplate("x", "no placeholder here")

    def test_unknown_attribute_lookup(self):
        with pytest.raises(KeyError):
            default_template_bank().get("luxurious")


def course_with(attrs):
    return Course(1, "Course X", "informatics", attrs)


def user_sensible_to(*emotions, weight=0.9):
    model = SmartUserModel(1)
    for emotion in emotions:
        model.set_sensibility(emotion, weight)
    return model


class TestAssignmentCases:
    def setup_method(self):
        self.assigner = MessageAssigner(default_template_bank(), threshold=0.30)

    def test_case_3a_no_sensibilities(self):
        course = course_with({"practical": 1.0})
        assignment = self.assigner.assign(SmartUserModel(1), course)
        assert assignment.case is AssignmentCase.STANDARD
        assert assignment.attribute is None
        assert "Course X" in assignment.text

    def test_case_3b_single_match(self):
        # motivated -> job-oriented 0.9; course only carries job-oriented
        course = course_with({"job-oriented": 1.0})
        model = user_sensible_to("motivated")
        assignment = self.assigner.assign(model, course)
        assert assignment.case is AssignmentCase.SINGLE
        assert assignment.attribute == "job-oriented"

    def test_case_3cii_max_sensibility(self):
        # enthusiastic -> innovative 0.8; motivated -> job-oriented 0.9
        course = course_with({"innovative": 1.0, "job-oriented": 1.0})
        model = SmartUserModel(1)
        model.set_sensibility("enthusiastic", 0.9)
        model.set_sensibility("motivated", 0.5)
        assignment = self.assigner.assign(model, course)
        assert assignment.case is AssignmentCase.MAX_SENSIBILITY
        assert assignment.attribute == "innovative"
        assert set(assignment.matched) == {"innovative", "job-oriented"}

    def test_case_3ci_priority_uses_course_presence(self):
        assigner = MessageAssigner(
            default_template_bank(), threshold=0.30, tie_break=TieBreak.PRIORITY
        )
        course = course_with({"innovative": 0.5, "job-oriented": 1.0})
        model = user_sensible_to("enthusiastic", "motivated")
        assignment = assigner.assign(model, course)
        assert assignment.case is AssignmentCase.PRIORITY
        assert assignment.attribute == "job-oriented"

    def test_threshold_gates_matches(self):
        course = course_with({"job-oriented": 1.0})
        model = user_sensible_to("motivated", weight=0.2)  # 0.9*0.2 < 0.3
        assignment = self.assigner.assign(model, course)
        assert assignment.case is AssignmentCase.STANDARD

    def test_negative_links_never_produce_messages(self):
        # apathetic -> challenging is negative; must not create a match
        course = course_with({"challenging": 1.0})
        model = user_sensible_to("apathetic")
        assignment = self.assigner.assign(model, course)
        assert assignment.case is AssignmentCase.STANDARD

    def test_product_sensibilities_aggregate_links(self):
        model = SmartUserModel(1)
        model.set_sensibility("enthusiastic", 1.0)  # innovative 0.8
        model.set_sensibility("stimulated", 1.0)    # innovative 0.7
        scores = self.assigner.product_sensibilities(model)
        assert scores["innovative"] == pytest.approx(1.5)

    def test_case_distribution_counts(self):
        course = course_with({"job-oriented": 1.0})
        assignments = [
            self.assigner.assign(SmartUserModel(1), course),
            self.assigner.assign(user_sensible_to("motivated"), course),
        ]
        distribution = self.assigner.case_distribution(assignments)
        assert distribution == {"3.a": 1, "3.b": 1}

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            MessageAssigner(default_template_bank(), threshold=1.0)
