"""Logistic regression, naive Bayes, kNN, online SGD baselines."""

import numpy as np
import pytest

from repro.ml.incremental import OnlineSGDClassifier
from repro.ml.knn import KNNClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import accuracy, roc_auc
from repro.ml.naive_bayes import BernoulliNB, GaussianNB
from repro.ml.preprocessing import NotFittedError


def blobs(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x0 = rng.normal(loc=-1.0, size=(n // 2, 3))
    x1 = rng.normal(loc=+1.0, size=(n // 2, 3))
    x = np.vstack([x0, x1])
    y = np.asarray([0] * (n // 2) + [1] * (n // 2))
    return x, y


class TestLogisticRegression:
    def test_separates_blobs(self):
        x, y = blobs()
        model = LogisticRegression().fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.9

    def test_probabilities_in_unit_interval(self):
        x, y = blobs()
        p = LogisticRegression().fit(x, y).predict_proba(x)
        assert p.min() >= 0.0 and p.max() <= 1.0

    def test_probabilities_roughly_calibrated(self):
        x, y = blobs(n=1000)
        p = LogisticRegression().fit(x, y).predict_proba(x)
        assert abs(p.mean() - y.mean()) < 0.03

    def test_l2_shrinks_weights(self):
        x, y = blobs()
        loose = LogisticRegression(l2=1e-6).fit(x, y)
        tight = LogisticRegression(l2=1.0).fit(x, y)
        assert np.linalg.norm(tight.weights_) < np.linalg.norm(loose.weights_)

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 3)))


class TestGaussianNB:
    def test_separates_blobs(self):
        x, y = blobs()
        model = GaussianNB().fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.9

    def test_posteriors_sum_to_one(self):
        x, y = blobs()
        p = GaussianNB().fit(x, y).predict_proba(x)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_decision_function_binary_only(self):
        x = np.random.default_rng(0).normal(size=(30, 2))
        y = np.asarray([0, 1, 2] * 10)
        model = GaussianNB().fit(x, y)
        with pytest.raises(ValueError):
            model.decision_function(x)

    def test_multiclass_predictions(self):
        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(loc=c * 3, size=(50, 2)) for c in range(3)])
        y = np.repeat([0, 1, 2], 50)
        model = GaussianNB().fit(x, y)
        assert accuracy_multiclass(model.predict(x), y) > 0.9


def accuracy_multiclass(pred, y):
    return float(np.mean(pred == y))


class TestBernoulliNB:
    def test_binary_features(self):
        rng = np.random.default_rng(2)
        y = (rng.random(500) < 0.5).astype(int)
        x = np.column_stack(
            [
                (rng.random(500) < np.where(y == 1, 0.8, 0.2)),
                (rng.random(500) < np.where(y == 1, 0.3, 0.7)),
            ]
        ).astype(float)
        model = BernoulliNB().fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.75

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            BernoulliNB(alpha=0)

    def test_binarize_threshold(self):
        model = BernoulliNB(binarize_at=0.9)
        binary = model._binarize(np.asarray([[0.5, 0.95]]))
        assert binary.tolist() == [[0.0, 1.0]]


class TestKNN:
    def test_separates_blobs(self):
        x, y = blobs(n=200)
        model = KNNClassifier(k=7).fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.9

    def test_k_one_memorizes_training(self):
        x, y = blobs(n=100)
        model = KNNClassifier(k=1).fit(x, y)
        assert accuracy(y, model.predict(x)) == 1.0

    def test_cosine_metric(self):
        x, y = blobs(n=200)
        model = KNNClassifier(k=7, metric="cosine").fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.85

    def test_k_larger_than_train_clamps(self):
        x, y = blobs(n=20)
        model = KNNClassifier(k=100).fit(x, y)
        assert model.predict(x[:2]).shape == (2,)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            KNNClassifier(metric="manhattan")

    def test_empty_train_rejected(self):
        with pytest.raises(ValueError):
            KNNClassifier().fit(np.zeros((0, 2)), np.zeros(0))


class TestOnlineSGD:
    def test_converges_with_partial_fits(self):
        x, y = blobs(n=600)
        model = OnlineSGDClassifier(n_features=3)
        rng = np.random.default_rng(0)
        for __ in range(30):
            ids = rng.choice(len(x), size=64, replace=False)
            model.partial_fit(x[ids], y[ids])
        assert roc_auc(y, model.decision_function(x)) > 0.9

    def test_later_batches_refine_not_overwrite(self):
        x, y = blobs(n=600)
        model = OnlineSGDClassifier(n_features=3).fit(x, y, epochs=3)
        w_before = model.weights_.copy()
        model.partial_fit(x[:32], y[:32])
        # learning rate has decayed, so one batch moves weights only a little
        assert np.linalg.norm(model.weights_ - w_before) < 0.2

    def test_feature_count_enforced(self):
        model = OnlineSGDClassifier(n_features=3)
        with pytest.raises(ValueError):
            model.partial_fit(np.zeros((4, 2)), np.zeros(4))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            OnlineSGDClassifier(n_features=2).predict(np.zeros((1, 2)))

    def test_empty_batch_noop(self):
        model = OnlineSGDClassifier(n_features=2)
        model.partial_fit(np.zeros((0, 2)), np.zeros(0))
        assert model.t_ == 0
