"""Kernel functions: math identities and registry."""

import numpy as np
import pytest

from repro.ml.kernels import (
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
    resolve,
)


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    return rng.normal(size=(12, 4)), rng.normal(size=(7, 4))


class TestLinearKernel:
    def test_matches_dot_products(self, data):
        a, b = data
        gram = linear_kernel(a, b)
        assert gram.shape == (12, 7)
        assert gram[2, 3] == pytest.approx(float(a[2] @ b[3]))

    def test_symmetric_on_self(self, data):
        a, __ = data
        gram = linear_kernel(a, a)
        assert np.allclose(gram, gram.T)


class TestRbfKernel:
    def test_unit_diagonal(self, data):
        a, __ = data
        gram = rbf_kernel(0.7)(a, a)
        assert np.allclose(np.diag(gram), 1.0)

    def test_values_in_unit_interval(self, data):
        a, b = data
        gram = rbf_kernel(0.5)(a, b)
        assert gram.min() > 0.0 and gram.max() <= 1.0

    def test_decays_with_distance(self):
        kernel = rbf_kernel(1.0)
        near = kernel(np.zeros((1, 2)), np.asarray([[0.1, 0.0]]))
        far = kernel(np.zeros((1, 2)), np.asarray([[3.0, 0.0]]))
        assert near[0, 0] > far[0, 0]

    def test_gamma_controls_width(self):
        point = np.asarray([[1.0, 0.0]])
        origin = np.zeros((1, 2))
        assert rbf_kernel(0.1)(origin, point)[0, 0] > rbf_kernel(5.0)(
            origin, point
        )[0, 0]

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            rbf_kernel(0.0)


class TestPolynomialKernel:
    def test_degree_one_is_shifted_linear(self, data):
        a, b = data
        gram = polynomial_kernel(degree=1, coef0=0.0)(a, b)
        assert np.allclose(gram, linear_kernel(a, b))

    def test_degree_two_squares(self):
        a = np.asarray([[2.0]])
        b = np.asarray([[3.0]])
        assert polynomial_kernel(degree=2, coef0=1.0)(a, b)[0, 0] == 49.0

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            polynomial_kernel(degree=0)


class TestResolve:
    def test_resolves_all_names(self, data):
        a, b = data
        for name in ("linear", "rbf", "poly"):
            gram = resolve(name)(a, b)
            assert gram.shape == (12, 7)

    def test_passes_parameters(self):
        point = np.asarray([[1.0, 0.0]])
        origin = np.zeros((1, 2))
        loose = resolve("rbf", gamma=0.1)(origin, point)[0, 0]
        tight = resolve("rbf", gamma=5.0)(origin, point)[0, 0]
        assert loose > tight

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            resolve("sigmoid")
