"""Classification metrics and campaign curves."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    brier_score,
    confusion_matrix,
    cumulative_gain_curve,
    f1_score,
    gain_at,
    lift_curve,
    log_loss,
    precision,
    recall,
    response_rate_at,
    roc_auc,
)


class TestBasicMetrics:
    def test_accuracy(self):
        assert accuracy([1, 0, 1, 1], [1, 0, 0, 1]) == 0.75

    def test_accuracy_empty(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_confusion_matrix_layout(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 0, 1])
        assert matrix.tolist() == [[1, 1], [1, 1]]

    def test_precision_recall_f1(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 1, 0, 1]
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_precision_no_positive_predictions(self):
        assert precision([1, 0], [0, 0]) == 0.0

    def test_f1_zero_when_nothing_found(self):
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1, 0], [1])


class TestAuc:
    def test_perfect_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_ties(self):
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_matches_scipy_rankdata(self):
        from scipy.stats import rankdata

        rng = np.random.default_rng(0)
        scores = rng.normal(size=500)
        y = (rng.random(500) < 0.3).astype(int)
        ranks = rankdata(scores)
        n_pos = y.sum()
        expected = (ranks[y == 1].sum() - n_pos * (n_pos + 1) / 2) / (
            n_pos * (len(y) - n_pos)
        )
        assert roc_auc(y, scores) == pytest.approx(float(expected), abs=1e-12)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc([1, 1], [0.5, 0.6])


class TestProbabilityMetrics:
    def test_log_loss_perfect(self):
        assert log_loss([1, 0], [1.0, 0.0]) < 1e-10

    def test_log_loss_uniform(self):
        assert log_loss([1, 0], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_brier_bounds(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0


class TestGainCurves:
    def setup_method(self):
        rng = np.random.default_rng(1)
        self.scores = rng.normal(size=1000)
        self.y = (rng.random(1000) < 1 / (1 + np.exp(-2 * self.scores))).astype(int)

    def test_endpoints(self):
        fractions, captured = cumulative_gain_curve(self.y, self.scores)
        assert captured[0] == 0.0
        assert captured[-1] == 1.0

    def test_monotone_non_decreasing(self):
        __, captured = cumulative_gain_curve(self.y, self.scores)
        assert np.all(np.diff(captured) >= -1e-12)

    def test_beats_diagonal_for_informative_scores(self):
        assert gain_at(self.y, self.scores, 0.4) > 0.5

    def test_perfect_scores_steepest(self):
        y = np.asarray([0] * 80 + [1] * 20)
        scores = y.astype(float)
        assert gain_at(y, scores, 0.2) == pytest.approx(1.0, abs=0.01)

    def test_gain_undefined_without_positives(self):
        with pytest.raises(ValueError):
            cumulative_gain_curve([0, 0, 0], [0.1, 0.2, 0.3])

    def test_lift_starts_above_one_for_informative(self):
        fractions, lifts = lift_curve(self.y, self.scores)
        mid = np.searchsorted(fractions, 0.2)
        assert lifts[mid] > 1.2

    def test_response_rate_top_slice_exceeds_base(self):
        top = response_rate_at(self.y, self.scores, 0.2)
        assert top > self.y.mean()

    def test_response_rate_full_population_is_base(self):
        assert response_rate_at(self.y, self.scores, 1.0) == pytest.approx(
            self.y.mean()
        )

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            gain_at(self.y, self.scores, 1.5)
        with pytest.raises(ValueError):
            response_rate_at(self.y, self.scores, 0.0)
