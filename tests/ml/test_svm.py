"""Linear and kernel SVM behaviour."""

import numpy as np
import pytest

from repro.ml.kernels import rbf_kernel
from repro.ml.metrics import accuracy, roc_auc
from repro.ml.preprocessing import NotFittedError
from repro.ml.svm import KernelSVM, LinearSVM


def linearly_separable(n=300, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    w = np.asarray([1.5, -2.0, 0.5, 1.0])
    y = (x @ w + 0.3 > 0).astype(int)
    return x, y


def noisy_linear(n=800, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 6))
    w = rng.normal(size=6)
    logits = x @ w
    y = (rng.random(n) < 1 / (1 + np.exp(-2 * logits))).astype(int)
    return x, y


class TestLinearSVM:
    def test_separable_data_high_accuracy(self):
        x, y = linearly_separable()
        model = LinearSVM(epochs=15).fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.93

    def test_noisy_data_good_auc(self):
        x, y = noisy_linear()
        model = LinearSVM(epochs=15).fit(x, y)
        assert roc_auc(y, model.decision_function(x)) > 0.85

    def test_deterministic_under_seed(self):
        x, y = linearly_separable()
        a = LinearSVM(seed=3).fit(x, y)
        b = LinearSVM(seed=3).fit(x, y)
        assert np.allclose(a.weights_, b.weights_)
        assert a.bias_ == b.bias_

    def test_accepts_plus_minus_labels(self):
        x, y = linearly_separable()
        model = LinearSVM(epochs=10).fit(x, np.where(y == 1, 1, -1))
        assert accuracy(y, model.predict(x)) > 0.9

    def test_rejects_single_class(self):
        x = np.zeros((10, 2))
        with pytest.raises(ValueError):
            LinearSVM().fit(x, np.ones(10))

    def test_rejects_multiclass(self):
        x = np.zeros((9, 2))
        with pytest.raises(ValueError):
            LinearSVM().fit(x, np.asarray([0, 1, 2] * 3))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearSVM().fit(np.zeros((5, 2)), np.zeros(6))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LinearSVM().predict(np.zeros((2, 2)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            LinearSVM(c=0)
        with pytest.raises(ValueError):
            LinearSVM(epochs=0)
        with pytest.raises(ValueError):
            LinearSVM(batch_size=0)
        with pytest.raises(ValueError):
            LinearSVM(eta_max=0)

    def test_margins_sign_matches_predictions(self):
        x, y = linearly_separable()
        model = LinearSVM(epochs=10).fit(x, y)
        margins = model.decision_function(x)
        assert np.array_equal(model.predict(x), (margins >= 0).astype(int))


class TestKernelSVM:
    def test_linear_kernel_on_separable(self):
        x, y = linearly_separable(n=150)
        model = KernelSVM(max_iter=50).fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.9

    def test_rbf_solves_circles(self):
        rng = np.random.default_rng(4)
        radius = np.concatenate([rng.uniform(0, 1, 100), rng.uniform(2, 3, 100)])
        angle = rng.uniform(0, 2 * np.pi, 200)
        x = np.column_stack([radius * np.cos(angle), radius * np.sin(angle)])
        y = (radius > 1.5).astype(int)
        model = KernelSVM(kernel=rbf_kernel(0.5), max_iter=60).fit(x, y)
        assert accuracy(y, model.predict(x)) > 0.95

    def test_linear_kernel_cannot_solve_circles(self):
        rng = np.random.default_rng(4)
        radius = np.concatenate([rng.uniform(0, 1, 80), rng.uniform(2, 3, 80)])
        angle = rng.uniform(0, 2 * np.pi, 160)
        x = np.column_stack([radius * np.cos(angle), radius * np.sin(angle)])
        y = (radius > 1.5).astype(int)
        model = KernelSVM(max_iter=30).fit(x, y)
        assert accuracy(y, model.predict(x)) < 0.8

    def test_support_vector_count_positive(self):
        x, y = linearly_separable(n=100)
        model = KernelSVM(max_iter=30).fit(x, y)
        assert 0 < model.n_support_ <= len(x)

    def test_n_support_before_fit(self):
        with pytest.raises(NotFittedError):
            __ = KernelSVM().n_support_

    def test_decision_before_fit(self):
        with pytest.raises(NotFittedError):
            KernelSVM().decision_function(np.zeros((1, 2)))
