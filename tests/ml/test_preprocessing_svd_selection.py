"""Scaler, encoder, splits, SVD, calibration, model selection."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ml.calibration import PlattScaler
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import accuracy, roc_auc
from repro.ml.model_selection import cross_val_score, grid_search, kfold_indices
from repro.ml.preprocessing import (
    NotFittedError,
    OneHotEncoder,
    StandardScaler,
    train_test_split,
)
from repro.ml.svd import TruncatedSVD


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5, scale=3, size=(200, 4))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_scaled(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z[:, 0], 0.0)

    def test_inverse_transform_round_trip(self):
        x = np.random.default_rng(1).normal(size=(50, 3))
        scaler = StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((1, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))


class TestOneHotEncoder:
    def test_round_trip_categories(self):
        encoder = OneHotEncoder().fit(["b", "a", "c", "a"])
        assert encoder.categories_ == ["a", "b", "c"]
        out = encoder.transform(["c", "a"])
        assert out.tolist() == [[0, 0, 1], [1, 0, 0]]

    def test_unknown_category_all_zeros(self):
        encoder = OneHotEncoder().fit(["a", "b"])
        assert encoder.transform(["z"]).tolist() == [[0, 0]]

    def test_feature_names(self):
        encoder = OneHotEncoder().fit(["x", "y"])
        assert encoder.feature_names("col") == ["col=x", "col=y"]

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            OneHotEncoder().transform(["a"])


class TestTrainTestSplit:
    def test_sizes(self):
        x = np.arange(100).reshape(-1, 1)
        y = np.arange(100) % 2
        xtr, xte, ytr, yte = train_test_split(x, y, 0.25)
        assert len(xte) == 25 and len(xtr) == 75

    def test_disjoint_and_complete(self):
        x = np.arange(40).reshape(-1, 1)
        y = np.zeros(40)
        y[::2] = 1
        xtr, xte, __, __ = train_test_split(x, y, 0.3)
        together = sorted(xtr.ravel().tolist() + xte.ravel().tolist())
        assert together == list(range(40))

    def test_stratified_preserves_rate(self):
        rng = np.random.default_rng(0)
        y = (rng.random(1000) < 0.2).astype(int)
        x = np.zeros((1000, 1))
        __, __, ytr, yte = train_test_split(x, y, 0.25, stratify=True)
        assert abs(yte.mean() - 0.2) < 0.05

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), 1.0)


class TestTruncatedSVD:
    def test_recovers_low_rank_structure(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(80, 3)) @ rng.normal(size=(3, 30))
        svd = TruncatedSVD(rank=3).fit(x)
        assert svd.reconstruction_error(x) < 1e-8
        assert svd.explained_variance_ratio_.sum() > 0.999

    def test_transform_shape(self):
        x = np.random.default_rng(0).normal(size=(20, 10))
        z = TruncatedSVD(rank=4).fit_transform(x)
        assert z.shape == (20, 4)

    def test_sparse_input(self):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(40, 4)) @ rng.normal(size=(4, 25))
        dense[np.abs(dense) < 1.0] = 0.0
        sparse = sp.csr_matrix(dense)
        svd = TruncatedSVD(rank=4).fit(sparse)
        assert svd.transform(sparse).shape == (40, 4)

    def test_rank_clamped_to_matrix(self):
        x = np.random.default_rng(0).normal(size=(5, 3))
        svd = TruncatedSVD(rank=10).fit(x)
        assert svd.effective_rank_ == 3

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            TruncatedSVD(rank=0)


class TestPlattScaler:
    def test_preserves_ranking(self):
        rng = np.random.default_rng(0)
        margins = rng.normal(size=500)
        y = (rng.random(500) < 1 / (1 + np.exp(-margins))).astype(int)
        p = PlattScaler().fit(margins, y).predict_proba(margins)
        assert roc_auc(y, p) == pytest.approx(roc_auc(y, margins), abs=1e-9)

    def test_calibrated_mean_matches_base_rate(self):
        rng = np.random.default_rng(1)
        margins = rng.normal(size=2000)
        y = (rng.random(2000) < 1 / (1 + np.exp(-2 * margins - 1))).astype(int)
        p = PlattScaler().fit(margins, y).predict_proba(margins)
        assert abs(p.mean() - y.mean()) < 0.02

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            PlattScaler().fit(np.zeros(5), np.ones(5))

    def test_extreme_margins_stable(self):
        margins = np.asarray([-1e6, -10.0, 10.0, 1e6])
        y = np.asarray([0, 0, 1, 1])
        p = PlattScaler().fit(margins, y).predict_proba(margins)
        assert np.all(np.isfinite(p))


class TestModelSelection:
    def test_kfold_covers_everything_once(self):
        seen = []
        for __, test_ids in kfold_indices(20, k=4):
            seen.extend(test_ids.tolist())
        assert sorted(seen) == list(range(20))

    def test_kfold_train_test_disjoint(self):
        for train_ids, test_ids in kfold_indices(20, k=4):
            assert not set(train_ids) & set(test_ids)

    def test_kfold_validation(self):
        with pytest.raises(ValueError):
            list(kfold_indices(3, k=5))

    def test_cross_val_score_reasonable(self):
        rng = np.random.default_rng(0)
        x = np.vstack(
            [rng.normal(-1, 1, (60, 2)), rng.normal(1, 1, (60, 2))]
        )
        y = np.repeat([0, 1], 60)
        scores = cross_val_score(
            lambda: LogisticRegression(), x, y, accuracy, k=4
        )
        assert scores.shape == (4,)
        assert scores.mean() > 0.8

    def test_grid_search_picks_best(self):
        rng = np.random.default_rng(0)
        x = np.vstack(
            [rng.normal(-0.7, 1, (80, 3)), rng.normal(0.7, 1, (80, 3))]
        )
        y = np.repeat([0, 1], 80)
        best_params, best_score, results = grid_search(
            lambda l2: LogisticRegression(l2=l2),
            {"l2": [1e-4, 10.0]},
            x,
            y,
            accuracy,
            k=3,
        )
        assert best_params["l2"] == 1e-4
        assert len(results) == 2
        assert best_score == max(score for __, score in results)

    def test_grid_search_empty_grid(self):
        with pytest.raises(ValueError):
            grid_search(lambda: None, {}, np.zeros((4, 1)), np.zeros(4), accuracy)
