"""Campaign records, targeting, redemption math, reporting."""

import numpy as np
import pytest

from repro.campaigns.campaign import CampaignResult, TouchRecord
from repro.campaigns.redemption import (
    ascii_curve,
    combined_gain_curve,
    gain_at_fraction,
    pooled_scores,
    redemption_improvement,
)
from repro.campaigns.reporting import build_summary, format_table
from repro.campaigns.targeting import select_random_targets, top_fraction_by_score
from repro.datagen.campaigns_plan import CampaignSpec
from repro.messaging.assigner import AssignmentCase, MessageAssignment


def touch(uid, transacted, propensity, case=AssignmentCase.STANDARD):
    assignment = MessageAssignment(uid, 1, case, None, "text")
    opened = transacted
    return TouchRecord(
        user_id=uid,
        campaign_id="c",
        assignment=assignment,
        opened=opened,
        clicked=transacted,
        transacted=transacted,
        answered_option=None,
        propensity=propensity,
    )


def make_result(scores, outcomes, campaign_id="push-01"):
    spec = CampaignSpec(campaign_id, "push", 1, 0.5)
    result = CampaignResult(spec=spec)
    for uid, (score, outcome) in enumerate(zip(scores, outcomes)):
        result.touches.append(touch(uid, bool(outcome), score))
    return result


class TestCampaignResult:
    def test_rates(self):
        result = make_result([0.9, 0.1, 0.8, 0.2], [1, 0, 1, 0])
        assert result.n_targets == 4
        assert result.useful_impacts == 2
        assert result.predictive_score == 0.5

    def test_scores_and_outcomes_skips_unscored(self):
        result = make_result([0.9, None, 0.8], [1, 0, 0])
        scores, outcomes = result.scores_and_outcomes()
        assert len(scores) == 2

    def test_empty_result_rates_zero(self):
        result = CampaignResult(CampaignSpec("c", "push", 1, 0.5))
        assert result.predictive_score == 0.0


class TestTargeting:
    def test_random_targets_size_and_determinism(self):
        ids = list(range(100))
        a = select_random_targets(ids, 0.3, "c1", seed=7)
        b = select_random_targets(ids, 0.3, "c1", seed=7)
        assert a == b
        assert len(a) == 30

    def test_different_campaigns_differ(self):
        ids = list(range(100))
        assert select_random_targets(ids, 0.3, "c1") != select_random_targets(
            ids, 0.3, "c2"
        )

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            select_random_targets([1, 2], 0.0, "c")

    def test_top_fraction_by_score(self):
        chosen = top_fraction_by_score([10, 20, 30, 40], [0.1, 0.9, 0.5, 0.7], 0.5)
        assert chosen == [20, 40]

    def test_top_fraction_tie_break_by_user(self):
        chosen = top_fraction_by_score([5, 3], [0.5, 0.5], 0.5)
        assert chosen == [3]

    def test_top_fraction_length_mismatch(self):
        with pytest.raises(ValueError):
            top_fraction_by_score([1], [0.1, 0.2], 0.5)


class TestRedemption:
    def make_results(self):
        rng = np.random.default_rng(0)
        results = []
        for c in range(3):
            scores = rng.random(200)
            outcomes = (rng.random(200) < scores * 0.5).astype(int)
            results.append(make_result(scores, outcomes, f"push-{c}"))
        return results

    def test_curve_endpoints(self):
        fractions, captured = combined_gain_curve(self.make_results())
        assert captured[0] == 0.0
        assert captured[-1] == pytest.approx(1.0)

    def test_curve_monotone(self):
        __, captured = combined_gain_curve(self.make_results())
        assert np.all(np.diff(captured) >= -1e-12)

    def test_informative_scores_beat_diagonal(self):
        assert gain_at_fraction(self.make_results(), 0.4) > 0.45

    def test_pooled_scores_concatenates(self):
        scores, outcomes = pooled_scores(self.make_results())
        assert len(scores) == 600

    def test_no_scored_touches_raises(self):
        result = make_result([None, None], [1, 0])
        with pytest.raises(ValueError):
            combined_gain_curve([result])

    def test_improvement_math(self):
        assert redemption_improvement(0.21, 0.11) == pytest.approx(0.909, abs=1e-3)
        with pytest.raises(ValueError):
            redemption_improvement(0.2, 0.0)

    def test_ascii_curve_renders(self):
        fractions, captured = combined_gain_curve(self.make_results())
        art = ascii_curve(fractions, captured)
        assert "100%" in art and "commercial action" in art
        assert "*" in art


class TestReporting:
    def test_summary_aggregates(self):
        results = [
            make_result([0.9, 0.1], [1, 0], "push-01"),
            make_result([0.8, 0.7], [1, 1], "push-02"),
        ]
        summary = build_summary(results)
        assert summary.total_useful_impacts == 3
        assert summary.average_performance == pytest.approx((0.5 + 1.0) / 2)

    def test_projection_to_paper_scale(self):
        results = [make_result([0.9, 0.1], [1, 0], "push-01")]
        summary = build_summary(results)
        assert summary.reports[0].projected_impacts_paper_scale == pytest.approx(
            0.5 * 1_340_432, abs=1
        )

    def test_paper_reference_numbers_attached(self):
        summary = build_summary([make_result([0.5], [1])])
        assert summary.paper_average_performance == pytest.approx(0.21)
        assert summary.paper_useful_impacts == 282_938

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            build_summary([])

    def test_format_table_alignment(self):
        rows = build_summary([make_result([0.5], [1])]).table_rows()
        text = format_table(rows)
        assert "campaign" in text.splitlines()[0]
        assert len(text.splitlines()) == 3
