"""Feature builder, propensity model and the campaign engine (integration)."""

import numpy as np
import pytest

from repro.campaigns.delivery import CampaignEngine, EngineConfig
from repro.campaigns.propensity import (
    FeatureBuilder,
    PropensityModel,
    estimated_appeal,
)
from repro.core.sum_model import SmartUserModel, SumRepository
from repro.datagen.behavior import BehaviorModel
from repro.datagen.campaigns_plan import CampaignSpec
from repro.datagen.catalog import CourseCatalog
from repro.datagen.population import Population


@pytest.fixture(scope="module")
def small_world():
    population = Population.generate(300, seed=7)
    catalog = CourseCatalog.generate(30, seed=7)
    return BehaviorModel(population, catalog, seed=7)


@pytest.fixture(scope="module")
def run_engine(small_world):
    engine = CampaignEngine(small_world, EngineConfig(seed=7))
    engine.register_population()
    engine.ingest_browsing()
    warmup = CampaignSpec("warmup-00", "push", 0, 0.5)
    specs = [
        CampaignSpec("push-01", "push", 5, 0.5),
        CampaignSpec("push-02", "push", 9, 0.5),
        CampaignSpec("newsletter-03", "newsletter", 12, 0.5),
    ]
    results = engine.run_plan(specs, warmup=[warmup])
    return engine, results


class TestFeatureBuilder:
    def test_width_matches_names(self, run_engine):
        engine, __ = run_engine
        course = engine.world.catalog.get(5)
        ids = engine.sums.user_ids()[:20]
        x = engine.builder.build(
            engine.sums, engine._behavior_features, ids, course=course,
            embeddings=engine._embeddings,
            course_engagement=engine._course_engagement,
            area_engagement=engine._area_engagement,
        )
        assert x.shape == (20, len(engine.builder.feature_names(with_course=True)))

    def test_no_course_narrower(self, run_engine):
        engine, __ = run_engine
        ids = engine.sums.user_ids()[:5]
        x = engine.builder.build(
            engine.sums, engine._behavior_features, ids,
            embeddings=engine._embeddings,
        )
        assert x.shape == (5, len(engine.builder.feature_names(with_course=False)))

    def test_at_least_one_block_required(self):
        with pytest.raises(ValueError):
            FeatureBuilder(False, False, False)

    def test_estimated_appeal_matches_formula(self, small_world):
        course = small_world.catalog.get(3)
        model = SmartUserModel(1)
        model.emotional.intensities["enthusiastic"] = 0.8
        direct = estimated_appeal(None, course, model)
        traits = {"enthusiastic": 0.8}
        assert direct == pytest.approx(course.emotional_appeal(traits))

    def test_build_before_fit(self):
        builder = FeatureBuilder()
        with pytest.raises(Exception):
            builder.build(SumRepository(), {}, [1])


class TestPropensityModel:
    def make_data(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, 6))
        w = rng.normal(size=6)
        y = (rng.random(n) < 1 / (1 + np.exp(-x @ w))).astype(int)
        return x, y

    @pytest.mark.parametrize("estimator", ["svm", "logistic", "naive_bayes", "knn"])
    def test_all_estimators_fit_and_rank(self, estimator):
        from repro.ml.metrics import roc_auc

        x, y = self.make_data()
        model = PropensityModel(estimator).fit(x, y)
        proba = model.predict_proba(x)
        assert proba.min() >= 0.0 and proba.max() <= 1.0
        assert roc_auc(y, proba) > 0.6

    def test_unknown_estimator(self):
        with pytest.raises(ValueError):
            PropensityModel("transformer")

    def test_single_class_rejected(self):
        x = np.zeros((10, 2))
        with pytest.raises(ValueError):
            PropensityModel().fit(x, np.ones(10))

    def test_predict_before_fit(self):
        with pytest.raises(Exception):
            PropensityModel().predict_proba(np.zeros((1, 2)))


class TestCampaignEngine:
    def test_population_registered_with_objectives(self, run_engine):
        engine, __ = run_engine
        model = engine.sums.get(0)
        assert "region" in model.objective
        assert len(engine.sums) == 300

    def test_warmup_unscored_plan_scored(self, run_engine):
        __, results = run_engine
        for result in results:
            scores, __o = result.scores_and_outcomes()
            assert len(scores) == result.n_targets  # all scored after warmup

    def test_target_count_matches_fraction(self, run_engine):
        __, results = run_engine
        assert results[0].n_targets == 150

    def test_events_written_per_outcome(self, run_engine):
        engine, results = run_engine
        counts = engine.event_log.count_by_category()
        opened = sum(
            1 for r in engine.history for t in r.touches if t.opened
        )
        assert counts.get("campaign", 0) >= opened  # opens + clicks

    def test_training_rows_accumulate(self, run_engine):
        engine, __ = run_engine
        assert len(engine._training_rows) == 4 * 150

    def test_eit_answers_recorded(self, run_engine):
        engine, __ = run_engine
        answered = [len(m.answered_questions) for m in engine.sums]
        assert np.mean(answered) > 0.5

    def test_sensibilities_emerge(self, run_engine):
        engine, __ = run_engine
        weights = [
            max(m.sensibility.values()) if m.sensibility else 0.0
            for m in engine.sums
        ]
        assert np.mean([w > 0.3 for w in weights]) > 0.1

    def test_personalized_beats_standard_on_average(self, small_world):
        specs = [
            CampaignSpec(f"push-{i:02d}", "push", i, 0.6) for i in range(5, 10)
        ]
        personal = CampaignEngine(small_world, EngineConfig(seed=7))
        personal.register_population()
        personal.ingest_browsing()
        personal_results = personal.run_plan(specs, warmup=None)
        standard = CampaignEngine(small_world, EngineConfig(seed=7))
        standard.register_population()
        standard_results = [
            standard.run_campaign(s, scored=False, personalize=False, retrain=False)
            for s in specs
        ]
        p_rate = np.mean([r.predictive_score for r in personal_results])
        s_rate = np.mean([r.predictive_score for r in standard_results])
        assert p_rate > s_rate

    def test_score_users_requires_model(self, small_world):
        engine = CampaignEngine(small_world, EngineConfig(seed=7))
        engine.register_population()
        with pytest.raises(RuntimeError):
            engine.score_users([0, 1], small_world.catalog.get(0))

    def test_ablation_flags_change_width(self, small_world):
        full = CampaignEngine(small_world, EngineConfig(seed=7))
        lean = CampaignEngine(
            small_world, EngineConfig(seed=7, include_emotional=False)
        )
        full.register_population()
        lean.register_population()
        assert len(full.builder.feature_names(True)) > len(
            lean.builder.feature_names(True)
        )
