"""The gate itself: the repo's own tree must analyze clean.

This is the test CI leans on — ``src/repro`` has zero unwaived
findings against the committed baseline, and the static lock-order
graph is acyclic.  Anyone adding an unguarded write or a conflicting
lock nesting turns this red locally before CI does.
"""

from pathlib import Path

from repro.analysis.cli import main, run_checks
from repro.analysis.core import Project

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_is_clean_under_the_committed_baseline(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["src/repro"]) == 0
    assert "0 unwaived findings" in capsys.readouterr().out


def test_lock_graph_is_acyclic_and_nonempty():
    project = Project.load([REPO_ROOT / "src" / "repro"])
    findings, graph_dump = run_checks(project)
    assert not any(f.rule == "LO001" for f in findings)
    # The stack's load-bearing orderings must be in the graph.
    edges = {(e["outer"], e["inner"]) for e in graph_dump["edges"]}
    assert ("SumCache._lock_for()", "ColumnarSumStore._lock") in edges
    assert ("WriteBehindWriter._lock", "EventLog._write_lock") in edges


def test_every_committed_waiver_still_matches_something():
    # main() already fails on stale waivers; assert the committed file
    # parses and every entry carries a justification, so reviewers can
    # trust the baseline as documentation.
    from repro.analysis.baseline import load_baseline

    waivers = load_baseline(REPO_ROOT / "analysis-baseline.toml")
    assert waivers, "baseline exists but declares no waivers?"
    for waiver in waivers:
        assert waiver.justification.strip()
