"""The analyzer against its seeded-violation corpus.

Every fixture in ``fixtures/`` marks each offending line with
``# [RULE]``; these tests assert the finding set equals the marker set
*exactly* — every seeded violation detected at its line, and zero
false positives (the clean twins use the same statement shapes legally).
"""

import re
from pathlib import Path

import pytest

from repro.analysis.cli import run_checks
from repro.analysis.core import Project
from repro.analysis.lock_order import build_lock_graph

FIXTURES = Path(__file__).resolve().parent / "fixtures"
MARKER = re.compile(r"#\s*\[([A-Z]{2}\d{3})\]")

VIOLATION_FIXTURES = [
    "ld_violations.py",
    "lo_violations.py",
    "sn_violations.py",
    "sq_violations.py",
    "hy_violations.py",
]
CLEAN_FIXTURES = [
    "ld_clean.py", "lo_clean.py", "sn_clean.py", "sq_clean.py", "hy_clean.py",
]

ALL_RULES = {
    "LD001", "LD002", "LD003",
    "LO001", "LO002",
    "SN001", "SN002",
    "SQ001", "SQ002",
    "HY001", "HY002", "HY003",
}


def analyze(name: str):
    project = Project()
    project.add_file(FIXTURES / name, display=name)
    project.index()
    findings, _graph = run_checks(project)
    return project, findings


def markers(name: str) -> set[tuple[str, int]]:
    expected: set[tuple[str, int]] = set()
    text = (FIXTURES / name).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), 1):
        for rule in MARKER.findall(line):
            expected.add((rule, lineno))
    return expected


@pytest.mark.parametrize("name", VIOLATION_FIXTURES)
def test_seeded_violations_detected_at_exact_lines(name):
    _, findings = analyze(name)
    assert {(f.rule, f.line) for f in findings} == markers(name)
    assert all(f.path == name for f in findings)


@pytest.mark.parametrize("name", CLEAN_FIXTURES)
def test_clean_twins_have_zero_findings(name):
    _, findings = analyze(name)
    assert findings == []


def test_corpus_covers_every_rule():
    seeded = set()
    for name in VIOLATION_FIXTURES:
        seeded |= {rule for rule, _ in markers(name)}
    assert seeded == ALL_RULES


def test_ld_findings_name_the_guarded_state_and_lock():
    _, findings = analyze("ld_violations.py")
    by_rule = {}
    for f in findings:
        by_rule.setdefault(f.rule, []).append(f)
    assert any(
        "LeakyCounter._counts" in f.message and "LeakyCounter._lock" in f.message
        for f in by_rule["LD001"]
    )
    (ld002,) = by_rule["LD002"]
    assert "_rebalance" in ld002.message
    assert ld002.symbol == "LeakyCounter.rebalance"
    (ld003,) = by_rule["LD003"]
    assert ld003.symbol == "LeakyCounter.sneak"


def test_sq_findings_name_the_seqlock_and_protocol():
    _, findings = analyze("sq_violations.py")
    by_rule = {}
    for f in findings:
        by_rule.setdefault(f.rule, []).append(f)
    assert all(
        "MirrorTable.row_generations" in f.message for f in by_rule["SQ001"]
    )
    assert {f.symbol for f in by_rule["SQ001"]} == {
        "TornCapture.capture", "TornCapture.capture_many",
    }
    assert {f.symbol for f in by_rule["SQ002"]} == {
        "UnmarkedCopier.snapshot", "UnmarkedCopier.snapshot_all",
    }


def test_sq_declarations_reach_the_static_registry():
    project, _ = analyze("sq_violations.py")
    decl = project.registry.seqlocks["MirrorTable.row_generations"]
    assert decl["protects"] == ("refresh_row", "copy_row")
    assert decl["writer_lock"] == "MirrorTable._lock"


def test_lo_cycle_names_both_locks_and_edges():
    _, findings = analyze("lo_violations.py")
    cycles = [f for f in findings if f.rule == "LO001"]
    threaded = next(f for f in cycles if "Left._lock" in f.message)
    assert "Left._lock->Right._lock" in threaded.message
    assert "Right._lock->Left._lock" in threaded.message
    # the multiprocessing twin: the locks hide under non-lock-ish names
    # and only the mp/ctx factory typing makes the cycle visible
    mp_cycle = next(f for f in cycles if "Upstream._gate" in f.message)
    assert "Downstream._gate->Upstream._gate" in mp_cycle.message
    assert "Upstream._gate->Downstream._gate" in mp_cycle.message


def test_lo_clean_graph_has_declared_edges_and_no_cycle():
    project, findings = analyze("lo_clean.py")
    assert findings == []
    graph = build_lock_graph(project)
    assert graph.allowed_edges() == {
        ("CleanLeft._lock", "CleanRight._lock"),
        ("CleanUpstream._gate", "CleanDownstream._gate"),
    }


def test_lo_violation_graph_contains_both_directions():
    project, _ = analyze("lo_violations.py")
    edges = build_lock_graph(project).allowed_edges()
    assert ("Left._lock", "Right._lock") in edges
    assert ("Right._lock", "Left._lock") in edges
    # multiprocessing locks participate in the graph like threading ones
    assert ("Upstream._gate", "Downstream._gate") in edges
    assert ("Downstream._gate", "Upstream._gate") in edges
