"""Condition variables over witnessed locks (the PR-7 ContractLock gap).

``threading.Condition(lock)`` drives its lock through the private
``_release_save`` / ``_acquire_restore`` / ``_is_owned`` hooks.  Before
PR 7 a :class:`~repro.analysis.contracts.ContractLock` lacked them, so
the bus's backpressure conditions could not run under the runtime
witness at all.  These tests pin the hook semantics — the witness stack
stays symmetric across ``wait()``/``notify()`` — and run the real
:class:`~repro.streaming.bus.PartitionQueue` (three conditions over one
witnessed lock) through a threaded produce/consume workload.
"""

import threading
from pathlib import Path

import pytest

from repro.analysis.contracts import REGISTRY, WITNESS, ContractLock
from repro.analysis.core import Project
from repro.analysis.lock_order import build_lock_graph

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def witnessed(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_WITNESS", "1")
    WITNESS.reset()
    yield WITNESS
    WITNESS.reset()


class TestConditionHooks:
    def test_is_owned_tracks_plain_lock_state(self, witnessed):
        lock = ContractLock("Demo.lock")
        assert lock._is_owned() is False
        with lock:
            assert lock._is_owned() is True
        assert lock._is_owned() is False
        # probing ownership must not record phantom witness events
        assert witnessed.acquisitions == 1

    def test_is_owned_tracks_reentrant_lock_state(self, witnessed):
        lock = ContractLock("Demo.rlock", reentrant=True)
        assert lock._is_owned() is False
        with lock:
            with lock:
                assert lock._is_owned() is True
        assert lock._is_owned() is False

    def test_condition_wait_releases_and_restores_the_witness_stack(
        self, witnessed
    ):
        """While one thread waits, another can witness-acquire the lock."""
        lock = ContractLock("Demo.cv")
        cond = threading.Condition(lock)
        ready = threading.Event()
        state = {"woken": False, "holder_saw_free": None}

        def waiter():
            with cond:
                ready.set()
                cond.wait(timeout=5.0)
                # wait() reacquired through _acquire_restore: we own it
                state["woken"] = lock._is_owned()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert ready.wait(timeout=5.0)
        with cond:  # only possible because wait() released via _release_save
            state["holder_saw_free"] = True
            cond.notify()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert state == {"woken": True, "holder_saw_free": True}
        # every acquire (enter, restore-after-wait, notifier) was released
        assert witnessed.acquisitions >= 3
        assert witnessed.check(set(), REGISTRY) == []  # no nesting recorded


class TestPartitionQueueUnderWitness:
    def test_backpressure_workload_stays_inside_the_static_graph(
        self, witnessed
    ):
        # Imports inside the test: lock wrapping happens at construction,
        # and construction must see the env gate already set.
        from repro.streaming.bus import PartitionQueue

        queue = PartitionQueue(0, capacity=4, max_attempts=3)
        assert isinstance(queue._lock, ContractLock)
        consumed: list[int] = []
        errors: list[BaseException] = []

        def producer():
            try:
                for i in range(200):  # capacity 4 forces real waits
                    queue.put(i, key=i % 8, timeout=10.0)
            except BaseException as exc:
                errors.append(exc)

        def consumer():
            try:
                while len(consumed) < 200:
                    batch = queue.get_batch(3, timeout=10.0)
                    if not batch:
                        continue
                    consumed.extend(d.value for d in batch)
                    queue.ack_batch(batch)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=producer),
            threading.Thread(target=consumer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []
        assert sorted(consumed) == list(range(200))
        assert queue.join(timeout=5.0)

        assert witnessed.acquisitions > 0
        graph = build_lock_graph(Project.load([REPO_ROOT / "src" / "repro"]))
        assert witnessed.check(graph.allowed_edges(), REGISTRY) == []
