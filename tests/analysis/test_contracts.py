"""Runtime half of the contracts: decorators, registry, witness, locks."""

import threading

import pytest

from repro.analysis.contracts import (
    ContractError,
    ContractLock,
    ContractRegistry,
    LockWitness,
    contracts_of,
    guarded_by,
    make_lock,
    manual_guard,
    requires_lock,
    witness_enabled,
)


class TestDecorators:
    def test_guarded_by_stacks_one_declaration_per_lock(self):
        @guarded_by("_a_lock", "x", "y")
        @guarded_by("_b_lock", "z", aliases=("_b_cond",))
        class Guarded:
            pass

        specs = contracts_of(Guarded)
        assert len(specs) == 2
        by_lock = {s["lock"]: s for s in specs}
        assert by_lock["_a_lock"]["attrs"] == ("x", "y")
        assert by_lock["_b_lock"]["aliases"] == ("_b_cond",)

    def test_contracts_are_not_inherited(self):
        @guarded_by("_lock", "x")
        class Base:
            pass

        class Child(Base):
            pass

        assert contracts_of(Base) != ()
        assert contracts_of(Child) == ()

    def test_guarded_by_rejects_empty_declarations(self):
        with pytest.raises(ContractError):
            guarded_by("", "x")
        with pytest.raises(ContractError):
            guarded_by("_lock")

    def test_requires_lock_tags_the_function(self):
        @requires_lock("_lock")
        def helper():
            pass

        assert getattr(helper, "__requires_lock__") == "_lock"
        with pytest.raises(ContractError):
            requires_lock("")

    def test_manual_guard_demands_a_justification(self):
        @manual_guard("sorted loop acquisition")
        def escape():
            pass

        assert getattr(escape, "__manual_guard__") == "sorted loop acquisition"
        with pytest.raises(ContractError):
            manual_guard("")
        with pytest.raises(ContractError):
            manual_guard("   ")


class TestRegistry:
    def test_aliases_canonicalize(self):
        reg = ContractRegistry()
        reg.declare_lock("A._lock", aliases=("A._not_empty", "A._not_full"))
        assert reg.canonical("A._not_empty") == "A._lock"
        assert reg.canonical("A._lock") == "A._lock"
        assert reg.decl_for("A._not_full").node == "A._lock"

    def test_declare_order_stores_canonical_edges(self):
        reg = ContractRegistry()
        reg.declare_lock("A._lock", aliases=("A._cond",))
        reg.declare_lock("B._lock")
        reg.declare_order("A._cond", "B._lock")
        assert ("A._lock", "B._lock") in reg.orders

    def test_empty_names_rejected(self):
        reg = ContractRegistry()
        with pytest.raises(ContractError):
            reg.declare_lock("")
        with pytest.raises(ContractError):
            reg.declare_order("A", "")


class TestWitness:
    def test_nested_acquisition_records_an_edge(self):
        witness = LockWitness()
        witness.on_acquire("A", 1)
        witness.on_acquire("B", 2)
        witness.on_release("B", 2)
        witness.on_release("A", 1)
        assert ("A", "B") in witness.edges
        assert witness.acquisitions == 2

    def test_reacquiring_the_same_object_is_silent(self):
        witness = LockWitness()
        witness.on_acquire("A", 1)
        witness.on_acquire("A", 1)  # RLock reentry: same object id
        assert witness.edges == {}

    def test_check_flags_orderings_outside_the_static_graph(self):
        witness = LockWitness()
        witness.on_acquire("A", 1)
        witness.on_acquire("B", 2)
        assert witness.check({("A", "B")}, ContractRegistry()) == []
        problems = witness.check(set(), ContractRegistry())
        assert len(problems) == 1
        assert "A -> B" in problems[0]

    def test_family_self_edge_needs_a_declared_self_order(self):
        witness = LockWitness()
        # two *different* members of the same per-user lock family
        witness.on_acquire("C._lock_for()", 1)
        witness.on_acquire("C._lock_for()", 2)

        bare = ContractRegistry()
        bare.declare_lock("C._lock_for()", family=True)
        assert witness.check(set(), bare)  # unordered family: violation

        ordered = ContractRegistry()
        ordered.declare_lock(
            "C._lock_for()", family=True, self_order="sorted user id"
        )
        assert witness.check(set(), ordered) == []

    def test_reset_clears_observations(self):
        witness = LockWitness()
        witness.on_acquire("A", 1)
        witness.on_acquire("B", 2)
        witness.reset()
        assert witness.edges == {} and witness.acquisitions == 0


class TestContractLock:
    def test_context_manager_and_locked_probe(self):
        lock = ContractLock("T._lock")
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_reentrant_wraps_an_rlock(self):
        lock = ContractLock("T._lock", reentrant=True)
        with lock:
            with lock:
                # locked() probes by non-blocking acquire, which succeeds
                # reentrantly on this thread — ask another thread instead.
                seen: list[bool] = []
                probe = threading.Thread(
                    target=lambda: seen.append(lock.locked())
                )
                probe.start()
                probe.join()
                assert seen == [True]

    def test_make_lock_is_plain_stdlib_without_the_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_WITNESS", raising=False)
        assert not witness_enabled()
        plain = make_lock("T._lock")
        assert not isinstance(plain, ContractLock)
        with plain:
            pass
        reentrant = make_lock("T._lock", reentrant=True)
        with reentrant:
            with reentrant:
                pass

    def test_make_lock_wraps_under_the_env_gate(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_WITNESS", "1")
        assert witness_enabled()
        lock = make_lock("T._lock")
        assert isinstance(lock, ContractLock)
        monkeypatch.setenv("REPRO_LOCK_WITNESS", "0")
        assert not witness_enabled()

    def test_witnessed_locks_work_across_threads(self, monkeypatch):
        lock = ContractLock("T._lock")
        hits = []

        def work():
            for _ in range(50):
                with lock:
                    hits.append(1)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(hits) == 200
