"""The runtime witness against the static lock graph (TSan-lite).

Under ``REPRO_LOCK_WITNESS=1``, every ``make_lock`` in the stack
returns a :class:`ContractLock` that records acquisition order into the
process-wide witness.  A threaded cache+store workload must observe no
ordering that the static graph does not already contain — the witness
is the empirical check that the declared/extracted graph is complete.
"""

import threading
from pathlib import Path

import pytest

from repro.analysis.contracts import REGISTRY, WITNESS, ContractLock
from repro.analysis.core import Project
from repro.analysis.lock_order import build_lock_graph

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def witnessed(monkeypatch):
    monkeypatch.setenv("REPRO_LOCK_WITNESS", "1")
    WITNESS.reset()
    yield WITNESS
    WITNESS.reset()


def test_threaded_cache_workload_stays_inside_the_static_graph(witnessed):
    # Imports inside the test: lock wrapping happens at *construction*,
    # and construction must happen with the env gate already set.
    from repro.core.reward import ReinforcementPolicy
    from repro.core.sum_store import ColumnarSumStore
    from repro.core.updates import RewardOp
    from repro.streaming.cache import SumCache

    store = ColumnarSumStore()
    for uid in range(8):
        store.get_or_create(uid)
    assert isinstance(store._lock, ContractLock)

    cache = SumCache(store)
    policy = ReinforcementPolicy()
    errors: list[BaseException] = []

    def writer(seed: int) -> None:
        try:
            for i in range(25):
                uids = [(seed + i) % 8, (seed + i + 3) % 8]
                batch = [(u, (RewardOp(("shy",), 0.05),)) for u in uids]
                cache.apply_batch_and_publish(batch, policy)
                cache.mark_batch()
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    def reader() -> None:
        try:
            for i in range(60):
                cache.get(i % 8)
                cache.versions_snapshot()
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(s,)) for s in range(3)]
    threads += [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []

    # The workload must actually have exercised witnessed locks …
    assert witnessed.acquisitions > 0
    # … and observed only orderings the static graph already contains.
    graph = build_lock_graph(Project.load([REPO_ROOT / "src" / "repro"]))
    assert witnessed.check(graph.allowed_edges(), REGISTRY) == []


def test_witness_catches_an_undeclared_inversion(witnessed):
    a = ContractLock("Demo.a")
    b = ContractLock("Demo.b")
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    problems = witnessed.check({("Demo.a", "Demo.b")}, REGISTRY)
    assert len(problems) == 1
    assert "Demo.b -> Demo.a" in problems[0]
