"""``python -m repro.analysis`` exit codes, report artifact, baselines."""

import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def test_violation_corpus_fails(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main([str(FIXTURES / "ld_violations.py")]) == 1
    out = capsys.readouterr().out
    assert "FAIL:" in out and "LD001" in out


def test_whole_fixture_directory_fails(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main([str(FIXTURES), "--no-baseline"]) == 1


def test_clean_fixture_passes(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main([str(FIXTURES / "ld_clean.py")]) == 0
    assert "OK: 1 modules, 0 unwaived findings" in capsys.readouterr().out


def test_missing_path_is_usage_error(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["no/such/path.py"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_invalid_baseline_is_usage_error(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "base.toml"
    bad.write_text('[[waiver]]\nrule = "LD001"\npath = "a.py"\n')
    code = main([str(FIXTURES / "ld_clean.py"), "--baseline", str(bad)])
    assert code == 2
    assert "baseline error" in capsys.readouterr().err


def test_waivers_silence_matched_findings(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    target = FIXTURES / "hy_violations.py"
    baseline = tmp_path / "base.toml"
    rules = ("HY001", "HY002", "HY003")
    baseline.write_text(
        "".join(
            f'[[waiver]]\nrule = "{rule}"\npath = "{target}"\n'
            f'justification = "seeded fixture"\n'
            for rule in rules
        )
    )
    assert main([str(target), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "waived by baseline" in out


def test_stale_waiver_fails_even_on_a_clean_tree(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    baseline = tmp_path / "base.toml"
    baseline.write_text(
        '[[waiver]]\nrule = "LD001"\npath = "gone.py"\n'
        'justification = "left behind after a fix"\n'
    )
    code = main([str(FIXTURES / "ld_clean.py"), "--baseline", str(baseline)])
    assert code == 1
    assert "stale waiver" in capsys.readouterr().out


def test_report_artifact_carries_findings_and_graph(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    report = tmp_path / "report.json"
    code = main(
        [str(FIXTURES / "lo_violations.py"), "--report", str(report)]
    )
    assert code == 1
    payload = json.loads(report.read_text())
    assert payload["summary"]["unwaived"] == payload["summary"]["total"] == 3
    rules = {f["rule"] for f in payload["findings"]}
    assert rules == {"LO001", "LO002"}
    edges = {
        (e["outer"], e["inner"]) for e in payload["lock_graph"]["edges"]
    }
    assert ("Left._lock", "Right._lock") in edges
    assert ("Right._lock", "Left._lock") in edges


def test_graph_flag_prints_edges(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    main([str(FIXTURES / "lo_clean.py"), "--graph"])
    assert "CleanLeft._lock -> CleanRight._lock" in capsys.readouterr().out
