"""Clean twin of ``lo_violations``: one global order, declared reentrancy.

Both classes acquire CleanLeft._lock before CleanRight._lock, so the
graph has a single edge and no cycle; the double acquisition in
``redouble`` is legal because the lock is declared reentrant (the code
uses an RLock to match).
"""

import multiprocessing as mp
import threading

from repro.analysis.contracts import declare_lock, guarded_by

declare_lock("CleanLeft._lock", reentrant=True)
declare_lock("CleanRight._lock")
declare_lock("CleanUpstream._gate")
declare_lock("CleanDownstream._gate")


@guarded_by("_lock", "_items")
class CleanLeft:
    def __init__(self, other: "CleanRight") -> None:
        self._lock = threading.RLock()
        self._items: list[int] = []
        self.other = other

    def push(self, value: int) -> None:
        with self._lock:
            with self.other._lock:
                self._items.append(value)
                self.other._items.append(value)

    def redouble(self) -> None:
        with self._lock:
            with self._lock:
                self._items.clear()


@guarded_by("_lock", "_items")
class CleanRight:
    def __init__(self, other: CleanLeft) -> None:
        self._lock = threading.Lock()
        self._items: list[int] = []
        self.other = other

    def push(self, value: int) -> None:
        # Same global order as CleanLeft.push: left lock first.
        with self.other._lock:
            with self._lock:
                self._items.append(value)


class CleanUpstream:
    """Multiprocessing locks under non-lock-ish names, consistent order."""

    def __init__(self, other: "CleanDownstream") -> None:
        self._gate = mp.Lock()
        self.other = other

    def push(self) -> None:
        with self._gate:
            with self.other._gate:
                pass


class CleanDownstream:
    def __init__(self, other: CleanUpstream) -> None:
        ctx = mp.get_context("fork")
        self._gate = ctx.Lock()
        self.other = other

    def push(self) -> None:
        # Same global order: upstream gate first.
        with self.other._gate:
            with self._gate:
                pass
