# Deliberately-seeded contract violations for the analyzer's own tests.
# These modules are analyzed as source text, never imported (several
# would deadlock or raise if run); names avoid the test_ prefix so
# pytest never collects them.
