"""Clean twin of ``sq_violations``: every legal seqlock reader shape.

The same primitive calls that are violations there are legal here —
inside a retry loop under a reader marking, under the declared writer
lock (raw attribute or public accessor), or as the bounded-spin
fallback that combines both.
"""

import threading
import time

from repro.analysis.contracts import declare_seqlock, seqlock_reader

declare_seqlock(
    "CleanMirrorTable.row_generations",
    protects=("refresh_row", "copy_row"),
    writer_lock="CleanMirrorTable._lock",
)


class CleanMirrorTable:
    def __init__(self, mirror, gens) -> None:
        self._lock = threading.Lock()
        self.mirror = mirror
        self.gens = gens

    @property
    def writer_lock(self):
        return self._lock


class RetryingCapture:
    """The optimistic shape: copy between two equal even generations."""

    def __init__(self, table: CleanMirrorTable) -> None:
        self.table = table

    @seqlock_reader("CleanMirrorTable.row_generations")
    def capture(self, row: int) -> None:
        gens = self.table.gens
        while True:
            before = int(gens[row])
            if before & 1:
                time.sleep(0)
                continue
            self.table.mirror.refresh_row(row)
            if int(gens[row]) == before:
                return
            time.sleep(0)

    @seqlock_reader("CleanMirrorTable.row_generations")
    def capture_bounded(self, row: int) -> None:
        gens = self.table.gens
        for _ in range(512):
            before = int(gens[row])
            if before & 1:
                continue
            self.table.mirror.refresh_row(row)
            if int(gens[row]) == before:
                return
        with self.table.writer_lock:  # starved: exclude writers outright
            self.table.mirror.refresh_row(row)


class LockedCopier:
    """Unmarked callers are fine under the declared writer lock."""

    def __init__(self, table: CleanMirrorTable) -> None:
        self.table = table

    def snapshot(self, row: int) -> None:
        with self.table._lock:
            self.table.mirror.copy_row(row)

    def snapshot_all(self, rows) -> None:
        with self.table.writer_lock:
            for row in rows:
                self.table.mirror.refresh_row(row)
