"""Seeded snapshot-immutability violations: SN001, SN002."""


class SnapshotAbuser:
    def __init__(self, store) -> None:
        self.store = store

    def poke(self, user_id: int) -> None:
        view = self.store.freeze_view(user_id)
        view.sensibility["music"] = 2.0  # [SN001]
        view.asked_questions.add("q17")  # [SN001]

    def stamp(self, batch: "FrozenSumBatch") -> None:
        batch.versions[7] = 99  # [SN001]

    def thaw(self, arr) -> None:
        arr.setflags(write=True)  # [SN002]
        arr.flags.writeable = True  # [SN002]
