"""Seeded lock-ordering violations: LO001 (cycle), LO002 (self-reacquire).

``Left.push`` nests Left->Right while ``Right.push`` nests Right->Left:
a classic ABBA deadlock the graph cycle check must catch.  The LO001
finding anchors on the first edge of the sorted cycle (Left->Right).
"""

import multiprocessing as mp
import threading

from repro.analysis.contracts import guarded_by


@guarded_by("_lock", "_items")
class Left:
    def __init__(self, other: "Right") -> None:
        self._lock = threading.Lock()
        self._items: list[int] = []
        self.other = other

    def push(self, value: int) -> None:
        with self._lock:
            with self.other._lock:  # [LO001]
                self._items.append(value)
                self.other._items.append(value)

    def double_down(self) -> None:
        with self._lock:
            with self._lock:  # [LO002]
                self._items.clear()


@guarded_by("_lock", "_items")
class Right:
    def __init__(self, other: Left) -> None:
        self._lock = threading.Lock()
        self._items: list[int] = []
        self.other = other

    def push(self, value: int) -> None:
        with self._lock:
            with self.other._lock:
                self.other._items.append(value)


class Upstream:
    """ABBA again — but the locks are multiprocessing primitives under
    non-lock-ish names, so only the sync-factory typing sees them."""

    def __init__(self, other: "Downstream") -> None:
        self._gate = mp.Lock()
        self.other = other

    def push(self) -> None:
        with self._gate:
            with self.other._gate:
                pass


class Downstream:
    def __init__(self, other: Upstream) -> None:
        ctx = mp.get_context("fork")
        self._gate = ctx.Lock()
        self.other = other

    def push(self) -> None:
        with self._gate:
            with self.other._gate:  # [LO001]
                pass
