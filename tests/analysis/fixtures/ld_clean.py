"""Clean twin of ``ld_violations``: identical writes, all under the lock."""

import threading

from repro.analysis.contracts import guarded_by, manual_guard, requires_lock


@guarded_by("_lock", "_counts", "_total")
class TidyCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._total = 0

    def bump(self, key: str) -> None:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
            self._total += 1

    def forget(self, key: str) -> None:
        with self._lock:
            self._counts.pop(key, None)

    @requires_lock("_lock")
    def _rebalance(self) -> None:
        self._total = sum(self._counts.values())

    def rebalance(self) -> None:
        with self._lock:
            self._rebalance()

    @manual_guard("acquires per-key locks in sorted order inside a loop")
    def sneak(self) -> int:
        return -1

    def snapshot(self) -> dict[str, int]:
        # Reads of guarded state are not writes; no lock required by LD001.
        return dict(self._counts)
