"""Seeded lock-discipline violations: LD001, LD002, LD003.

Each offending line carries a ``# [RULE]`` marker; the analyzer tests
assert the finding set equals the marker set exactly.
"""

import threading

from repro.analysis.contracts import guarded_by, manual_guard, requires_lock


@guarded_by("_lock", "_counts", "_total")
class LeakyCounter:
    """Guards declared, then ignored: every write below dodges the lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._total = 0

    def bump(self, key: str) -> None:
        self._counts[key] = self._counts.get(key, 0) + 1  # [LD001]
        self._total += 1  # [LD001]

    def forget(self, key: str) -> None:
        self._counts.pop(key, None)  # [LD001]

    @requires_lock("_lock")
    def _rebalance(self) -> None:
        self._total = sum(self._counts.values())

    def rebalance(self) -> None:
        self._rebalance()  # [LD002]

    @manual_guard("   ")
    def sneak(self) -> int:  # [LD003]
        return -1
