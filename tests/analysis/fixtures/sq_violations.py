"""Seeded seqlock-discipline violations: SQ001, SQ002.

Each offending line carries a ``# [RULE]`` marker; the analyzer tests
assert the finding set equals the marker set exactly.
"""

import threading

from repro.analysis.contracts import declare_seqlock, seqlock_reader

declare_seqlock(
    "MirrorTable.row_generations",
    protects=("refresh_row", "copy_row"),
    writer_lock="MirrorTable._lock",
)


class MirrorTable:
    def __init__(self, mirror) -> None:
        self._lock = threading.Lock()
        self.mirror = mirror


class TornCapture:
    """Claims the reader protocol, then copies without any retry loop."""

    def __init__(self, table: MirrorTable) -> None:
        self.table = table

    @seqlock_reader("MirrorTable.row_generations")
    def capture(self, row: int) -> None:
        self.table.mirror.refresh_row(row)  # [SQ001]

    @seqlock_reader("MirrorTable.row_generations")
    def capture_many(self, rows) -> None:
        copied = [r for r in rows]
        for row in copied:
            self.table.mirror.refresh_row(row)
        self.table.mirror.copy_row(copied[-1])  # [SQ001]


class UnmarkedCopier:
    """No reader marking, no writer lock: a silent torn-read source."""

    def __init__(self, table: MirrorTable) -> None:
        self.table = table

    def snapshot(self, row: int) -> None:
        self.table.mirror.copy_row(row)  # [SQ002]

    def snapshot_all(self, rows) -> None:
        for row in rows:  # loops don't legitimize an unmarked caller
            self.table.mirror.refresh_row(row)  # [SQ002]
