"""Clean twin of ``hy_violations``: reads, narrow excepts, safe defaults."""


class ShardReader:
    def __init__(self, store) -> None:
        self.store = store

    def peek(self, index):
        # Reading the shard plane is fine; only mutation is fenced.
        return self.store.shards[index]

    def shard_count(self) -> int:
        try:
            return len(self.store.shards)
        except Exception:
            return 0


def collect(values, into=None):
    if into is None:
        into = []
    into.extend(values)
    return into
