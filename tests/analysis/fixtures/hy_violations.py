"""Seeded serving-path hygiene violations: HY001, HY002, HY003."""


class ShardPoker:
    def __init__(self, store) -> None:
        self.store = store

    def hot_swap(self, replacement) -> None:
        self.store.shards[0] = replacement  # [HY001]

    def grow(self, extra) -> None:
        self.store.shards.append(extra)  # [HY001]

    def shard_count(self) -> int:
        try:
            return len(self.store.shards)
        except:  # [HY002]
            return 0


def collect(values, into=[]):  # [HY003]
    into.extend(values)
    return into
