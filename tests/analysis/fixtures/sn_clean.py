"""Clean twin of ``sn_violations``: frozen reads, live writes, sealing.

Mutating a *live* row view (``get_or_create``) with the exact statement
shapes that are violations on a frozen one must not be flagged, and
turning writability *off* is the sealing direction — always legal.
"""


class SnapshotReader:
    def __init__(self, store) -> None:
        self.store = store

    def peek(self, user_id: int) -> float:
        view = self.store.freeze_view(user_id)
        return float(view.sensibility.get("music", 0.0))

    def poke_live(self, user_id: int) -> None:
        live = self.store.get_or_create(user_id)
        live.sensibility["music"] = 2.0
        live.asked_questions.add("q17")

    def seal(self, arr) -> None:
        arr.setflags(write=False)
        arr.flags.writeable = False
