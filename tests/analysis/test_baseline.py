"""The baseline ratchet: waiver matching, required justifications, staleness."""

import pytest

from repro.analysis.baseline import (
    BaselineError,
    Waiver,
    apply_baseline,
    load_baseline,
)
from repro.analysis.core import Finding


def finding(rule="LD001", path="src/repro/core/sum_store.py", line=10,
            symbol="Store.put", snippet="self._rows[k] = v"):
    return Finding(rule=rule, path=path, line=line, message="m",
                   symbol=symbol, snippet=snippet)


class TestWaiverMatching:
    def test_rule_and_path_must_match(self):
        w = Waiver(rule="LD001", path="a.py", justification="j")
        assert w.matches(finding(rule="LD001", path="a.py"))
        assert not w.matches(finding(rule="LD002", path="a.py"))
        assert not w.matches(finding(rule="LD001", path="b.py"))

    def test_optional_symbol_narrows(self):
        w = Waiver(rule="LD001", path="a.py", justification="j",
                   symbol="Store.put")
        assert w.matches(finding(path="a.py", symbol="Store.put"))
        assert not w.matches(finding(path="a.py", symbol="Store.get"))

    def test_optional_contains_narrows_on_the_snippet(self):
        w = Waiver(rule="LD001", path="a.py", justification="j",
                   contains="setdefault")
        assert w.matches(finding(path="a.py", snippet="x.setdefault(k, v)"))
        assert not w.matches(finding(path="a.py", snippet="x[k] = v"))


class TestLoadBaseline:
    def test_round_trip(self, tmp_path):
        p = tmp_path / "base.toml"
        p.write_text(
            '[[waiver]]\n'
            'rule = "LD001"\n'
            'path = "a.py"\n'
            'symbol = "S.put"\n'
            'contains = "setdefault"\n'
            'justification = "GIL-atomic"\n'
        )
        (w,) = load_baseline(p)
        assert w == Waiver(rule="LD001", path="a.py", symbol="S.put",
                           contains="setdefault", justification="GIL-atomic")

    def test_justification_is_mandatory(self, tmp_path):
        p = tmp_path / "base.toml"
        p.write_text('[[waiver]]\nrule = "LD001"\npath = "a.py"\n')
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(p)

    def test_rule_and_path_are_mandatory(self, tmp_path):
        p = tmp_path / "base.toml"
        p.write_text('[[waiver]]\nrule = "LD001"\njustification = "j"\n')
        with pytest.raises(BaselineError, match="rule"):
            load_baseline(p)

    def test_unreadable_or_invalid_toml(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(tmp_path / "missing.toml")
        bad = tmp_path / "bad.toml"
        bad.write_text("[[waiver\n")
        with pytest.raises(BaselineError):
            load_baseline(bad)


class TestApplyBaseline:
    def test_partitions_waived_unwaived_and_stale(self):
        f1 = finding(rule="LD001", path="a.py")
        f2 = finding(rule="HY002", path="b.py")
        w_hit = Waiver(rule="LD001", path="a.py", justification="j")
        w_stale = Waiver(rule="SN001", path="c.py", justification="j")
        result = apply_baseline([f1, f2], [w_hit, w_stale])
        assert result.unwaived == [f2]
        assert result.waived == [(f1, w_hit)]
        assert result.stale == [w_stale]

    def test_first_matching_waiver_wins_but_both_count_used(self):
        f1 = finding()
        f2 = finding(line=20)
        broad = Waiver(rule="LD001", path=f1.path, justification="j")
        narrow = Waiver(rule="LD001", path=f1.path, symbol=f1.symbol,
                        justification="j")
        result = apply_baseline([f1, f2], [broad, narrow])
        assert result.unwaived == []
        assert [w for _, w in result.waived] == [broad, broad]
        assert result.stale == [narrow]

    def test_no_waivers_leaves_everything_unwaived(self):
        f1 = finding()
        result = apply_baseline([f1], [])
        assert result.unwaived == [f1]
        assert result.waived == [] and result.stale == []
