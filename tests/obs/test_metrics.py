"""The metrics core: instruments, registry, snapshots, quantiles."""

import math
import threading

import pytest

from repro.analysis.contracts import contracts_of
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labelled,
    quantile_from_buckets,
    resolve_registry,
    split_labels,
)


class TestNames:
    def test_labelled_sorts_keys(self):
        assert labelled("bus.depth", topic="lifelog") == 'bus.depth{topic="lifelog"}'
        assert (
            labelled("x", b="2", a="1")
            == labelled("x", a="1", b="2")
            == 'x{a="1",b="2"}'
        )

    def test_labelled_without_labels_is_identity(self):
        assert labelled("plain") == "plain"

    def test_split_labels_inverts_labelled(self):
        name = labelled("bus.depth", topic="lifelog", partition="3")
        base, body = split_labels(name)
        assert base == "bus.depth"
        assert body == 'partition="3",topic="lifelog"'
        assert split_labels("plain") == ("plain", "")


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_threaded_increments_never_lose_updates(self):
        c = Counter("c")

        def hammer():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_and_snapshot(self):
        g = Gauge("g")
        g.set(4.25)
        assert g.snapshot().value == 4.25

    def test_callback_gauge_reads_source_at_snapshot(self):
        level = {"v": 1.0}
        g = Gauge("g", fn=lambda: level["v"])
        assert g.value == 1.0
        level["v"] = 9.0
        assert g.snapshot().value == 9.0

    def test_callback_gauge_rejects_set(self):
        with pytest.raises(TypeError, match="callback-backed"):
            Gauge("g", fn=lambda: 0.0).set(1.0)


class TestHistogram:
    def test_bucket_sums_equal_observation_count(self):
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            h.observe(value)
        snap = h.snapshot()
        assert sum(snap.counts) == snap.count == 4
        assert snap.counts == (1, 1, 1, 1)  # one overflow observation
        assert snap.min == 0.5 and snap.max == 100.0
        assert snap.sum == pytest.approx(105.0)

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="at least one bound"):
            Histogram("h", bounds=())

    def test_empty_histogram_quantiles_are_nan(self):
        snap = Histogram("h").snapshot()
        assert snap.count == 0
        assert math.isnan(snap.quantile(0.99))
        assert math.isnan(snap.mean)

    def test_quantiles_track_a_uniform_stream(self):
        h = Histogram("h", bounds=LATENCY_BUCKETS_S)
        n = 20_000
        for i in range(n):
            h.observe((i + 0.5) / n * 0.2)  # uniform on (0, 0.2)
        snap = h.snapshot()
        assert snap.quantile(0.5) == pytest.approx(0.10, rel=0.15)
        assert snap.quantile(0.99) == pytest.approx(0.198, rel=0.15)
        # quantile floors/ceilings clamp to the observed extremes
        assert snap.quantile(0.0) >= snap.min
        assert snap.quantile(1.0) <= snap.max

    def test_percentiles_returns_the_slo_curve(self):
        h = Histogram("h")
        h.observe(0.003)
        curve = h.snapshot().percentiles()
        assert set(curve) == {"p50", "p90", "p99", "p999"}

    def test_threaded_observers_never_lose_observations(self):
        h = Histogram("h", bounds=(0.25, 0.5, 0.75))

        def hammer(offset):
            for i in range(5_000):
                h.observe(((i + offset) % 100) / 100.0)

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = h.snapshot()
        assert snap.count == 30_000
        assert sum(snap.counts) == 30_000

    def test_concurrent_snapshots_see_consistent_instrument_state(self):
        """A snapshot taken mid-stream has count == sum(counts) always."""
        h = Histogram("h", bounds=(0.5,))
        stop = threading.Event()
        bad: list[tuple] = []

        def writer():
            while not stop.is_set():
                h.observe(0.25)
                h.observe(0.75)

        def reader():
            for _ in range(300):
                snap = h.snapshot()
                if sum(snap.counts) != snap.count:
                    bad.append((snap.counts, snap.count))

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start()
        r.start()
        r.join()
        stop.set()
        w.join()
        assert not bad


class TestQuantileFromBuckets:
    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError, match="quantile"):
            quantile_from_buckets((1.0,), (1, 0), 1.5, 0.0, 1.0)

    def test_single_bucket_interpolates_between_min_and_max(self):
        value = quantile_from_buckets((10.0,), (4, 0), 0.5, 2.0, 8.0)
        assert 2.0 <= value <= 8.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already exists"):
            reg.gauge("a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="needs a name"):
            MetricsRegistry().counter("")

    def test_snapshot_covers_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.01)
        snap = reg.snapshot()
        assert len(snap) == 3
        assert snap.value("c") == 2.0
        assert snap.value("g") == 1.5
        assert snap.histogram("h").count == 1
        assert math.isnan(snap.value("missing"))
        with pytest.raises(KeyError):
            snap.histogram("c")

    def test_snapshots_are_independent_of_later_updates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        before = reg.snapshot()
        reg.counter("c").inc(41)
        assert before.value("c") == 1.0
        assert reg.snapshot().value("c") == 42.0

    def test_threaded_get_or_create_yields_one_instrument(self):
        reg = MetricsRegistry()
        seen = []

        def race():
            seen.append(reg.counter("shared"))

        threads = [threading.Thread(target=race) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(c) for c in seen}) == 1

    def test_declared_concurrency_contracts_are_present(self):
        # the analyzer gate relies on these declarations existing
        for cls in (Counter, Gauge, Histogram, MetricsRegistry):
            specs = contracts_of(cls)
            assert specs, f"{cls.__name__} lost its @guarded_by contract"
            assert any(spec["lock"] == "_lock" for spec in specs)


class TestNullFacade:
    def test_resolve_registry_defaults_to_null(self):
        assert resolve_registry(None) is NULL_REGISTRY
        reg = MetricsRegistry()
        assert resolve_registry(reg) is reg

    def test_null_registry_hands_out_shared_noops(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.counter("x") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("x") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("x") is NULL_HISTOGRAM
        NULL_COUNTER.inc()
        NULL_GAUGE.set(3.0)
        NULL_HISTOGRAM.observe(1.0)
        assert len(NULL_REGISTRY.snapshot()) == 0
        assert NULL_REGISTRY.names() == []

    def test_null_instrument_call_overhead_is_negligible(self):
        """One null observe() must cost well under a microsecond.

        The streaming worker touches a handful of instruments per event;
        the bench asserts the aggregate stays <2% of per-event processing
        — this unit guard catches a regression (e.g. the null methods
        growing logic) without needing the full bench.
        """
        from time import perf_counter

        n = 200_000
        observe = NULL_HISTOGRAM.observe
        start = perf_counter()
        for _ in range(n):
            observe(0.5)
        per_call = (perf_counter() - start) / n
        # generous ceiling: an empty C-level method call is ~50-100ns
        assert per_call < 2e-6
