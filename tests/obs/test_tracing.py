"""Span retention, trace ids, and the null tracer facade."""

import threading

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    next_trace_id,
    resolve_tracer,
)


class TestTraceIds:
    def test_ids_are_unique_and_monotonic(self):
        first = next_trace_id()
        second = next_trace_id()
        assert second == first + 1

    def test_ids_are_unique_across_threads(self):
        minted: list[int] = []
        lock = threading.Lock()

        def mint():
            ids = [next_trace_id() for _ in range(2_000)]
            with lock:
                minted.extend(ids)

        threads = [threading.Thread(target=mint) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(minted)) == len(minted) == 16_000


class TestSpan:
    def test_duration(self):
        assert Span(1, "s", 2.0, 3.5).duration == 1.5


class TestTracer:
    def test_add_and_read_back_in_order(self):
        tracer = Tracer()
        tracer.add(7, "bus.queue", 0.0, 1.0)
        tracer.add(7, "worker.map", 1.0, 1.5)
        spans = tracer.trace(7)
        assert [s.name for s in spans] == ["bus.queue", "worker.map"]
        assert tracer.trace(999) == ()

    def test_breakdown_sums_per_stage(self):
        tracer = Tracer()
        tracer.add(1, "a", 0.0, 1.0)
        tracer.add(1, "a", 2.0, 2.5)
        tracer.add(1, "b", 1.0, 2.0)
        assert tracer.breakdown(1) == pytest.approx({"a": 1.5, "b": 1.0})

    def test_lru_retention_drops_oldest_whole_traces(self):
        tracer = Tracer(max_traces=3)
        for tid in range(1, 6):
            tracer.add(tid, "stage", 0.0, 1.0)
        assert len(tracer) == 3
        assert sorted(tracer.traces()) == [3, 4, 5]
        # touching an existing trace does not re-evict anything
        tracer.add(3, "late", 1.0, 2.0)
        assert sorted(tracer.traces()) == [3, 4, 5]
        assert [s.name for s in tracer.trace(3)] == ["stage", "late"]

    def test_max_traces_must_be_positive(self):
        with pytest.raises(ValueError, match="max_traces"):
            Tracer(max_traces=0)

    def test_threaded_adds_keep_spans_with_their_trace(self):
        tracer = Tracer(max_traces=64)

        def hammer(tid):
            for i in range(500):
                tracer.add(tid, f"stage{i % 4}", float(i), float(i + 1))

        threads = [threading.Thread(target=hammer, args=(tid,)) for tid in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        traces = tracer.traces()
        assert len(traces) == 8
        for tid, spans in traces.items():
            assert len(spans) == 500
            assert all(s.trace_id == tid for s in spans)


class TestNullTracer:
    def test_resolve_tracer_defaults_to_null(self):
        assert resolve_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer

    def test_null_tracer_retains_nothing(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.add(1, "s", 0.0, 1.0)
        assert NULL_TRACER.trace(1) == ()
        assert NULL_TRACER.traces() == {}
        assert NULL_TRACER.breakdown(1) == {}
        assert len(NULL_TRACER) == 0
