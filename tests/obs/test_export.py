"""Exporters: JSONL roundtrip, offline quantiles, Prometheus text, CLI."""

import json
import math

import pytest

from repro.obs.export import (
    SnapshotWriter,
    histogram_quantile,
    merge_metrics,
    read_jsonl,
    snapshot_record,
    to_prometheus,
    write_jsonl,
)
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry, labelled
from repro.obs.__main__ import main


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("streaming.applied_events").inc(40)
    reg.gauge(labelled("bus.depth", topic="lifelog")).set(3.0)
    hist = reg.histogram(
        "streaming.update_visible_seconds", bounds=LATENCY_BUCKETS_S
    )
    for i in range(1_000):
        hist.observe((i + 0.5) / 1_000 * 0.05)  # uniform on (0, 0.05)
    return reg


class TestJsonl:
    def test_write_read_roundtrip(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "snapshots.jsonl"
        write_jsonl(path, reg.snapshot(), phase="warmup")
        write_jsonl(path, reg.snapshot(), phase="steady")
        records = read_jsonl(path)
        assert [r["phase"] for r in records] == ["warmup", "steady"]
        for record in records:
            assert record["ts"] > 0
            metrics = record["metrics"]
            assert metrics["streaming.applied_events"]["value"] == 40.0
            assert metrics['bus.depth{topic="lifelog"}']["value"] == 3.0
            hist = metrics["streaming.update_visible_seconds"]
            assert hist["type"] == "histogram"
            assert sum(hist["counts"]) == hist["count"] == 1_000

    def test_records_are_valid_single_line_json(self, tmp_path):
        path = tmp_path / "one.jsonl"
        write_jsonl(path, populated_registry().snapshot())
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["metrics"]

    def test_snapshot_record_carries_extra_fields(self):
        record = snapshot_record(populated_registry().snapshot(), run="r1")
        assert record["run"] == "r1"
        assert "streaming.applied_events" in record["metrics"]


class TestHistogramQuantile:
    def test_matches_the_live_snapshot_quantile(self, tmp_path):
        """CI's offline p99 must equal the bench's in-process p99."""
        reg = populated_registry()
        live = reg.snapshot()
        record = snapshot_record(live)
        metrics = json.loads(json.dumps(record, sort_keys=True))["metrics"]
        for q in (0.5, 0.9, 0.99, 0.999):
            offline = histogram_quantile(
                metrics, "streaming.update_visible_seconds", q
            )
            assert offline == pytest.approx(
                live.histogram("streaming.update_visible_seconds").quantile(q)
            )

    def test_unknown_or_non_histogram_name_raises(self):
        metrics = snapshot_record(populated_registry().snapshot())["metrics"]
        with pytest.raises(KeyError):
            histogram_quantile(metrics, "missing", 0.99)
        with pytest.raises(KeyError):
            histogram_quantile(metrics, "streaming.applied_events", 0.99)

    def test_empty_histogram_serializes_to_nan_quantile(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        metrics = snapshot_record(reg.snapshot())["metrics"]
        assert math.isnan(histogram_quantile(metrics, "h", 0.99))


class TestSnapshotWriter:
    def test_write_appends_one_record(self, tmp_path):
        reg = populated_registry()
        writer = SnapshotWriter(
            reg, tmp_path / "w.jsonl", extra=lambda: {"phase": "bench"}
        )
        writer.write()
        writer.write()
        records = read_jsonl(tmp_path / "w.jsonl")
        assert len(records) == 2
        assert all(r["phase"] == "bench" for r in records)

    def test_start_requires_interval(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            SnapshotWriter(MetricsRegistry(), tmp_path / "w.jsonl").start()

    def test_context_manager_writes_final_snapshot(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "ctx.jsonl"
        with SnapshotWriter(reg, path, interval=60.0):
            pass  # stop() on exit performs the final write
        assert len(read_jsonl(path)) >= 1

    def test_stop_without_final_write(self, tmp_path):
        path = tmp_path / "nofinal.jsonl"
        writer = SnapshotWriter(populated_registry(), path, interval=60.0)
        writer.start()
        writer.stop(final_write=False)
        assert not path.exists()


class TestPrometheus:
    def test_counters_and_gauges_render_with_labels(self):
        text = to_prometheus(populated_registry().snapshot())
        assert "# TYPE streaming_applied_events counter" in text
        assert "streaming_applied_events 40" in text
        assert "# TYPE bus_depth gauge" in text
        assert 'bus_depth{topic="lifelog"} 3' in text

    def test_histogram_renders_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            labelled("stage.seconds", stage="score"), bounds=(0.1, 0.2)
        )
        for value in (0.05, 0.15, 0.15, 5.0):
            h.observe(value)
        text = to_prometheus(reg.snapshot())
        assert "# TYPE stage_seconds histogram" in text
        assert 'stage_seconds_bucket{stage="score",le="0.1"} 1' in text
        assert 'stage_seconds_bucket{stage="score",le="0.2"} 3' in text
        assert 'stage_seconds_bucket{stage="score",le="+Inf"} 4' in text
        assert 'stage_seconds_sum{stage="score"} 5.35' in text
        assert 'stage_seconds_count{stage="score"} 4' in text

    def test_accepts_deserialized_jsonl_metrics(self, tmp_path):
        path = tmp_path / "p.jsonl"
        write_jsonl(path, populated_registry().snapshot())
        record = read_jsonl(path)[0]
        text = to_prometheus(record["metrics"])
        assert "streaming_applied_events 40" in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == ""


def worker_registry(shard: int, events: int) -> MetricsRegistry:
    """One shard worker's registry, as exported over the control channel."""
    reg = MetricsRegistry()
    reg.counter("streaming.applied_events").inc(events)
    reg.gauge(labelled("bus.depth", topic="lifelog")).set(float(shard))
    hist = reg.histogram(
        "streaming.update_visible_seconds", bounds=LATENCY_BUCKETS_S
    )
    for i in range(events):
        hist.observe((i + 0.5) / events * 0.05)
    return reg


class TestMergeMetrics:
    def test_counters_add_across_workers(self):
        merged = merge_metrics(
            worker_registry(s, 100).snapshot().as_dict() for s in range(4)
        )
        assert merged["streaming.applied_events"]["value"] == 400.0

    def test_histograms_add_bucketwise_and_combine_extremes(self):
        snaps = [
            worker_registry(s, 250).snapshot().as_dict() for s in range(4)
        ]
        merged = merge_metrics(snaps)
        hist = merged["streaming.update_visible_seconds"]
        assert hist["count"] == sum(
            s["streaming.update_visible_seconds"]["count"] for s in snaps
        )
        assert hist["counts"] == [
            sum(s["streaming.update_visible_seconds"]["counts"][i]
                for s in snaps)
            for i in range(len(hist["counts"]))
        ]
        assert hist["sum"] == pytest.approx(
            sum(s["streaming.update_visible_seconds"]["sum"] for s in snaps)
        )
        assert hist["min"] == min(
            s["streaming.update_visible_seconds"]["min"] for s in snaps
        )
        assert hist["max"] == max(
            s["streaming.update_visible_seconds"]["max"] for s in snaps
        )
        # the merged dict renders like any single-process snapshot
        assert histogram_quantile(
            merged, "streaming.update_visible_seconds", 0.5
        ) == pytest.approx(0.025, rel=0.25)
        assert "streaming_update_visible_seconds_count" in to_prometheus(
            merged
        )

    def test_gauges_are_last_wins_not_summed(self):
        merged = merge_metrics(
            worker_registry(s, 10).snapshot().as_dict() for s in (1, 2, 7)
        )
        assert merged['bus.depth{topic="lifelog"}']["value"] == 7.0

    def test_empty_histogram_merges_as_identity(self):
        reg = MetricsRegistry()
        reg.histogram(
            "streaming.update_visible_seconds", bounds=LATENCY_BUCKETS_S
        )
        loaded = worker_registry(0, 50).snapshot().as_dict()
        merged = merge_metrics([reg.snapshot().as_dict(), loaded])
        assert (
            merged["streaming.update_visible_seconds"]
            == loaded["streaming.update_visible_seconds"]
        )

    def test_merge_does_not_mutate_inputs(self):
        first = worker_registry(0, 10).snapshot().as_dict()
        frozen = json.loads(json.dumps(first))
        merge_metrics([first, worker_registry(1, 10).snapshot().as_dict()])
        assert first == frozen

    def test_type_and_bounds_mismatches_raise(self):
        with pytest.raises(ValueError, match="type"):
            merge_metrics(
                [
                    {"m": {"type": "counter", "value": 1.0}},
                    {"m": {"type": "gauge", "value": 1.0}},
                ]
            )
        a = MetricsRegistry()
        a.histogram("h", bounds=(0.1, 0.2))
        b = MetricsRegistry()
        b.histogram("h", bounds=(0.5, 1.0))
        with pytest.raises(ValueError, match="bounds"):
            merge_metrics([a.snapshot().as_dict(), b.snapshot().as_dict()])


class TestCli:
    def test_prometheus_output_and_quantile(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        write_jsonl(path, populated_registry().snapshot())
        code = main(
            [
                str(path),
                "--quantile",
                "streaming.update_visible_seconds=0.99",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# TYPE streaming_update_visible_seconds histogram" in captured.out
        assert "quantile streaming.update_visible_seconds q=0.99" in captured.out

    def test_json_format_and_line_selection(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        reg = populated_registry()
        write_jsonl(path, reg.snapshot(), phase="first")
        write_jsonl(path, reg.snapshot(), phase="second")
        assert main([str(path), "--line", "0", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["phase"] == "first"

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_empty_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 2
        assert "no snapshot records" in capsys.readouterr().err

    def test_out_of_range_line_exits_2(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        write_jsonl(path, populated_registry().snapshot())
        assert main([str(path), "--line", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_unknown_quantile_histogram_exits_2(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        write_jsonl(path, populated_registry().snapshot())
        assert main([str(path), "--quantile", "absent=0.99"]) == 2

    def test_merge_folds_worker_lines_into_one_view(self, tmp_path, capsys):
        path = tmp_path / "workers.jsonl"
        for shard in range(4):
            write_jsonl(path, worker_registry(shard, 100).snapshot(),
                        shard=shard)
        assert main([str(path), "--merge"]) == 0
        assert "streaming_applied_events 400" in capsys.readouterr().out

    def test_merge_accepts_multiple_files(self, tmp_path, capsys):
        paths = []
        for shard in range(2):
            path = tmp_path / f"worker-{shard}.jsonl"
            write_jsonl(path, worker_registry(shard, 50).snapshot())
            paths.append(str(path))
        assert main([*paths, "--merge", "--format", "json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["merged_from"] == 2
        assert record["metrics"]["streaming.applied_events"]["value"] == 100.0

    def test_control_plane_instruments_surface_and_merge(self, tmp_path, capsys):
        """Shed / deadline / batch-size counters render like any metric.

        The renderer is name-agnostic, so the tail-latency control
        plane's instruments reach operators with no exporter changes —
        this pins that contract, per class and per stage."""

        def shedding_registry(shard: int) -> MetricsRegistry:
            reg = MetricsRegistry()
            reg.counter(labelled(
                "bus.shed", op_class="background", reason="capacity",
                topic="lifelog",
            )).inc(3)
            reg.counter(labelled(
                "bus.shed", op_class="background", reason="expired",
                topic="lifelog",
            )).inc(2)
            reg.counter("streaming.expired_dropped").inc(5)
            reg.counter(labelled(
                "serving.deadline_exceeded", stage="resolve"
            )).inc(1)
            hist = reg.histogram("streaming.batch_size", bounds=(8, 64, 512))
            hist.observe(16 + shard)
            return reg

        path = tmp_path / "plane.jsonl"
        for shard in range(2):
            write_jsonl(path, shedding_registry(shard).snapshot(), shard=shard)
        assert main([str(path), "--merge"]) == 0
        out = capsys.readouterr().out
        assert (
            'bus_shed{op_class="background",reason="capacity",'
            'topic="lifelog"} 6' in out
        )
        assert (
            'bus_shed{op_class="background",reason="expired",'
            'topic="lifelog"} 4' in out
        )
        assert "streaming_expired_dropped 10" in out
        assert 'serving_deadline_exceeded{stage="resolve"} 2' in out
        assert "# TYPE streaming_batch_size histogram" in out

    def test_multiple_files_without_merge_exit_2(self, tmp_path, capsys):
        paths = []
        for i in range(2):
            path = tmp_path / f"f{i}.jsonl"
            write_jsonl(path, populated_registry().snapshot())
            paths.append(str(path))
        assert main(paths) == 2
        assert "--merge" in capsys.readouterr().err
