"""Exporters: JSONL roundtrip, offline quantiles, Prometheus text, CLI."""

import json
import math

import pytest

from repro.obs.export import (
    SnapshotWriter,
    histogram_quantile,
    read_jsonl,
    snapshot_record,
    to_prometheus,
    write_jsonl,
)
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry, labelled
from repro.obs.__main__ import main


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("streaming.applied_events").inc(40)
    reg.gauge(labelled("bus.depth", topic="lifelog")).set(3.0)
    hist = reg.histogram(
        "streaming.update_visible_seconds", bounds=LATENCY_BUCKETS_S
    )
    for i in range(1_000):
        hist.observe((i + 0.5) / 1_000 * 0.05)  # uniform on (0, 0.05)
    return reg


class TestJsonl:
    def test_write_read_roundtrip(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "snapshots.jsonl"
        write_jsonl(path, reg.snapshot(), phase="warmup")
        write_jsonl(path, reg.snapshot(), phase="steady")
        records = read_jsonl(path)
        assert [r["phase"] for r in records] == ["warmup", "steady"]
        for record in records:
            assert record["ts"] > 0
            metrics = record["metrics"]
            assert metrics["streaming.applied_events"]["value"] == 40.0
            assert metrics['bus.depth{topic="lifelog"}']["value"] == 3.0
            hist = metrics["streaming.update_visible_seconds"]
            assert hist["type"] == "histogram"
            assert sum(hist["counts"]) == hist["count"] == 1_000

    def test_records_are_valid_single_line_json(self, tmp_path):
        path = tmp_path / "one.jsonl"
        write_jsonl(path, populated_registry().snapshot())
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["metrics"]

    def test_snapshot_record_carries_extra_fields(self):
        record = snapshot_record(populated_registry().snapshot(), run="r1")
        assert record["run"] == "r1"
        assert "streaming.applied_events" in record["metrics"]


class TestHistogramQuantile:
    def test_matches_the_live_snapshot_quantile(self, tmp_path):
        """CI's offline p99 must equal the bench's in-process p99."""
        reg = populated_registry()
        live = reg.snapshot()
        record = snapshot_record(live)
        metrics = json.loads(json.dumps(record, sort_keys=True))["metrics"]
        for q in (0.5, 0.9, 0.99, 0.999):
            offline = histogram_quantile(
                metrics, "streaming.update_visible_seconds", q
            )
            assert offline == pytest.approx(
                live.histogram("streaming.update_visible_seconds").quantile(q)
            )

    def test_unknown_or_non_histogram_name_raises(self):
        metrics = snapshot_record(populated_registry().snapshot())["metrics"]
        with pytest.raises(KeyError):
            histogram_quantile(metrics, "missing", 0.99)
        with pytest.raises(KeyError):
            histogram_quantile(metrics, "streaming.applied_events", 0.99)

    def test_empty_histogram_serializes_to_nan_quantile(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        metrics = snapshot_record(reg.snapshot())["metrics"]
        assert math.isnan(histogram_quantile(metrics, "h", 0.99))


class TestSnapshotWriter:
    def test_write_appends_one_record(self, tmp_path):
        reg = populated_registry()
        writer = SnapshotWriter(
            reg, tmp_path / "w.jsonl", extra=lambda: {"phase": "bench"}
        )
        writer.write()
        writer.write()
        records = read_jsonl(tmp_path / "w.jsonl")
        assert len(records) == 2
        assert all(r["phase"] == "bench" for r in records)

    def test_start_requires_interval(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            SnapshotWriter(MetricsRegistry(), tmp_path / "w.jsonl").start()

    def test_context_manager_writes_final_snapshot(self, tmp_path):
        reg = populated_registry()
        path = tmp_path / "ctx.jsonl"
        with SnapshotWriter(reg, path, interval=60.0):
            pass  # stop() on exit performs the final write
        assert len(read_jsonl(path)) >= 1

    def test_stop_without_final_write(self, tmp_path):
        path = tmp_path / "nofinal.jsonl"
        writer = SnapshotWriter(populated_registry(), path, interval=60.0)
        writer.start()
        writer.stop(final_write=False)
        assert not path.exists()


class TestPrometheus:
    def test_counters_and_gauges_render_with_labels(self):
        text = to_prometheus(populated_registry().snapshot())
        assert "# TYPE streaming_applied_events counter" in text
        assert "streaming_applied_events 40" in text
        assert "# TYPE bus_depth gauge" in text
        assert 'bus_depth{topic="lifelog"} 3' in text

    def test_histogram_renders_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            labelled("stage.seconds", stage="score"), bounds=(0.1, 0.2)
        )
        for value in (0.05, 0.15, 0.15, 5.0):
            h.observe(value)
        text = to_prometheus(reg.snapshot())
        assert "# TYPE stage_seconds histogram" in text
        assert 'stage_seconds_bucket{stage="score",le="0.1"} 1' in text
        assert 'stage_seconds_bucket{stage="score",le="0.2"} 3' in text
        assert 'stage_seconds_bucket{stage="score",le="+Inf"} 4' in text
        assert 'stage_seconds_sum{stage="score"} 5.35' in text
        assert 'stage_seconds_count{stage="score"} 4' in text

    def test_accepts_deserialized_jsonl_metrics(self, tmp_path):
        path = tmp_path / "p.jsonl"
        write_jsonl(path, populated_registry().snapshot())
        record = read_jsonl(path)[0]
        text = to_prometheus(record["metrics"])
        assert "streaming_applied_events 40" in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == ""


class TestCli:
    def test_prometheus_output_and_quantile(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        write_jsonl(path, populated_registry().snapshot())
        code = main(
            [
                str(path),
                "--quantile",
                "streaming.update_visible_seconds=0.99",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "# TYPE streaming_update_visible_seconds histogram" in captured.out
        assert "quantile streaming.update_visible_seconds q=0.99" in captured.out

    def test_json_format_and_line_selection(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        reg = populated_registry()
        write_jsonl(path, reg.snapshot(), phase="first")
        write_jsonl(path, reg.snapshot(), phase="second")
        assert main([str(path), "--line", "0", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["phase"] == "first"

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_empty_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main([str(path)]) == 2
        assert "no snapshot records" in capsys.readouterr().err

    def test_out_of_range_line_exits_2(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        write_jsonl(path, populated_registry().snapshot())
        assert main([str(path), "--line", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_unknown_quantile_histogram_exits_2(self, tmp_path, capsys):
        path = tmp_path / "cli.jsonl"
        write_jsonl(path, populated_registry().snapshot())
        assert main([str(path), "--quantile", "absent=0.99"]) == 2
