"""Shared fixtures: the SUM-backend test matrix + shm leak gate.

CI runs the tier-1 suite once per SUM storage backend
(``REPRO_SUM_BACKEND=object|columnar|sharded|multiproc``).  Tests that
request the ``sum_backend`` / ``sum_backend_cls`` fixtures are
parametrized over *all* backends on a plain local run, and pinned to a
single one when the environment variable selects it — so the matrix legs
don't redo each other's work.

The ``multiproc`` backend allocates named shared-memory segments;
``_shm_leak_gate`` asserts every test session releases all of them (the
module ledger must be empty and ``/dev/shm`` must carry no new ``psm_``
entries), so a forgotten ``close()`` fails the suite instead of filling
the host.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.sharded_store import ShardedSumStore
from repro.core.shm_store import MultiProcSumStore
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore

SUM_BACKENDS = {
    "object": SumRepository,
    "columnar": ColumnarSumStore,
    # default construction = 4 hash partitions behind the router
    "sharded": ShardedSumStore,
    # sharded on shared-memory pages; constructing one spawns no
    # processes — the full in-process surface must hold regardless
    "multiproc": MultiProcSumStore,
}


def _selected_backends() -> list[str]:
    env = os.environ.get("REPRO_SUM_BACKEND", "").strip().lower()
    if not env:
        return list(SUM_BACKENDS)
    if env not in SUM_BACKENDS:
        raise pytest.UsageError(
            f"REPRO_SUM_BACKEND={env!r} is not one of {sorted(SUM_BACKENDS)}"
        )
    return [env]


def pytest_generate_tests(metafunc):
    if "sum_backend" in metafunc.fixturenames:
        metafunc.parametrize("sum_backend", _selected_backends())


@pytest.fixture
def sum_backend_cls(sum_backend):
    """The SUM collection class for the current matrix leg."""
    return SUM_BACKENDS[sum_backend]


def _shm_names() -> set[str]:
    shm = Path("/dev/shm")
    if not shm.is_dir():  # pragma: no cover - non-Linux dev box
        return set()
    return {
        entry.name for entry in shm.iterdir() if entry.name.startswith("psm_")
    }


@pytest.fixture(autouse=True, scope="session")
def _shm_leak_gate():
    """Fail the session if shared-memory segments outlive their tests.

    Two independent gates: the module's own live-segment ledger (every
    arena/control block this process still holds) and the kernel's view
    of ``/dev/shm`` (catches segments leaked by worker processes too).
    The atexit sweep in :mod:`repro.core.shm_store` is a *crash* safety
    net, not an excuse — tests must close their stores.
    """
    import gc

    from repro.core.shm_store import live_segment_names

    before = _shm_names()
    yield
    # stores the matrix built and dropped release through their finalizer
    gc.collect()
    leaked = live_segment_names()
    assert not leaked, f"shared-memory segments left open: {leaked}"
    lingering = _shm_names() - before
    assert not lingering, (
        f"/dev/shm entries leaked by the session: {sorted(lingering)}"
    )
