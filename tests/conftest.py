"""Shared fixtures: the SUM-backend test matrix.

CI runs the tier-1 suite once per SUM storage backend
(``REPRO_SUM_BACKEND=object|columnar|sharded``).  Tests that request the
``sum_backend`` / ``sum_backend_cls`` fixtures are parametrized over
*all* backends on a plain local run, and pinned to a single one when
the environment variable selects it — so the matrix legs don't redo each
other's work.
"""

from __future__ import annotations

import os

import pytest

from repro.core.sharded_store import ShardedSumStore
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore

SUM_BACKENDS = {
    "object": SumRepository,
    "columnar": ColumnarSumStore,
    # default construction = 4 hash partitions behind the router
    "sharded": ShardedSumStore,
}


def _selected_backends() -> list[str]:
    env = os.environ.get("REPRO_SUM_BACKEND", "").strip().lower()
    if not env:
        return list(SUM_BACKENDS)
    if env not in SUM_BACKENDS:
        raise pytest.UsageError(
            f"REPRO_SUM_BACKEND={env!r} is not one of {sorted(SUM_BACKENDS)}"
        )
    return [env]


def pytest_generate_tests(metafunc):
    if "sum_backend" in metafunc.fixturenames:
        metafunc.parametrize("sum_backend", _selected_backends())


@pytest.fixture
def sum_backend_cls(sum_backend):
    """The SUM collection class for the current matrix leg."""
    return SUM_BACKENDS[sum_backend]
