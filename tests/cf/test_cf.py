"""Collaborative filtering: ratings, models, hybrids, contextual wrappers."""

import numpy as np
import pytest

from repro.cf.content import ContentBasedRecommender
from repro.cf.context import (
    ContextualPostFilter,
    ContextualPreFilter,
    emotion_context,
    mood_context,
)
from repro.cf.eval import evaluate_rmse_mae, precision_at_k
from repro.cf.hybrid import SwitchingHybrid, WeightedHybrid
from repro.cf.mf import FunkSVD
from repro.cf.neighborhood import ItemKNN, UserKNN
from repro.cf.popularity import PopularityRecommender
from repro.cf.ratings import RatingMatrix
from repro.datagen.comoda import GENRES, generate_comoda


@pytest.fixture(scope="module")
def comoda():
    dataset = generate_comoda(n_users=120, n_items=60, ratings_per_user=20, seed=5)
    train, test = dataset.split(0.25, seed=5)
    matrix = RatingMatrix([(r.user_id, r.item_id, r.rating) for r in train])
    return dataset, train, test, matrix


class TestRatingMatrix:
    def test_duplicate_keeps_last(self):
        matrix = RatingMatrix([(1, 1, 2.0), (1, 1, 5.0)])
        assert matrix.rating(1, 1) == 5.0

    def test_ids_and_shapes(self):
        matrix = RatingMatrix([(1, 10, 3.0), (2, 20, 4.0)])
        assert matrix.n_users == 2 and matrix.n_items == 2
        assert matrix.user_index(2) == 1
        assert matrix.item_index(99) is None

    def test_user_mean_and_global_mean(self):
        matrix = RatingMatrix([(1, 1, 2.0), (1, 2, 4.0), (2, 1, 5.0)])
        assert matrix.user_mean(1) == 3.0
        assert matrix.global_mean() == pytest.approx(11 / 3)
        assert matrix.user_mean(99, default=1.5) == 1.5

    def test_items_of(self):
        matrix = RatingMatrix([(1, 7, 3.0), (1, 9, 4.0)])
        assert sorted(matrix.items_of(1)) == [7, 9]
        assert matrix.items_of(2) == []

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RatingMatrix([])


class TestModels:
    @pytest.mark.parametrize("model_factory", [
        lambda: ItemKNN(k=10),
        lambda: UserKNN(k=10),
        lambda: FunkSVD(rank=6, epochs=12),
        lambda: PopularityRecommender(),
    ])
    def test_beats_global_mean_baseline(self, comoda, model_factory):
        dataset, train, test, matrix = comoda
        model = model_factory().fit(matrix)
        mu = matrix.global_mean()
        rmse_model, __ = evaluate_rmse_mae(
            lambda u, i, c: model.predict(u, i), test, mood_context
        )
        rmse_mu, __ = evaluate_rmse_mae(
            lambda u, i, c: mu, test, mood_context
        )
        assert rmse_model < rmse_mu

    def test_funksvd_beats_popularity(self, comoda):
        dataset, train, test, matrix = comoda
        mf = FunkSVD(rank=8, epochs=20).fit(matrix)
        pop = PopularityRecommender().fit(matrix)
        rmse_mf, __ = evaluate_rmse_mae(
            lambda u, i, c: mf.predict(u, i), test, mood_context
        )
        rmse_pop, __ = evaluate_rmse_mae(
            lambda u, i, c: pop.predict(u, i), test, mood_context
        )
        assert rmse_mf < rmse_pop

    def test_unseen_user_falls_back(self, comoda):
        __, __, __, matrix = comoda
        model = ItemKNN(k=10).fit(matrix)
        assert 1.0 <= model.predict(99_999, matrix.item_ids[0]) <= 5.0

    def test_popularity_top_items(self, comoda):
        __, __, __, matrix = comoda
        pop = PopularityRecommender().fit(matrix)
        top = pop.top_items(5)
        assert len(top) == 5
        assert all(t in matrix.item_ids for t in top)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            ItemKNN().predict(1, 1)
        with pytest.raises(RuntimeError):
            FunkSVD().predict(1, 1)


class TestContentAndHybrids:
    def make_features(self, dataset):
        return {
            item: np.eye(len(GENRES))[GENRES.index(genre)]
            for item, genre in dataset.item_genres.items()
        }

    def test_content_scores_match_genre_preference(self, comoda):
        dataset, train, test, matrix = comoda
        model = ContentBasedRecommender(self.make_features(dataset)).fit(matrix)
        user = matrix.user_ids[0]
        scores = [model.score(user, item) for item in matrix.item_ids[:20]]
        assert all(-1.0 <= s <= 1.0 for s in scores)

    def test_content_ragged_features_rejected(self):
        with pytest.raises(ValueError):
            ContentBasedRecommender({1: np.zeros(3), 2: np.zeros(4)})

    def test_weighted_hybrid_interpolates(self, comoda):
        __, __, __, matrix = comoda

        class Const:
            def __init__(self, v):
                self.v = v

            def predict(self, u, i):
                return self.v

        hybrid = WeightedHybrid([Const(2.0), Const(4.0)], [1.0, 3.0])
        assert hybrid.predict(0, 0) == pytest.approx(3.5)

    def test_weighted_hybrid_validation(self):
        with pytest.raises(ValueError):
            WeightedHybrid([], [])
        with pytest.raises(ValueError):
            WeightedHybrid([object()], [0.0])

    def test_switching_hybrid_routes_cold_users(self, comoda):
        __, __, __, matrix = comoda

        class Tag:
            def __init__(self, v):
                self.v = v

            def predict(self, u, i):
                return self.v

        hybrid = SwitchingHybrid(matrix, Tag(1.0), Tag(2.0), min_ratings=5)
        warm_user = matrix.user_ids[0]
        assert hybrid.predict(warm_user, 0) == 1.0
        assert hybrid.predict(99_999, 0) == 2.0  # unseen => cold


class TestContextualCF:
    def test_postfilter_beats_plain_model(self, comoda):
        dataset, train, test, __ = comoda
        def factory():
            return FunkSVD(rank=8, epochs=15)
        plain = factory()
        plain.fit(RatingMatrix([(r.user_id, r.item_id, r.rating) for r in train]))
        rmse_plain, __m = evaluate_rmse_mae(
            lambda u, i, c: plain.predict(u, i), test, mood_context
        )
        post = ContextualPostFilter(factory, dataset.item_genres).fit(train)
        rmse_post, __m = evaluate_rmse_mae(post.predict, test, mood_context)
        assert rmse_post < rmse_plain

    def test_prefilter_fallback_for_thin_segments(self, comoda):
        dataset, train, test, __ = comoda
        pre = ContextualPreFilter(
            lambda: FunkSVD(rank=4, epochs=8), min_segment=10**9
        ).fit(train)
        # all segments too thin => identical to global model everywhere
        r = test[0]
        global_only = pre._global_model.predict(r.user_id, r.item_id)
        assert pre.predict(r.user_id, r.item_id, r.mood) == global_only

    def test_prefilter_builds_segment_models(self, comoda):
        dataset, train, __, __m = comoda
        pre = ContextualPreFilter(
            lambda: FunkSVD(rank=4, epochs=8), min_segment=50
        ).fit(train)
        assert len(pre._segment_models) >= 2

    def test_emotion_context_key(self, comoda):
        dataset, train, test, __ = comoda
        post = ContextualPostFilter(
            lambda: FunkSVD(rank=4, epochs=8),
            dataset.item_genres,
            context_key=emotion_context,
        ).fit(train)
        rmse, mae = evaluate_rmse_mae(post.predict, test, emotion_context)
        assert 0.3 < rmse < 1.5

    def test_empty_train_rejected(self):
        with pytest.raises(ValueError):
            ContextualPreFilter(lambda: FunkSVD()).fit([])


class TestEval:
    def test_precision_at_k_oracle_beats_antioracle(self, comoda):
        # precision@k is capped by each user's count of liked test items,
        # so even an oracle cannot reach 1.0; it must however dominate the
        # inverted oracle, and by a wide margin.
        __, __, test, __m = comoda
        oracle = precision_at_k(
            lambda u, i, c: _true_rating(test, u, i),
            test,
            mood_context,
            k=3,
        )
        anti = precision_at_k(
            lambda u, i, c: -_true_rating(test, u, i),
            test,
            mood_context,
            k=3,
        )
        assert oracle > anti + 0.2

    def test_precision_k_validation(self, comoda):
        __, __, test, __m = comoda
        with pytest.raises(ValueError):
            precision_at_k(lambda u, i, c: 0.0, test, mood_context, k=0)

    def test_rmse_empty_test(self):
        with pytest.raises(ValueError):
            evaluate_rmse_mae(lambda u, i, c: 0.0, [], mood_context)


def _true_rating(test, user, item):
    for r in test:
        if r.user_id == user and r.item_id == item:
            return r.rating
    return 0.0
