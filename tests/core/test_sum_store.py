"""The columnar SUM store: views, batch reads, persistence.

The contract under test everywhere here is *bit-equality* with the
object backend — not approximate closeness.  Scalar mutations through a
:class:`SumRowView` run the very same Python-float arithmetic as
:class:`SmartUserModel`, so states (and their JSON serializations) must
compare equal with ``==``.
"""

import json

import numpy as np
import pytest

from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.four_branch import BRANCH_ORDER, Branch
from repro.core.reward import ReinforcementPolicy
from repro.core.sensibility import SensibilityAnalyzer
from repro.core.sum_model import SmartUserModel, SumRepository, UnknownUserError
from repro.core.sum_store import ColumnarSumStore, SumBatch, SumRowView
from repro.core.updates import DecayOp, PunishOp, RewardOp, apply_ops

POLICY = ReinforcementPolicy()


def drive(model):
    """One representative mutation mix touching every attribute family."""
    model.set_objective("age", 31)
    model.set_objective("region", "madrid")
    model.set_subjective("pref[online]", 0.7)
    model.nudge_subjective("pref[online]", 0.15)
    model.nudge_subjective("pref[evening]", -0.2)
    apply_ops(
        model,
        (
            RewardOp(("enthusiastic", "lively"), 0.6),
            DecayOp(),
            PunishOp(("shy", "shy"), 0.9),  # duplicate: clamp between
            RewardOp(("hopeful",), 1.3),    # strength clamps to 1.0
        ),
        POLICY,
    )
    SensibilityAnalyzer().analyze(model)
    model.observe_branch(Branch.MANAGING, 0.8)
    model.asked_questions.add("q-1")
    model.answered_questions.add("q-1")


def paired_backends(user_ids=(3, 1, 7)):
    repo, store = SumRepository(), ColumnarSumStore()
    for uid in user_ids:
        drive(repo.get_or_create(uid))
        drive(store.get_or_create(uid))
    return repo, store


class TestRowViews:
    def test_scalar_api_is_bit_equal_to_object_backend(self):
        repo, store = paired_backends()
        for uid in repo.user_ids():
            assert store.get(uid).to_dict() == repo.get(uid).to_dict()

    def test_view_is_a_smart_user_model(self):
        store = ColumnarSumStore()
        view = store.get_or_create(9)
        assert isinstance(view, SmartUserModel)
        assert isinstance(view, SumRowView)
        # repeated lookups return the same live view
        assert store.get(9) is view

    def test_views_survive_row_growth(self):
        store = ColumnarSumStore(initial_capacity=2)
        early = store.get_or_create(0)
        early.activate_emotion("shy", 0.5)
        for uid in range(1, 64):  # forces several capacity doublings
            store.get_or_create(uid)
        assert early.emotional["shy"] == pytest.approx(0.5)
        early.activate_emotion("shy", 0.1)
        assert store.get(0).emotional["shy"] == early.emotional["shy"]

    def test_dynamic_vocabulary_interned_per_population(self):
        store = ColumnarSumStore()
        store.get_or_create(1).set_subjective("pref[a]", 0.9)
        store.get_or_create(2).set_subjective("pref[b]", 0.2)
        # presence is per user even though columns are shared
        assert "pref[b]" not in store.get(1).subjective
        assert dict(store.get(2).subjective) == {"pref[b]": 0.2}

    def test_sensibility_presence_semantics(self):
        # absent reads 0.0 on the reward path but 1.0 on the advice path
        store = ColumnarSumStore()
        view = store.get_or_create(1)
        assert view.sensibility.get("shy", 0.0) == 0.0
        assert view.sensibility.get("shy", 1.0) == 1.0
        POLICY.reward(view, ("shy",), 1.0)
        assert view.sensibility["shy"] == pytest.approx(0.1)

    def test_unknown_emotion_rejected(self):
        store = ColumnarSumStore()
        with pytest.raises(KeyError):
            store.get_or_create(1).activate_emotion("not-an-emotion", 0.1)

    def test_get_unknown_user_raises_typed_error(self):
        store = ColumnarSumStore()
        with pytest.raises(UnknownUserError, match="no SUM for user 4"):
            store.get(4)
        with pytest.raises(KeyError):  # still a KeyError for old callers
            store.get(4)

    def test_objective_assignment_roundtrip(self):
        # cross-domain transfer assigns model.objective wholesale
        store = ColumnarSumStore()
        view = store.get_or_create(1)
        view.objective = {"age": 40}
        assert store.get(1).objective == {"age": 40}


class TestBatchReads:
    def test_feature_matrix_bit_equal(self):
        repo, store = paired_backends()
        order = ("pref[online]", "pref[evening]", "never-set")
        expected, ids1 = repo.feature_matrix(subjective_order=order)
        actual, ids2 = store.feature_matrix(subjective_order=order)
        assert ids1 == ids2
        assert np.array_equal(expected, actual)

    def test_feature_matrix_subsets_and_no_ei(self):
        repo, store = paired_backends()
        expected, __ = repo.feature_matrix(user_ids=[7, 3], include_ei=False)
        actual, __ = store.feature_matrix(user_ids=[7, 3], include_ei=False)
        assert np.array_equal(expected, actual)

    def test_empty_feature_matrix_width(self):
        matrix, ids = ColumnarSumStore().feature_matrix(
            subjective_order=("a", "b")
        )
        assert matrix.shape == (0, 10 + 2 + len(BRANCH_ORDER))
        assert ids == []

    def test_boosts_matrix_columnar_fast_path_bit_equal(self):
        repo, store = paired_backends()
        profile = DomainProfile(
            "courses",
            {
                "enthusiastic": {"new": 0.8, "online": 0.3},
                "shy": {"classroom": -0.6},
                "hopeful": {"new": 0.5},
            },
        )
        engine = AdviceEngine()
        ids = repo.user_ids()
        batch = store.batch(ids)
        assert isinstance(batch, SumBatch)
        expected = engine.boosts_matrix([repo.get(u) for u in ids], profile)
        actual = engine.boosts_matrix(batch, profile)
        assert np.array_equal(expected, actual)

    def test_batch_unknown_users_named_in_error(self):
        __, store = paired_backends()
        with pytest.raises(UnknownUserError) as excinfo:
            store.batch([3, 404, 405])
        assert excinfo.value.user_ids == (404, 405)

    def test_batch_create_missing(self):
        store = ColumnarSumStore()
        batch = store.batch([1, 2], create=True)
        assert len(batch) == 2
        assert store.user_ids() == [1, 2]


class TestVectorizedOps:
    def test_population_decay_tick_bit_equal(self):
        repo, store = paired_backends()
        for model in repo:
            POLICY.apply_decay(model)
        store.decay_tick(POLICY)
        assert repo.dumps() == store.dumps()

    def test_batch_apply_validates_before_mutating(self):
        __, store = paired_backends()
        before = store.dumps()
        with pytest.raises(TypeError):
            store.batch_apply_ops(
                [(1, (RewardOp(("shy",), 1.0), object()))], POLICY
            )
        with pytest.raises(KeyError):
            store.batch_apply_ops([(1, (RewardOp(("nope",), 1.0),))], POLICY)
        with pytest.raises(ValueError):
            store.batch_apply_ops(
                [(1, (RewardOp(("shy",), float("nan")),))], POLICY
            )
        assert store.dumps() == before  # untouched


class TestFreezeView:
    def test_freeze_view_matches_live_state(self):
        __, store = paired_backends()
        for uid in store.user_ids():
            assert store.freeze_view(uid).to_dict() == store.get(uid).to_dict()

    def test_freeze_view_is_stable_across_live_writes(self):
        __, store = paired_backends()
        frozen = store.freeze_view(3)
        before = frozen.to_dict()
        store.get(3).activate_emotion("shy", 0.4)
        store.get(3).set_subjective("pref[new]", 0.9)
        assert frozen.to_dict() == before

    def test_freeze_view_raises_on_every_write_family(self):
        __, store = paired_backends()
        frozen = store.freeze_view(3)
        with pytest.raises((TypeError, ValueError, KeyError)):
            frozen.activate_emotion("shy", 0.1)
        with pytest.raises((TypeError, ValueError, KeyError)):
            frozen.set_subjective("pref[x]", 0.5)
        with pytest.raises((TypeError, ValueError, KeyError)):
            frozen.set_sensibility("shy", 0.5)
        with pytest.raises((TypeError, ValueError, KeyError)):
            frozen.evidence["shy"] = 3
        with pytest.raises((TypeError, ValueError)):
            frozen.ei_profile.scores[Branch.MANAGING] = 0.9
        with pytest.raises(TypeError):
            frozen.objective = {"age": 1}
        with pytest.raises((TypeError, AttributeError)):
            frozen.asked_questions.add("q-9")

    def test_freeze_view_unknown_user(self):
        with pytest.raises(UnknownUserError):
            ColumnarSumStore().freeze_view(99)


class TestPersistence:
    def test_json_dumps_identical_to_object_backend(self):
        repo, store = paired_backends()
        assert repo.dumps() == store.dumps()

    def test_loads_accepts_repository_dumps(self):
        repo, __ = paired_backends()
        store = ColumnarSumStore.loads(repo.dumps())
        assert store.dumps() == repo.dumps()

    def test_repository_conversion_round_trip(self):
        repo, __ = paired_backends()
        assert repo.to_columnar().to_repository().dumps() == repo.dumps()

    def test_catalog_round_trip(self, tmp_path):
        __, store = paired_backends()
        store.save(tmp_path / "sums")
        loaded = ColumnarSumStore.load(tmp_path / "sums")
        assert loaded.dumps() == store.dumps()

    def test_catalog_pages_are_npz_columns(self, tmp_path):
        __, store = paired_backends()
        store.save(tmp_path / "sums")
        names = {p.name for p in (tmp_path / "sums").iterdir()}
        assert "catalog.json" in names
        for table in ("users", "emotional", "sensibility", "subjective",
                      "evidence", "ei"):
            assert f"{table}.npz" in names

    def test_json_to_catalog_to_json(self, tmp_path):
        # the paper's JSON format remains a full-fidelity import/export
        repo, __ = paired_backends()
        store = ColumnarSumStore.loads(repo.dumps())
        store.save(tmp_path / "pages")
        reloaded = ColumnarSumStore.load(tmp_path / "pages")
        assert json.loads(reloaded.dumps()) == json.loads(repo.dumps())

    def test_dense_pages_written_alongside_tables(self, tmp_path):
        __, store = paired_backends()
        store.save(tmp_path / "sums")
        names = {p.name for p in (tmp_path / "sums").iterdir()}
        assert "user_ids.npy" in names and "ei.npy" in names
        for family in ("emotional", "sensibility", "subjective", "evidence"):
            assert f"{family}__values.npy" in names
            assert f"{family}__mask.npy" in names

    def test_tables_only_directory_still_loads(self, tmp_path):
        # dirs written before the dense pages existed: strip the pages
        # and the manifest's arrays section, then load copy-wise
        __, store = paired_backends()
        directory = store.save(tmp_path / "sums")
        manifest_path = directory / "catalog.json"
        manifest = json.loads(manifest_path.read_text())
        for filename in manifest.pop("arrays", {}).values():
            (directory / filename).unlink()
        manifest.pop("meta", None)
        manifest_path.write_text(json.dumps(manifest))
        loaded = ColumnarSumStore.load(directory)
        assert loaded.dumps() == store.dumps()
        from repro.db.storage import StorageError

        with pytest.raises(StorageError, match="mmap"):
            ColumnarSumStore.load(directory, mmap=True)


class TestMmapReplicas:
    def saved(self, tmp_path):
        __, store = paired_backends()
        return store, store.save(tmp_path / "sums")

    def test_mmap_round_trip_is_full_fidelity(self, tmp_path):
        store, directory = self.saved(tmp_path)
        replica = ColumnarSumStore.load(directory, mmap=True)
        assert replica.readonly
        assert replica.dumps() == store.dumps()

    def test_pages_are_read_only_memory_maps(self, tmp_path):
        __, directory = self.saved(tmp_path)
        replica = ColumnarSumStore.load(directory, mmap=True)
        assert isinstance(replica._emotional.values, np.memmap)
        assert isinstance(replica._ei, np.memmap)
        assert not replica._emotional.values.flags.writeable

    def test_replica_rejects_every_write_path(self, tmp_path):
        __, directory = self.saved(tmp_path)
        replica = ColumnarSumStore.load(directory, mmap=True)
        with pytest.raises(TypeError, match="read-only"):
            replica.get_or_create(999)
        with pytest.raises(TypeError, match="read-only"):
            replica.decay_tick(POLICY)
        with pytest.raises(TypeError, match="read-only"):
            replica.batch_apply_ops(
                [(3, (RewardOp(("shy",), 1.0),))], POLICY
            )
        with pytest.raises((TypeError, ValueError, KeyError)):
            replica.get(3).activate_emotion("shy", 0.1)
        with pytest.raises((TypeError, ValueError, KeyError)):
            replica.get(3).set_subjective("pref[new]", 0.5)
        # cold per-row state is frozen too, not just the mapped arrays
        with pytest.raises(TypeError):
            replica.get(3).objective = {"age": 30}
        with pytest.raises(TypeError):
            replica.get(3).set_objective("age", 30)
        with pytest.raises((TypeError, AttributeError)):
            replica.get(3).asked_questions.add("q-9")
        with pytest.raises(TypeError):
            replica.get(3).asked_questions = {"q-9"}

    def test_replica_can_be_resnapshotted(self, tmp_path):
        # save() is a pure read, so re-snapshotting a served (frozen)
        # state must work — the proxied cold rows unwrap cleanly
        store, directory = self.saved(tmp_path)
        replica = ColumnarSumStore.load(directory, mmap=True)
        resaved = replica.save(tmp_path / "resaved")
        assert ColumnarSumStore.load(resaved).dumps() == store.dumps()

    def test_replica_serves_batch_reads(self, tmp_path):
        store, directory = self.saved(tmp_path)
        replica = ColumnarSumStore.load(directory, mmap=True)
        order = ("pref[online]", "pref[evening]")
        expected, ids1 = store.feature_matrix(subjective_order=order)
        actual, ids2 = replica.feature_matrix(subjective_order=order)
        assert ids1 == ids2
        assert np.array_equal(expected, actual)
        profile = DomainProfile("courses", {"enthusiastic": {"new": 0.8}})
        engine = AdviceEngine()
        assert np.array_equal(
            engine.boosts_matrix(store.batch(ids1), profile),
            engine.boosts_matrix(replica.batch(ids2), profile),
        )

    def test_streaming_workers_refuse_readonly_replicas(self, tmp_path):
        from repro.streaming.bus import PartitionQueue
        from repro.streaming.cache import SumCache
        from repro.streaming.consumer import ShardWorker
        from repro.streaming.mapper import EventUpdateMapper

        __, directory = self.saved(tmp_path)
        replica = ColumnarSumStore.load(directory, mmap=True)
        with pytest.raises(TypeError, match="read-only"):
            ShardWorker(
                PartitionQueue(0, capacity=4, max_attempts=1),
                EventUpdateMapper({}),
                SumCache(replica),
                POLICY,
            )
