"""Advice stage, emotion-aware recommender, Fig. 4 pipeline, Human Values."""

import numpy as np
import pytest

from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.gradual_eit import GradualEIT, QuestionBank
from repro.core.human_values import HumanValuesScale
from repro.core.pipeline import EmotionalContextPipeline
from repro.core.recommender import EmotionAwareRecommender
from repro.core.sum_model import SmartUserModel, SumRepository


def make_profile():
    return DomainProfile(
        "training",
        {
            "enthusiastic": {"innovative": 0.8},
            "frightened": {"challenging": -0.6, "supportive": 0.5},
        },
    )


class TestDomainProfile:
    def test_unknown_emotion_rejected(self):
        with pytest.raises(KeyError):
            DomainProfile("d", {"bliss": {"x": 0.5}})

    def test_gain_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DomainProfile("d", {"hopeful": {"x": 1.5}})

    def test_item_attributes_sorted(self):
        assert make_profile().item_attributes() == [
            "challenging", "innovative", "supportive",
        ]

    def test_layout_computed_once_and_cached(self):
        profile = make_profile()
        first = profile.layout()
        assert profile.layout() is first  # same tuple, not a rebuild
        emotions, attributes, gains = first
        assert emotions == tuple(sorted(profile.links))
        assert list(attributes) == profile.item_attributes()
        assert gains.shape == (len(emotions), len(attributes))
        assert not gains.flags.writeable  # shared across calls: read-only

    def test_layout_gains_match_links(self):
        emotions, attributes, gains = make_profile().layout()
        assert gains[emotions.index("frightened"),
                     attributes.index("challenging")] == -0.6
        assert gains[emotions.index("enthusiastic"),
                     attributes.index("supportive")] == 0.0  # absent link


class TestAdviceEngine:
    def test_neutral_user_all_ones(self):
        boosts = AdviceEngine().boosts(SmartUserModel(1), make_profile())
        assert all(v == 1.0 for v in boosts.values())

    def test_activation_boosts_linked_attribute(self):
        model = SmartUserModel(1)
        model.activate_emotion("enthusiastic", 1.0)
        model.set_sensibility("enthusiastic", 1.0)
        boosts = AdviceEngine(gain_scale=0.5).boosts(model, make_profile())
        assert boosts["innovative"] == pytest.approx(1.4)

    def test_inhibition_lowers_linked_attribute(self):
        model = SmartUserModel(1)
        model.activate_emotion("frightened", 1.0)
        model.set_sensibility("frightened", 1.0)
        boosts = AdviceEngine(gain_scale=0.5).boosts(model, make_profile())
        assert boosts["challenging"] == pytest.approx(0.7)
        assert boosts["supportive"] == pytest.approx(1.25)

    def test_boosts_always_positive(self):
        model = SmartUserModel(1)
        model.activate_emotion("frightened", 1.0)
        model.set_sensibility("frightened", 1.0)
        boosts = AdviceEngine(gain_scale=1.0).boosts(model, make_profile())
        assert all(v > 0 for v in boosts.values())

    def test_adjust_scores_presence_weighted(self):
        model = SmartUserModel(1)
        model.activate_emotion("enthusiastic", 1.0)
        model.set_sensibility("enthusiastic", 1.0)
        engine = AdviceEngine(gain_scale=0.5)
        adjusted = engine.adjust_scores(
            {"a": 1.0, "b": 1.0},
            {"a": {"innovative": 1.0}, "b": {"innovative": 0.0}},
            model,
            make_profile(),
        )
        assert adjusted["a"] > adjusted["b"] == pytest.approx(1.0)

    def test_gain_scale_validation(self):
        with pytest.raises(ValueError):
            AdviceEngine(gain_scale=0.0)


class TestEmotionAwareRecommender:
    def make_recommender(self):
        items = {
            "course-innovative": {"innovative": 1.0},
            "course-challenging": {"challenging": 1.0},
            "course-plain": {},
        }
        return EmotionAwareRecommender(
            base_scorer=lambda model, item: 0.5,
            domain_profile=make_profile(),
            item_attributes=items,
        )

    def test_enthusiastic_user_gets_innovative_first(self):
        rec = self.make_recommender()
        model = SmartUserModel(1)
        model.activate_emotion("enthusiastic", 1.0)
        model.set_sensibility("enthusiastic", 1.0)
        ranked = rec.recommend(
            model, ["course-plain", "course-innovative", "course-challenging"]
        )
        assert ranked[0].item == "course-innovative"

    def test_frightened_user_avoids_challenging(self):
        rec = self.make_recommender()
        model = SmartUserModel(1)
        model.activate_emotion("frightened", 1.0)
        model.set_sensibility("frightened", 1.0)
        ranked = rec.recommend(
            model, ["course-challenging", "course-plain"], k=2
        )
        assert ranked[-1].item == "course-challenging"

    def test_best_action_is_top1(self):
        rec = self.make_recommender()
        model = SmartUserModel(1)
        best = rec.best_action(model, ["course-plain", "course-innovative"])
        assert best.item == rec.recommend(
            model, ["course-plain", "course-innovative"], k=1
        )[0].item

    def test_best_action_empty_items(self):
        with pytest.raises(ValueError):
            self.make_recommender().best_action(SmartUserModel(1), [])

    def test_select_users_ranks_by_adjusted_score(self):
        rec = self.make_recommender()
        repo = SumRepository()
        keen = repo.get_or_create(1)
        keen.activate_emotion("enthusiastic", 1.0)
        keen.set_sensibility("enthusiastic", 1.0)
        repo.get_or_create(2)
        ranked = rec.select_users(repo, "course-innovative")
        assert ranked[0][0] == 1
        assert ranked[0][1] > ranked[1][1]

    def test_score_matrix_shape(self):
        rec = self.make_recommender()
        repo = SumRepository()
        repo.get_or_create(1)
        repo.get_or_create(2)
        matrix, ids = rec.score_matrix(repo, ["course-plain", "course-innovative"])
        assert matrix.shape == (2, 2)
        assert ids == [1, 2]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            self.make_recommender().recommend(SmartUserModel(1), ["a"], k=0)


class TestPipeline:
    def setup_method(self):
        self.eit = GradualEIT(QuestionBank.default_bank(per_task=1))
        self.pipeline = EmotionalContextPipeline(self.eit)
        self.model = SmartUserModel(1)

    def test_touch_asks_question(self):
        result = self.pipeline.run_touch(self.model, None, engaged=False)
        assert result.question_asked is not None
        assert not result.question_answered

    def test_touch_with_answer_applies_it(self):
        result = self.pipeline.run_touch(self.model, 0, engaged=False)
        assert result.question_answered
        assert len(self.model.answered_questions) == 1

    def test_engagement_rewards_attributes(self):
        result = self.pipeline.run_touch(
            self.model, None, engaged=True, engaged_attributes=("hopeful",)
        )
        assert result.rewarded == ("hopeful",)
        assert self.model.emotional["hopeful"] > 0

    def test_ignoring_punishes(self):
        self.model.activate_emotion("hopeful", 0.5)
        result = self.pipeline.run_touch(
            self.model, None, engaged=False, engaged_attributes=("hopeful",)
        )
        assert result.punished == ("hopeful",)
        assert self.model.emotional["hopeful"] < 0.5

    def test_convergence_increases_with_aligned_answers(self):
        latent = np.zeros(10)
        latent[0] = 1.0  # catalog order: enthusiastic first
        before = self.pipeline.convergence(self.model, latent)
        self.model.activate_emotion("enthusiastic", 0.9)
        after = self.pipeline.convergence(self.model, latent)
        assert after > before

    def test_convergence_shape_check(self):
        with pytest.raises(ValueError):
            self.pipeline.convergence(self.model, np.zeros(3))


class TestHumanValues:
    def test_starts_neutral(self):
        scale = HumanValuesScale()
        assert all(v == 0.5 for v in scale.weights.values())

    def test_observe_action_moves_toward_signal(self):
        scale = HumanValuesScale(learning_rate=0.5)
        scale.observe_action({"achievement": 1.0})
        assert scale["achievement"] == pytest.approx(0.75)

    def test_unknown_value_rejected(self):
        with pytest.raises(KeyError):
            HumanValuesScale().observe_action({"power": 1.0})
        with pytest.raises(KeyError):
            HumanValuesScale()["power"]

    def test_ranking_order(self):
        scale = HumanValuesScale()
        scale.observe_action({"hedonism": 1.0, "security": 0.0})
        ranking = scale.ranking()
        assert ranking.index("hedonism") < ranking.index("security")

    def test_coherence_identical_orders(self):
        scale = HumanValuesScale()
        scale.observe_action({"achievement": 1.0, "security": 0.0})
        stated = {"achievement": 1.0, "security": 0.0}
        assert scale.coherence(stated) == 1.0

    def test_coherence_reversed_orders_low(self):
        scale = HumanValuesScale(learning_rate=1.0)
        scale.observe_action({"achievement": 1.0, "security": 0.2, "hedonism": 0.0})
        reversed_stated = {"achievement": 0.0, "security": 0.5, "hedonism": 1.0}
        assert scale.coherence(reversed_stated) < 0.5

    def test_coherence_single_shared_value_is_one(self):
        assert HumanValuesScale().coherence({"achievement": 1.0}) == 1.0
