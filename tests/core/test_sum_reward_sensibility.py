"""Smart User Models, reinforcement, sensibility analysis."""

import pytest

from repro.core.emotions import EMOTION_NAMES
from repro.core.four_branch import BRANCH_ORDER, Branch
from repro.core.reward import ReinforcementPolicy
from repro.core.sensibility import SensibilityAnalyzer
from repro.core.sum_model import (
    AttributeKind,
    AttributeSpec,
    SmartUserModel,
    SumRepository,
)


class TestSmartUserModel:
    def test_three_attribute_families(self):
        assert {k.value for k in AttributeKind} == {
            "objective", "subjective", "emotional",
        }

    def test_attribute_spec_needs_name(self):
        with pytest.raises(ValueError):
            AttributeSpec("", AttributeKind.OBJECTIVE)

    def test_subjective_clamped(self):
        model = SmartUserModel(1)
        model.set_subjective("pref", 1.7)
        assert model.subjective["pref"] == 1.0

    def test_nudge_subjective_from_neutral(self):
        model = SmartUserModel(1)
        assert model.nudge_subjective("pref", 0.2) == pytest.approx(0.7)

    def test_activate_emotion_tracks_evidence(self):
        model = SmartUserModel(1)
        model.activate_emotion("hopeful", 0.3)
        model.activate_emotion("hopeful", 0.3)
        assert model.evidence["hopeful"] == 2

    def test_dominant_attributes_sorted_and_thresholded(self):
        model = SmartUserModel(1)
        model.set_sensibility("hopeful", 0.9)
        model.set_sensibility("shy", 0.6)
        model.set_sensibility("lively", 0.2)
        assert model.dominant_attributes(0.5) == [("hopeful", 0.9), ("shy", 0.6)]

    def test_feature_vector_layout(self):
        model = SmartUserModel(1)
        vector = model.feature_vector(subjective_order=("a", "b"))
        assert vector.shape == (len(EMOTION_NAMES) + 2 + len(BRANCH_ORDER),)

    def test_serialization_round_trip(self):
        model = SmartUserModel(7)
        model.set_objective("age", 30)
        model.set_subjective("pref", 0.6)
        model.activate_emotion("hopeful", 0.4)
        model.observe_branch(Branch.MANAGING, 0.9)
        model.set_sensibility("hopeful", 0.5)
        model.asked_questions.add("q1")
        model.answered_questions.add("q1")
        clone = SmartUserModel.from_dict(model.to_dict())
        assert clone.to_dict() == model.to_dict()


class TestSumRepository:
    def test_get_or_create_idempotent(self):
        repo = SumRepository()
        a = repo.get_or_create(5)
        b = repo.get_or_create(5)
        assert a is b
        assert len(repo) == 1

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            SumRepository().get(3)

    def test_iteration_sorted_by_user(self):
        repo = SumRepository()
        for uid in (5, 1, 3):
            repo.get_or_create(uid)
        assert [m.user_id for m in repo] == [1, 3, 5]

    def test_feature_matrix_rows_follow_ids(self):
        repo = SumRepository()
        repo.get_or_create(1).activate_emotion("hopeful", 1.0)
        repo.get_or_create(2)
        matrix, ids = repo.feature_matrix(user_ids=[2, 1])
        assert ids == [2, 1]
        hopeful_col = EMOTION_NAMES.index("hopeful")
        assert matrix[1, hopeful_col] == 1.0
        assert matrix[0, hopeful_col] == 0.0

    def test_empty_feature_matrix_width(self):
        matrix, ids = SumRepository().feature_matrix()
        assert matrix.shape == (0, len(EMOTION_NAMES) + len(BRANCH_ORDER))
        assert ids == []

    def test_repository_round_trip(self):
        repo = SumRepository()
        repo.get_or_create(1).activate_emotion("shy", 0.4)
        repo.get_or_create(2).set_objective("region", "north")
        clone = SumRepository.loads(repo.dumps())
        assert clone.user_ids() == [1, 2]
        assert clone.get(1).emotional["shy"] == pytest.approx(0.4)


class TestReinforcementPolicy:
    def test_reward_raises_intensity_and_sensibility(self):
        model = SmartUserModel(1)
        ReinforcementPolicy(learning_rate=0.2).reward(model, ["hopeful"], 1.0)
        assert model.emotional["hopeful"] == pytest.approx(0.2)
        assert model.sensibility["hopeful"] == pytest.approx(0.1)

    def test_punish_weaker_than_reward(self):
        policy = ReinforcementPolicy(learning_rate=0.2, punish_ratio=0.5)
        model = SmartUserModel(1)
        model.activate_emotion("hopeful", 0.5)
        policy.punish(model, ["hopeful"], 1.0)
        assert model.emotional["hopeful"] == pytest.approx(0.5 - 0.1)

    def test_strength_scales_update(self):
        policy = ReinforcementPolicy(learning_rate=0.2)
        weak, strong = SmartUserModel(1), SmartUserModel(2)
        policy.reward(weak, ["hopeful"], 0.3)
        policy.reward(strong, ["hopeful"], 1.0)
        assert weak.emotional["hopeful"] < strong.emotional["hopeful"]

    def test_updates_bounded(self):
        policy = ReinforcementPolicy(learning_rate=1.0)
        model = SmartUserModel(1)
        for __ in range(10):
            policy.reward(model, ["hopeful"], 1.0)
        assert model.emotional["hopeful"] == 1.0
        for __ in range(30):
            policy.punish(model, ["hopeful"], 1.0)
        assert model.emotional["hopeful"] == 0.0

    def test_decay_fades_everything(self):
        policy = ReinforcementPolicy(decay=0.5)
        model = SmartUserModel(1)
        model.activate_emotion("hopeful", 0.8)
        model.set_sensibility("hopeful", 0.8)
        policy.apply_decay(model)
        assert model.emotional["hopeful"] == pytest.approx(0.4)
        assert model.sensibility["hopeful"] == pytest.approx(0.4)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReinforcementPolicy(learning_rate=0.0)
        with pytest.raises(ValueError):
            ReinforcementPolicy(punish_ratio=1.5)
        with pytest.raises(ValueError):
            ReinforcementPolicy(decay=1.0)


class TestSensibilityAnalyzer:
    def test_weight_grows_with_intensity_and_evidence(self):
        analyzer = SensibilityAnalyzer()
        low = analyzer.weight(0.2, 1)
        more_intense = analyzer.weight(0.8, 1)
        more_evidence = analyzer.weight(0.2, 10)
        assert more_intense > low
        assert more_evidence > low

    def test_weight_bounded(self):
        analyzer = SensibilityAnalyzer()
        assert 0.0 <= analyzer.weight(1.0, 1000) <= 1.0
        assert analyzer.weight(0.0, 1000) == 0.0
        assert analyzer.weight(1.0, 0) == 0.0

    def test_analyze_installs_weights(self):
        model = SmartUserModel(1)
        model.activate_emotion("hopeful", 0.9)
        weights = SensibilityAnalyzer().analyze(model)
        assert model.sensibility["hopeful"] == weights["hopeful"] > 0.0
        assert weights["shy"] == 0.0

    def test_dominant_uses_threshold(self):
        model = SmartUserModel(1)
        for __ in range(5):
            model.activate_emotion("hopeful", 0.3)
        dominant = SensibilityAnalyzer(threshold=0.4).dominant(model)
        assert dominant and dominant[0][0] == "hopeful"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SensibilityAnalyzer(alpha=0.0)
        with pytest.raises(ValueError):
            SensibilityAnalyzer(evidence_scale=0.0)
        with pytest.raises(ValueError):
            SensibilityAnalyzer(threshold=1.0)
