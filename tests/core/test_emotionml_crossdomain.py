"""EmotionML codec and cross-domain SUM transfer (extension modules)."""

import pytest

from repro.core.advice import DomainProfile
from repro.core.cross_domain import CrossDomainTransfer, emotion_domain_relevance
from repro.core.emotionml import (
    CATEGORY_SET,
    EmotionMLError,
    from_emotionml,
    to_emotionml,
)
from repro.core.emotions import EMOTION_NAMES, EmotionalState
from repro.core.four_branch import Branch
from repro.core.sum_model import SmartUserModel


class TestEmotionML:
    def test_round_trip(self):
        state = EmotionalState({"hopeful": 0.8, "shy": 0.25, "lively": 0.01})
        clone = from_emotionml(to_emotionml(state))
        for name in EMOTION_NAMES:
            assert clone[name] == pytest.approx(state[name], abs=1e-6)

    def test_empty_state_round_trip(self):
        clone = from_emotionml(to_emotionml(EmotionalState()))
        assert all(clone[name] == 0.0 for name in EMOTION_NAMES)

    def test_min_intensity_filters(self):
        state = EmotionalState({"hopeful": 0.8, "shy": 0.05})
        document = to_emotionml(state, min_intensity=0.1)
        assert "shy" not in document
        assert "hopeful" in document

    def test_document_declares_vocabulary(self):
        document = to_emotionml(EmotionalState({"hopeful": 0.5}))
        assert CATEGORY_SET in document
        assert "<category name=\"hopeful\"" in document
        assert "dimension" in document

    def test_malformed_xml_rejected(self):
        with pytest.raises(EmotionMLError):
            from_emotionml("<emotionml><emotion></emotionml")

    def test_wrong_root_rejected(self):
        with pytest.raises(EmotionMLError):
            from_emotionml("<feelings/>")

    def test_unknown_category_rejected(self):
        document = (
            '<emotionml><emotion><category name="bliss"/>'
            "</emotion></emotionml>"
        )
        with pytest.raises(EmotionMLError, match="bliss"):
            from_emotionml(document)

    def test_missing_category_rejected(self):
        document = "<emotionml><emotion/></emotionml>"
        with pytest.raises(EmotionMLError, match="category"):
            from_emotionml(document)

    def test_missing_intensity_defaults_to_one(self):
        document = (
            '<emotionml><emotion><category name="hopeful"/>'
            "</emotion></emotionml>"
        )
        assert from_emotionml(document)["hopeful"] == 1.0


def make_profiles():
    learning = DomainProfile(
        "learning",
        {
            "motivated": {"job-oriented": 0.9, "certified": 0.6},
            "frightened": {"supportive-community": 0.6, "challenging": -0.6},
            "shy": {"online": 0.8},
        },
    )
    tourism = DomainProfile(
        "tourism",
        {
            "motivated": {"challenging": 0.4},
            "lively": {"innovative": 0.7},
            # 'shy' and 'frightened' have no links in tourism
        },
    )
    return learning, tourism


class TestCrossDomain:
    def test_objective_attributes_copy_verbatim(self):
        learning, tourism = make_profiles()
        source = SmartUserModel(9)
        source.set_objective("region", "catalunya")
        moved = CrossDomainTransfer().transfer(source, learning, tourism)
        assert moved.objective == {"region": "catalunya"}
        assert moved.user_id == 9

    def test_emotional_intensities_discounted(self):
        learning, tourism = make_profiles()
        source = SmartUserModel(1)
        source.activate_emotion("motivated", 1.0)
        moved = CrossDomainTransfer(confidence=0.8).transfer(
            source, learning, tourism
        )
        assert moved.emotional["motivated"] == pytest.approx(0.8)

    def test_ei_profile_copies_verbatim(self):
        learning, tourism = make_profiles()
        source = SmartUserModel(1)
        source.observe_branch(Branch.MANAGING, 1.0, learning_rate=1.0)
        moved = CrossDomainTransfer().transfer(source, learning, tourism)
        assert moved.ei_profile.scores[Branch.MANAGING] == 1.0

    def test_irrelevant_emotion_attenuated(self):
        learning, tourism = make_profiles()
        source = SmartUserModel(1)
        source.set_sensibility("shy", 0.9)       # strong in learning
        source.set_sensibility("motivated", 0.9)  # relevant in both
        moved = CrossDomainTransfer().transfer(source, learning, tourism)
        # 'shy' has zero relevance in tourism => attenuated to zero
        assert moved.sensibility.get("shy", 0.0) == 0.0
        assert moved.sensibility["motivated"] > 0.3

    def test_subjective_and_eit_state_do_not_transfer(self):
        learning, tourism = make_profiles()
        source = SmartUserModel(1)
        source.set_subjective("pref[online]", 0.9)
        source.asked_questions.add("q1")
        moved = CrossDomainTransfer().transfer(source, learning, tourism)
        assert moved.subjective == {}
        assert moved.asked_questions == set()

    def test_evidence_halves(self):
        learning, tourism = make_profiles()
        source = SmartUserModel(1)
        for __ in range(5):
            source.activate_emotion("motivated", 0.1)
        moved = CrossDomainTransfer().transfer(source, learning, tourism)
        assert moved.evidence["motivated"] == 2

    def test_relevance_monotone_in_link_mass(self):
        learning, __ = make_profiles()
        assert emotion_domain_relevance(learning, "motivated") > (
            emotion_domain_relevance(learning, "lively")
        )
        assert emotion_domain_relevance(learning, "lively") == 0.0

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            CrossDomainTransfer(confidence=0.0)

    def test_source_model_untouched(self):
        learning, tourism = make_profiles()
        source = SmartUserModel(1)
        source.activate_emotion("motivated", 1.0)
        source.set_sensibility("motivated", 0.9)
        snapshot = source.to_dict()
        CrossDomainTransfer().transfer(source, learning, tourism)
        assert source.to_dict() == snapshot
