"""DomainProfile hashability — the frozen-dataclass + dict-field trap.

``@dataclass(frozen=True)`` auto-generates ``__hash__`` over the raw
fields, and ``links`` is a dict, so ``hash(profile)`` raised ``TypeError``
on first use: profiles could never key caches or live in sets.  The
explicit content-based ``__hash__`` must stay consistent with the
generated ``__eq__``.
"""

import pytest

from repro.core.advice import DomainProfile

LINKS = {
    "enthusiastic": {"innovative": 0.8, "online": 0.3},
    "shy": {"supportive": 0.4},
}


def make(domain="training", links=LINKS):
    return DomainProfile(domain, links)


def test_profiles_are_hashable():
    # regression: the auto-generated __hash__ raised TypeError here
    assert isinstance(hash(make()), int)
    assert hash(make()) == hash(make())


def test_hash_is_consistent_with_eq():
    a, b = make(), make()
    assert a == b and hash(a) == hash(b)
    assert len({a, b}) == 1
    cache = {a: "layout"}
    assert cache[b] == "layout"


def test_link_declaration_order_does_not_matter():
    a = DomainProfile(
        "d", {"enthusiastic": {"x": 0.1, "y": 0.2}, "shy": {"z": -0.5}}
    )
    b = DomainProfile(
        "d", {"shy": {"z": -0.5}, "enthusiastic": {"y": 0.2, "x": 0.1}}
    )
    assert a == b and hash(a) == hash(b)


def test_distinct_profiles_distinct_set_entries():
    a = make()
    b = make(domain="other")
    c = make(links={"enthusiastic": {"innovative": 0.1}})
    assert len({a, b, c}) == 3


def test_empty_links_profile_hashable():
    assert isinstance(hash(DomainProfile("bare")), int)


def test_profiles_key_scorer_registries():
    # the motivating use: memoizing per-profile layouts/boosts
    memo = {}
    for __ in range(3):
        memo.setdefault(make(), []).append(1)
    assert list(memo.values()) == [[1, 1, 1]]


def test_validation_still_rejects_bad_profiles():
    with pytest.raises(KeyError):
        DomainProfile("d", {"not-an-emotion": {"x": 0.1}})
    with pytest.raises(ValueError):
        DomainProfile("d", {"shy": {"x": 1.5}})
