"""Emotion catalog, valence algebra, emotional state, Fig. 1 taxonomy."""

import numpy as np
import pytest

from repro.core.context import (
    CONTEXT_DIMENSIONS,
    ContextSnapshot,
    KNOWLEDGE_SOURCES,
    taxonomy_lines,
)
from repro.core.emotions import (
    EMOTION_NAMES,
    EmotionalAttribute,
    EmotionalState,
    NEGATIVE_EMOTIONS,
    POSITIVE_EMOTIONS,
    clamp01,
    clamp_valence,
)


class TestCatalog:
    def test_exactly_the_papers_ten_attributes(self):
        assert set(EMOTION_NAMES) == {
            "enthusiastic", "motivated", "empathic", "hopeful", "lively",
            "stimulated", "impatient", "frightened", "shy", "apathetic",
        }

    def test_valence_signs_partition(self):
        assert set(POSITIVE_EMOTIONS) | set(NEGATIVE_EMOTIONS) == set(EMOTION_NAMES)
        assert not set(POSITIVE_EMOTIONS) & set(NEGATIVE_EMOTIONS)

    def test_paper_positive_negatives(self):
        assert "enthusiastic" in POSITIVE_EMOTIONS
        assert "frightened" in NEGATIVE_EMOTIONS
        assert "apathetic" in NEGATIVE_EMOTIONS

    def test_attribute_validation(self):
        with pytest.raises(ValueError):
            EmotionalAttribute("x", valence=2.0, arousal=0.5)
        with pytest.raises(ValueError):
            EmotionalAttribute("x", valence=0.5, arousal=-0.1)
        with pytest.raises(ValueError):
            EmotionalAttribute("", valence=0.5, arousal=0.5)

    def test_clamps(self):
        assert clamp01(1.5) == 1.0
        assert clamp01(-0.5) == 0.0
        assert clamp_valence(-2.0) == -1.0


class TestEmotionalState:
    def test_missing_attribute_reads_zero(self):
        assert EmotionalState()["hopeful"] == 0.0

    def test_unknown_attribute_rejected(self):
        with pytest.raises(KeyError):
            EmotionalState({"bliss": 0.5})
        with pytest.raises(KeyError):
            EmotionalState()["bliss"]

    def test_construction_clamps(self):
        state = EmotionalState({"hopeful": 2.0})
        assert state["hopeful"] == 1.0

    def test_activate_clamps_both_ends(self):
        state = EmotionalState()
        state.activate("hopeful", 0.7)
        state.activate("hopeful", 0.7)
        assert state["hopeful"] == 1.0
        state.activate("hopeful", -5.0)
        assert state["hopeful"] == 0.0

    def test_mood_sign_follows_dominant_valence(self):
        positive = EmotionalState({"enthusiastic": 0.9})
        negative = EmotionalState({"frightened": 0.9})
        assert positive.mood() > 0.5
        assert negative.mood() < -0.5

    def test_mood_of_flat_state_is_zero(self):
        assert EmotionalState().mood() == 0.0

    def test_arousal_weighted(self):
        lively = EmotionalState({"lively": 1.0})       # arousal 0.90
        apathetic = EmotionalState({"apathetic": 1.0})  # arousal 0.10
        assert lively.arousal() > apathetic.arousal()

    def test_top_ranked_by_intensity(self):
        state = EmotionalState({"hopeful": 0.8, "shy": 0.3, "lively": 0.9})
        assert [name for name, __ in state.top(2)] == ["lively", "hopeful"]

    def test_vector_round_trip(self):
        state = EmotionalState({"hopeful": 0.8, "shy": 0.3})
        clone = EmotionalState.from_vector(state.as_vector())
        assert clone.intensities == {
            n: state[n] for n in EMOTION_NAMES if state[n] > 0 or clone[n] >= 0
        } or all(clone[n] == state[n] for n in EMOTION_NAMES)

    def test_from_vector_shape_check(self):
        with pytest.raises(ValueError):
            EmotionalState.from_vector(np.zeros(3))

    def test_blend_moves_toward_other(self):
        a = EmotionalState({"hopeful": 0.0})
        b = EmotionalState({"hopeful": 1.0})
        a.blend(b, weight=0.5)
        assert a["hopeful"] == pytest.approx(0.5)

    def test_blend_weight_validation(self):
        with pytest.raises(ValueError):
            EmotionalState().blend(EmotionalState(), weight=1.5)

    def test_decay_shrinks_everything(self):
        state = EmotionalState({"hopeful": 0.8, "shy": 0.4})
        state.decay(0.5)
        assert state["hopeful"] == pytest.approx(0.4)
        assert state["shy"] == pytest.approx(0.2)

    def test_copy_is_independent(self):
        state = EmotionalState({"hopeful": 0.5})
        clone = state.copy()
        clone.activate("hopeful", 0.3)
        assert state["hopeful"] == 0.5


class TestContextTaxonomy:
    def test_seven_dimensions_from_fig1(self):
        names = {d.name for d in CONTEXT_DIMENSIONS}
        assert names == {
            "cognitive", "task", "social", "emotional",
            "cultural", "physical", "location",
        }

    def test_burke_knowledge_sources(self):
        names = {s.name for s in KNOWLEDGE_SOURCES}
        assert names == {"collaborative", "content", "demographic", "knowledge-based"}

    def test_snapshot_rejects_unknown_dimension(self):
        with pytest.raises(KeyError):
            ContextSnapshot({"weather": "sunny"})
        snapshot = ContextSnapshot()
        with pytest.raises(KeyError):
            snapshot.set("weather", "sunny")

    def test_snapshot_get_set(self):
        snapshot = ContextSnapshot()
        snapshot.set("emotional", "hopeful")
        assert snapshot.get("emotional") == "hopeful"
        assert snapshot.get("task") is None

    def test_taxonomy_lines_mark_emotional_focus(self):
        lines = taxonomy_lines()
        assert any("emotional context" in line and "focus" in line for line in lines)
        assert lines[0] == "Ambient Recommender System"
