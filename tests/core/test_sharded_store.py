"""The partitioned SUM plane: router semantics, persistence, compaction.

ISSUE 5's tentpole contracts at store level: hash routing matches the
event bus, every read/write surface is bit-equal to the single columnar
store (which is itself pinned bit-equal to the object backend), unknown
users fail as one typed error across shards, generation-stamped
checkpoints round-trip with version floors, and vocabulary compaction
drops only all-absent interned columns.
"""

import threading

import numpy as np
import pytest

from repro.core.emotions import EMOTION_NAMES
from repro.core.reward import ReinforcementPolicy
from repro.core.sharded_store import (
    ShardedBatch,
    ShardedSumStore,
    generation_dirs,
    read_manifest,
)
from repro.core.sum_model import SumRepository, UnknownUserError
from repro.core.sum_store import ColumnarSumStore, SumBatch
from repro.core.updates import DecayOp, PunishOp, RewardOp
from repro.streaming.bus import partition_for

POLICY = ReinforcementPolicy()


def populate(sums, n_users=40):
    rng = np.random.default_rng(11)
    for uid in range(n_users):
        model = sums.get_or_create(uid)
        for j, name in enumerate(EMOTION_NAMES[:4]):
            model.activate_emotion(name, float(rng.uniform(0.1, 0.9)))
            model.set_sensibility(name, float(rng.uniform(0.1, 0.9)))
        model.set_subjective(f"pref[p{uid % 3}]", float(rng.uniform(0, 1)))
    return sums


class TestRouting:
    def test_users_land_on_partition_for_shards(self):
        store = populate(ShardedSumStore(n_shards=4))
        for uid in range(40):
            shard = store.shards[partition_for(uid, 4)]
            assert uid in shard
            assert uid in store
        assert len(store) == 40
        assert sum(len(s) for s in store.shards) == 40

    def test_single_shard_degenerates_to_one_store(self):
        store = populate(ShardedSumStore(n_shards=1))
        assert len(store.shards[0]) == 40
        assert isinstance(store.batch([1, 2, 3]), SumBatch)

    def test_n_shards_validated(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedSumStore(n_shards=0)


class TestStoreSurface:
    def test_dumps_bit_equal_to_object_repository(self):
        sharded = populate(ShardedSumStore(n_shards=4))
        reference = populate(SumRepository())
        assert sharded.dumps() == reference.dumps()

    def test_loads_round_trip(self):
        sharded = populate(ShardedSumStore(n_shards=4))
        again = ShardedSumStore.loads(sharded.dumps(), n_shards=3)
        assert again.dumps() == sharded.dumps()
        assert [len(s) for s in again.shards] != []

    def test_batch_matrices_match_single_store(self):
        sharded = populate(ShardedSumStore(n_shards=4))
        single = populate(ColumnarSumStore())
        ids = [7, 0, 13, 2, 21, 38]  # interleaved across shards
        b_sharded = sharded.batch(ids)
        b_single = single.batch(ids)
        assert isinstance(b_sharded, ShardedBatch)
        assert np.array_equal(
            b_sharded.intensity_matrix(EMOTION_NAMES),
            b_single.intensity_matrix(EMOTION_NAMES),
        )
        assert np.array_equal(
            b_sharded.sensibility_matrix(EMOTION_NAMES),
            b_single.sensibility_matrix(EMOTION_NAMES),
        )
        prefs = ("pref[p0]", "pref[p1]", "pref[p2]")
        assert np.array_equal(
            b_sharded.subjective_matrix(prefs),
            b_single.subjective_matrix(prefs),
        )
        assert [m.user_id for m in b_sharded] == ids

    def test_feature_matrix_matches_object_backend(self):
        sharded = populate(ShardedSumStore(n_shards=4))
        reference = populate(SumRepository())
        prefs = ("pref[p0]", "pref[p1]", "pref[p2]")
        got, got_ids = sharded.feature_matrix(subjective_order=prefs)
        want, want_ids = reference.feature_matrix(subjective_order=prefs)
        assert got_ids == want_ids
        assert np.array_equal(got, want)

    def test_unknown_users_named_across_shards(self):
        store = populate(ShardedSumStore(n_shards=4))
        with pytest.raises(UnknownUserError) as excinfo:
            store.batch([1, 901, 2, 902, 903])
        assert excinfo.value.user_ids == (901, 902, 903)
        with pytest.raises(UnknownUserError):
            store.feature_matrix([1, 777])
        # create=True takes streaming first-contact semantics instead
        batch = store.batch([901], create=True)
        assert batch.user_ids == [901]

    def test_freeze_view_delegates_to_owning_shard(self):
        store = populate(ShardedSumStore(n_shards=4))
        frozen = store.freeze_view(7)
        assert frozen.user_id == 7
        with pytest.raises((TypeError, ValueError, KeyError)):
            frozen.activate_emotion("shy", 0.4)


class TestBatchApply:
    def test_batch_apply_matches_single_store_bit_for_bit(self):
        sharded = populate(ShardedSumStore(n_shards=4))
        single = populate(ColumnarSumStore())
        items = [
            (uid, (RewardOp(("shy", "enthusiastic"), 0.7), DecayOp(),
                   PunishOp(("frightened",), 0.2)))
            for uid in range(0, 40, 3)
        ]
        counts_sharded = sharded.batch_apply_ops(items, POLICY)
        counts_single = single.batch_apply_ops(items, POLICY)
        assert counts_sharded == counts_single == [3] * len(items)
        assert sharded.dumps() == single.dumps()

    def test_validation_failure_leaves_every_shard_untouched(self):
        store = populate(ShardedSumStore(n_shards=4))
        before = store.dumps()
        # users on different shards; the poison op is on the *last* item,
        # so an unvalidated router would already have mutated shard 0
        items = [
            (0, (RewardOp(("shy",), 1.0),)),
            (1, (RewardOp(("shy",), 1.0),)),
            (2, (RewardOp(("not-an-emotion",), 1.0),)),
        ]
        with pytest.raises(KeyError, match="not-an-emotion"):
            store.batch_apply_ops(items, POLICY)
        assert store.dumps() == before

    def test_decay_tick_matches_object_backend(self):
        sharded = populate(ShardedSumStore(n_shards=4))
        reference = populate(SumRepository())
        assert sharded.decay_tick(POLICY) == 40
        for model in reference:
            POLICY.apply_decay(model)
        assert sharded.dumps() == reference.dumps()
        # targeted ticks validate and route
        assert sharded.decay_tick(POLICY, [1, 2, 3]) == 3
        with pytest.raises(UnknownUserError):
            sharded.decay_tick(POLICY, [999])

    def test_concurrent_writers_on_distinct_shards(self):
        store = ShardedSumStore(n_shards=4)
        for uid in range(200):
            store.get_or_create(uid)
        errors = []

        def writer(shard_index):
            try:
                ids = [uid for uid in range(200)
                       if partition_for(uid, 4) == shard_index]
                for __ in range(30):
                    store.batch_apply_ops(
                        [(uid, (RewardOp(("shy",), 0.1),)) for uid in ids],
                        POLICY,
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # every user took exactly 30 rewards: same clamped trajectory
        expected = ColumnarSumStore()
        for uid in range(200):
            expected.get_or_create(uid)
        for __ in range(30):
            expected.batch_apply_ops(
                [(uid, (RewardOp(("shy",), 0.1),)) for uid in range(200)],
                POLICY,
            )
        assert store.dumps() == expected.dumps()


class TestPersistence:
    def test_generations_are_monotonic_and_atomic(self, tmp_path):
        store = populate(ShardedSumStore(n_shards=3))
        root = tmp_path / "state"
        first = store.save(root)
        second = store.save(root)
        assert first.name == "gen-000001" and second.name == "gen-000002"
        manifest = read_manifest(root)
        assert manifest["generation"] == 2
        assert manifest["n_shards"] == 3
        assert manifest["path"] == "gen-000002"
        assert [g for g, __ in generation_dirs(root)] == [1, 2]

    @pytest.mark.parametrize("mmap", [False, True])
    def test_load_round_trip_bit_equal(self, tmp_path, mmap):
        store = populate(ShardedSumStore(n_shards=3))
        store.save(tmp_path / "state", versions={uid: 5 for uid in range(40)},
                   global_version=17)
        loaded = ShardedSumStore.load(tmp_path / "state", mmap=mmap)
        assert loaded.dumps() == store.dumps()
        assert loaded.snapshot_generation == 1
        assert loaded.version(7) == 5
        assert loaded.global_version == 17
        assert loaded.readonly is mmap

    def test_mmap_replica_rejects_writes(self, tmp_path):
        store = populate(ShardedSumStore(n_shards=2))
        store.save(tmp_path / "state")
        replica = ShardedSumStore.load(tmp_path / "state", mmap=True)
        with pytest.raises(TypeError, match="read-only"):
            replica.get_or_create(999)
        with pytest.raises(TypeError, match="read-only"):
            replica.batch_apply_ops([(1, (RewardOp(("shy",), 1.0),))], POLICY)
        with pytest.raises(TypeError, match="read-only"):
            replica.compact_vocab()

    def test_version_floor_falls_back_to_generation(self, tmp_path):
        # the ISSUE satellite: replicas never serve sum_version=None
        store = populate(ShardedSumStore(n_shards=2))
        store.save(tmp_path / "state")  # no cache versions supplied
        replica = ShardedSumStore.load(tmp_path / "state", mmap=True)
        assert replica.version(3) == 1
        assert replica.global_version == 1
        live = ShardedSumStore(n_shards=2)
        live.get_or_create(3)
        assert live.version(3) is None


class TestCompaction:
    def test_compact_drops_only_all_absent_interned_columns(self):
        store = populate(ShardedSumStore(n_shards=4))
        # retire an attribute on every user that has it
        for uid in range(40):
            model = store.get(uid)
            for name in list(model.subjective):
                del model.subjective[name]
        before = store.dumps()
        dropped = store.compact_vocab()
        assert dropped > 0  # the retired pref columns went away
        assert store.dumps() == before
        # seeds survive per shard: the shared emotion column indices the
        # scatter-add path relies on are pinned
        for shard in store.shards:
            assert shard._sensibility.order[: len(EMOTION_NAMES)] == list(
                EMOTION_NAMES
            )
            assert shard._evidence.order[: len(EMOTION_NAMES)] == list(
                EMOTION_NAMES
            )
        # still writable and routable after the rebuild
        store.batch_apply_ops([(1, (RewardOp(("shy",), 0.5),))], POLICY)

    def test_compact_save_load_round_trip(self, tmp_path):
        # the ISSUE satellite: compact → save → load → dumps bit-equal
        store = populate(ShardedSumStore(n_shards=3))
        for uid in range(40):
            model = store.get(uid)
            for name in list(model.subjective):
                del model.subjective[name]
        reference = store.dumps()
        assert store.compact_vocab() > 0
        store.save(tmp_path / "state")
        for mmap in (False, True):
            loaded = ShardedSumStore.load(tmp_path / "state", mmap=mmap)
            assert loaded.dumps() == reference

    def test_compact_noop_when_everything_present(self):
        store = populate(ColumnarSumStore())
        assert store.compact_vocab() == 0

    def test_compact_preserves_present_interned_columns(self):
        store = ColumnarSumStore()
        store.get_or_create(1).set_subjective("pref[keep]", 0.9)
        store.get_or_create(2).set_subjective("pref[drop]", 0.5)
        del store.get(2).subjective["pref[drop]"]
        assert store.compact_vocab() == 1
        assert store.get(1).subjective["pref[keep]"] == pytest.approx(0.9)
        assert "pref[drop]" not in store.get(2).subjective
