"""Shared-memory store backing: arenas, control blocks, recovery copies.

The storage layer of the multi-process shard plane
(:mod:`repro.core.shm_store`): arrays on named segments two processes
can map, the seqlock-published layout handshake, the bulk copy the
crash-recovery path uses, and the delta-checkpoint honesty rules
(`resync` must advance the parent's mutation clock for shards a worker
process touched, `replace_shard` must never let a rebuilt shard
hardlink stale pages).
"""

import json
import os

import numpy as np
import pytest

from repro.core.shm_store import (
    MultiProcSumStore,
    ShardControlBlock,
    ShmArena,
    adopt_layout,
    copy_shard_into,
    live_segment_names,
    shard_layout,
)
from repro.core.sum_store import ColumnarSumStore


def populate(store, users=(1, 2, 7, 12)):
    for uid in users:
        view = store.get_or_create(uid)
        view.activate_emotion("enthusiastic", 0.25 + (uid % 5) / 10)
        view.sensibility[f"area-{uid % 3}"] = 0.5
        view.objective = {"age": uid}
        view.asked_questions = {f"q{uid}"}
    return store


class TestShmArena:
    def test_alloc_returns_zeroed_writable_segment_backed_array(self):
        arena = ShmArena(tag="t")
        try:
            array = arena.alloc((4, 3), np.float64)
            assert array.shape == (4, 3)
            assert not array.any()
            array[2, 1] = 5.0  # writable in place
            name = arena.name_of(array)
            assert name in arena.segment_names()
            assert name in live_segment_names()
        finally:
            arena.close()

    def test_attach_maps_the_same_physical_pages(self):
        writer = ShmArena(tag="w")
        reader = ShmArena(tag="r")
        try:
            source = writer.alloc((8,), np.int64)
            mirror = reader.attach(
                writer.name_of(source), (8,), np.int64
            )
            source[3] = 42
            assert mirror[3] == 42  # zero-copy: same pages
            mirror[5] = 7
            assert source[5] == 7
        finally:
            reader.close()
            writer.close()

    def test_attach_is_idempotent_per_name(self):
        arena = ShmArena()
        try:
            array = arena.alloc((2,), np.float64)
            name = arena.name_of(array)
            first = arena.attach(name, (2,), np.float64)
            second = arena.attach(name, (2,), np.float64)
            assert first is second
        finally:
            arena.close()

    def test_sweep_releases_segments_of_dead_arrays(self):
        arena = ShmArena()
        try:
            keep = arena.alloc((2,), np.float64)
            drop = arena.alloc((2,), np.float64)
            dropped_name = arena.name_of(drop)
            del drop
            arena.sweep()
            assert dropped_name not in arena.segment_names()
            assert dropped_name not in live_segment_names()
            assert arena.name_of(keep) in arena.segment_names()
        finally:
            arena.close()

    def test_close_empties_the_ledger_and_blocks_alloc(self):
        arena = ShmArena(tag="closing")
        arena.alloc((4,), np.float64)
        arena.close()
        assert arena.segment_names() == []
        assert not any(
            tag == "closing" for tag in live_segment_names()
        )
        with pytest.raises(ValueError, match="closed"):
            arena.alloc((1,), np.float64)
        arena.close()  # idempotent


class TestShardControlBlock:
    def test_layout_roundtrip_and_counters(self):
        control = ShardControlBlock.create()
        try:
            assert control.read_layout() is None
            layout = {"families": {"emotional": {"order": ["shy"]}}}
            control.publish_layout(layout, n_users=12, applied_seq=3)
            control.mark_commit()
            control.beat()
            read, n_users, applied = control.read_layout()
            assert read == layout
            assert (n_users, applied) == (12, 3)
            assert control.commit_version == 1
            assert control.heartbeat == 1
            assert control.n_users == 12
            assert control.applied_seq == 3
        finally:
            control.close(unlink=True)

    def test_attach_reads_a_peer_published_layout(self):
        owner = ShardControlBlock.create()
        try:
            owner.publish_layout({"k": "v"}, n_users=1, applied_seq=9)
            peer = ShardControlBlock.attach(owner.name)
            layout, __, applied = peer.read_layout()
            assert layout == {"k": "v"} and applied == 9
            peer.close()
        finally:
            owner.close(unlink=True)

    def test_oversized_layout_is_rejected(self):
        control = ShardControlBlock.create()
        try:
            huge = {"blob": "x" * (ShardControlBlock.LAYOUT_CAPACITY + 1)}
            with pytest.raises(ValueError, match="bytes"):
                control.publish_layout(huge, n_users=0, applied_seq=0)
        finally:
            control.close(unlink=True)

    def test_reader_times_out_on_a_wedged_writer(self):
        control = ShardControlBlock.create()
        try:
            control.publish_layout({}, n_users=0, applied_seq=0)
            control._slots[ShardControlBlock.SLOT_EPOCH] += 1  # left odd
            with pytest.raises(TimeoutError, match="seqlock"):
                control.read_layout(timeout=0.05)
        finally:
            control.close(unlink=True)


class TestLayoutAdoption:
    def test_published_layout_adopts_bit_equal_in_a_reader_store(self):
        arena = ShmArena(tag="pub")
        try:
            writer = populate(
                ColumnarSumStore(initial_capacity=4, alloc=arena.alloc)
            )
            layout = shard_layout(arena, writer)
            # a fresh store in "another process": same segments by name
            reader = ColumnarSumStore(initial_capacity=4, alloc=arena.alloc)
            adopt_layout(arena, reader, json.loads(json.dumps(layout)),
                         n_users=len(writer))
            # hot state is the same pages; cold state is placeholder-empty
            # (streaming never writes it), so compare the hot surface
            assert reader.user_ids() == writer.user_ids()
            for uid in writer.user_ids():
                np.testing.assert_array_equal(
                    reader.get(uid).emotional_vector(),
                    writer.get(uid).emotional_vector(),
                )
                assert dict(reader.get(uid).sensibility) == dict(
                    writer.get(uid).sensibility
                )
            arena.sweep()
        finally:
            arena.close()


class TestCopyShardInto:
    def test_copy_is_bit_equal_including_cold_state(self):
        src = populate(ColumnarSumStore())
        dst = ColumnarSumStore(initial_capacity=2)
        copy_shard_into(src, dst)
        assert dst.dumps() == src.dumps()

    def test_copies_are_independent(self):
        src = populate(ColumnarSumStore())
        dst = ColumnarSumStore()
        copy_shard_into(src, dst)
        dst.get(1).activate_emotion("shy", 0.9)
        dst.get(1).objective = {"mutated": True}
        assert src.get(1).emotional["shy"] == 0.0
        assert src.get(1).objective == {"age": 1}

    def test_destination_must_be_empty(self):
        src = populate(ColumnarSumStore())
        dst = populate(ColumnarSumStore(), users=(5,))
        with pytest.raises(ValueError, match="empty"):
            copy_shard_into(src, dst)

    def test_empty_source_is_a_noop(self):
        dst = ColumnarSumStore()
        copy_shard_into(ColumnarSumStore(), dst)
        assert len(dst) == 0


class TestMultiProcSumStore:
    def test_in_process_surface_matches_plain_sharded_store(self):
        store = MultiProcSumStore(n_shards=3)
        try:
            populate(store, users=range(20))
            from repro.core.sharded_store import ShardedSumStore

            reference = populate(ShardedSumStore(n_shards=3),
                                 users=range(20))
            assert store.dumps() == reference.dumps()
        finally:
            store.close()

    def test_save_load_roundtrip(self, tmp_path):
        store = populate(MultiProcSumStore(n_shards=2), users=range(10))
        try:
            store.save(tmp_path)
            from repro.core.sharded_store import ShardedSumStore

            loaded = ShardedSumStore.load(tmp_path)
            assert loaded.dumps() == store.dumps()
        finally:
            store.close()

    def test_n_shards_validated(self):
        with pytest.raises(ValueError, match="n_shards"):
            MultiProcSumStore(n_shards=0)

    def test_publish_resync_roundtrip_reports_applied_seq(self):
        store = populate(MultiProcSumStore(n_shards=2), users=range(8))
        try:
            store.publish_shard(0, applied_seq=5)
            store.publish_shard(1, applied_seq=7)
            assert store.resync() == [5, 7]
        finally:
            store.close()

    def test_resync_bumps_clock_only_on_remote_commits(self):
        store = populate(MultiProcSumStore(n_shards=2), users=range(8))
        try:
            store.publish_shard(0)
            store.publish_shard(1)
            before = [s.mutation_count for s in store.shards]
            store.resync()
            assert [s.mutation_count for s in store.shards] == before
            # a worker process's commit is only visible through the
            # shared counter — resync must translate it into a parent
            # clock bump or delta checkpoints would skip the shard
            store.controls[0].mark_commit()
            store.resync()
            after = [s.mutation_count for s in store.shards]
            assert after[0] == before[0] + 1
            assert after[1] == before[1]
        finally:
            store.close()

    def test_delta_checkpoint_reserializes_only_remotely_touched_shards(
        self, tmp_path
    ):
        store = populate(MultiProcSumStore(n_shards=2), users=range(12))
        try:
            store.publish_shard(0)
            store.publish_shard(1)
            gen1 = store.save(tmp_path)
            store.controls[0].mark_commit()  # "worker committed on 0"
            store.resync()
            gen2 = store.save(tmp_path)

            def inode(gen, shard):
                files = sorted((gen / f"shard-{shard:02d}").glob("*"))
                assert files
                return [os.stat(f).st_ino for f in files]

            # untouched shard 1 hardlinks gen1's pages; shard 0 re-wrote
            assert inode(gen1, 1) == inode(gen2, 1)
            assert inode(gen1, 0) != inode(gen2, 0)
        finally:
            store.close()

    def test_replace_shard_never_hardlinks_stale_pages(self, tmp_path):
        store = populate(MultiProcSumStore(n_shards=2), users=range(12))
        try:
            store.save(tmp_path)
            rebuilt = store.fresh_shard(0, capacity=1024)
            copy_shard_into(store.shards[0], rebuilt)
            rebuilt.get_or_create(1).activate_emotion("shy", 0.4)
            store.replace_shard(0, rebuilt)
            gen2 = store.save(tmp_path)
            from repro.core.sharded_store import ShardedSumStore

            assert ShardedSumStore.load(tmp_path).dumps() == store.dumps()
            # the replacement's clock is unrelated to the recorded mark;
            # the save must have re-serialized, not linked
            reloaded = ColumnarSumStore.load(gen2 / "shard-00")
            assert reloaded.get(1).emotional["shy"] > 0.0
        finally:
            store.close()

    def test_close_releases_every_segment(self):
        store = populate(MultiProcSumStore(n_shards=2))
        names_before = live_segment_names()
        assert names_before  # arenas + control blocks are live
        store.close()
        assert store.closed
        assert live_segment_names() == []
        store.close()  # idempotent
