"""Four-Branch model (Table 1) and the Gradual EIT."""

import pytest

from repro.core.four_branch import (
    Area,
    BRANCHES,
    BRANCH_ORDER,
    Branch,
    FourBranchProfile,
    branch_table,
)
from repro.core.gradual_eit import (
    AnswerOption,
    EITQuestion,
    GradualEIT,
    QuestionBank,
)
from repro.core.sum_model import SmartUserModel


class TestTable1:
    def test_four_branches_in_order(self):
        assert [b.value for b in BRANCH_ORDER] == [
            "perceiving", "facilitating", "understanding", "managing",
        ]

    def test_each_branch_has_two_msceit_tasks(self):
        for info in BRANCHES.values():
            assert len(info.tasks) == 2

    def test_area_grouping(self):
        assert BRANCHES[Branch.PERCEIVING].area is Area.EXPERIENTIAL
        assert BRANCHES[Branch.MANAGING].area is Area.STRATEGIC

    def test_branch_table_rows(self):
        rows = branch_table()
        assert len(rows) == 4
        assert rows[0]["tasks"] == "Faces, Pictures"
        assert rows[3]["title"] == "Managing Emotions"


class TestFourBranchProfile:
    def test_neutral_profile_eiq_100(self):
        assert FourBranchProfile().eiq() == pytest.approx(100.0)

    def test_eiq_extremes(self):
        top = FourBranchProfile({b: 1.0 for b in BRANCH_ORDER})
        bottom = FourBranchProfile({b: 0.0 for b in BRANCH_ORDER})
        assert top.eiq() == pytest.approx(130.0)
        assert bottom.eiq() == pytest.approx(70.0)

    def test_from_task_scores_aggregates_to_branches(self):
        profile = FourBranchProfile.from_task_scores(
            {"Faces": 1.0, "Pictures": 0.0, "Changes": 0.8}
        )
        assert profile.branch_score(Branch.PERCEIVING) == pytest.approx(0.5)
        assert profile.branch_score(Branch.UNDERSTANDING) == pytest.approx(0.8)
        # untouched branch stays neutral
        assert profile.branch_score(Branch.MANAGING) == pytest.approx(0.5)

    def test_from_task_scores_unknown_task(self):
        with pytest.raises(KeyError):
            FourBranchProfile.from_task_scores({"Telepathy": 1.0})

    def test_area_score_mixes_member_branches(self):
        profile = FourBranchProfile(
            {Branch.PERCEIVING: 1.0, Branch.FACILITATING: 0.0,
             Branch.UNDERSTANDING: 0.5, Branch.MANAGING: 0.5}
        )
        assert profile.area_score(Area.EXPERIENTIAL) == pytest.approx(0.5)

    def test_update_branch_smooths(self):
        profile = FourBranchProfile()
        profile.update_branch(Branch.PERCEIVING, 1.0, learning_rate=0.5)
        assert profile.branch_score(Branch.PERCEIVING) == pytest.approx(0.75)

    def test_update_branch_bad_learning_rate(self):
        with pytest.raises(ValueError):
            FourBranchProfile().update_branch(Branch.PERCEIVING, 1.0, 1.5)


class TestQuestionBank:
    def test_default_bank_size(self):
        bank = QuestionBank.default_bank(per_task=3)
        assert len(bank) == 3 * 8  # 8 Table 1 tasks

    def test_questions_cover_all_branches(self):
        bank = QuestionBank.default_bank(per_task=2)
        for branch in BRANCH_ORDER:
            assert len(bank.by_branch(branch)) == 4

    def test_duplicate_question_ids_rejected(self):
        question = next(iter(QuestionBank.default_bank(per_task=1)))
        with pytest.raises(ValueError):
            QuestionBank([question, question])

    def test_question_needs_two_options(self):
        with pytest.raises(ValueError):
            EITQuestion(
                "q", "?", Branch.PERCEIVING, "Faces",
                (AnswerOption("only", {}),),
            )

    def test_question_task_must_match_branch(self):
        options = (AnswerOption("a", {}), AnswerOption("b", {}))
        with pytest.raises(ValueError):
            EITQuestion("q", "?", Branch.PERCEIVING, "Changes", options)

    def test_option_validation(self):
        with pytest.raises(KeyError):
            AnswerOption("x", {"bliss": 0.5})
        with pytest.raises(ValueError):
            AnswerOption("x", {"hopeful": 2.0})
        with pytest.raises(ValueError):
            AnswerOption("x", {}, ability=1.5)


class TestGradualEIT:
    def setup_method(self):
        self.bank = QuestionBank.default_bank(per_task=2)
        self.eit = GradualEIT(self.bank)
        self.model = SmartUserModel(1)

    def test_one_question_per_ask(self):
        question = self.eit.ask(self.model)
        assert question is not None
        assert question.qid in self.model.asked_questions
        assert question.qid not in self.model.answered_questions

    def test_branch_coverage_balanced(self):
        branches = []
        for __ in range(4):
            branches.append(self.eit.ask(self.model).branch)
        assert len(set(branches)) == 4  # one question per branch first

    def test_never_repeats_questions(self):
        seen = set()
        while True:
            question = self.eit.ask(self.model)
            if question is None:
                break
            assert question.qid not in seen
            seen.add(question.qid)
        assert len(seen) == len(self.bank)

    def test_record_answer_activates_attributes(self):
        question = self.eit.ask(self.model)
        option = question.options[0]
        self.eit.record_answer(self.model, question, 0)
        for name, delta in option.activations.items():
            assert self.model.emotional[name] == pytest.approx(min(1.0, delta))
        assert question.qid in self.model.answered_questions

    def test_record_answer_updates_branch(self):
        question = self.eit.ask(self.model)
        before = self.model.ei_profile.branch_score(question.branch)
        self.eit.record_answer(self.model, question, 0)  # ability 0.9 option
        assert self.model.ei_profile.branch_score(question.branch) > before

    def test_record_answer_bad_option(self):
        question = self.eit.ask(self.model)
        with pytest.raises(IndexError):
            self.eit.record_answer(self.model, question, 10)

    def test_answer_matrix_shape_and_sparsity(self):
        models = [SmartUserModel(i) for i in range(5)]
        for model in models[:2]:
            question = self.eit.ask(model)
            self.eit.record_answer(model, question, 0)
        matrix, qids = self.eit.answer_matrix([m.user_id for m in models])
        assert matrix.shape == (5, len(self.bank))
        assert matrix.nnz == 2
        sparsity = self.eit.sparsity([m.user_id for m in models])
        assert sparsity == pytest.approx(1.0 - 2 / (5 * len(self.bank)))

    def test_answered_zero_ability_distinguishable_from_missing(self):
        # all stored values are shifted by +0.01 so nnz reflects answers
        question = self.eit.ask(self.model)
        self.eit.record_answer(self.model, question, 3)  # opt-out ability .5
        matrix, __ = self.eit.answer_matrix([self.model.user_id])
        assert matrix.nnz == 1
