"""Ground-truth behaviour model: calibration and outcome structure."""

import numpy as np
import pytest

from repro.core.gradual_eit import QuestionBank
from repro.datagen.behavior import BehaviorModel, BehaviorParams, TouchOutcome
from repro.datagen.catalog import CourseCatalog
from repro.datagen.population import Population


@pytest.fixture(scope="module")
def world():
    population = Population.generate(600, seed=7)
    catalog = CourseCatalog.generate(40, seed=7)
    return population, catalog, BehaviorModel(population, catalog, seed=7)


class TestResponseModel:
    def test_probability_in_unit_interval(self, world):
        population, catalog, model = world
        course = catalog.get(0)
        for user in list(population)[:50]:
            assert 0.0 <= model.response_probability(user, course) <= 1.0

    def test_matching_message_raises_probability(self, world):
        population, catalog, model = world
        course = catalog.get(0)
        attribute = max(course.attributes)
        lifted = 0
        total = 0
        for user in list(population)[:100]:
            match = model.message_match(user, attribute)
            if match > 0.2:
                total += 1
                if model.response_probability(
                    user, course, attribute
                ) > model.response_probability(user, course, None):
                    lifted += 1
        assert total > 0 and lifted == total

    def test_standard_message_zero_match(self, world):
        population, __, model = world
        assert model.message_match(population.get(0), None) == 0.0

    def test_appeal_drives_logit(self, world):
        population, catalog, model = world
        course = catalog.get(0)
        users = sorted(
            population,
            key=lambda u: course.emotional_appeal(u.traits),
        )
        low, high = users[0], users[-1]
        assert model.response_logit(high, course) > model.response_logit(low, course)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            BehaviorParams(answer_rate=1.5)
        with pytest.raises(ValueError):
            BehaviorParams(answer_temperature=0.0)


class TestOutcomeSampling:
    def test_outcome_hierarchy_holds(self, world):
        population, catalog, model = world
        course = catalog.get(1)
        for user in list(population)[:200]:
            outcome = model.simulate_touch(user, course, None, "c1")
            if outcome.transacted:
                assert outcome.clicked and outcome.opened
            if outcome.clicked:
                assert outcome.opened

    def test_touch_outcome_validates_hierarchy(self):
        with pytest.raises(ValueError):
            TouchOutcome(1, opened=False, clicked=True, transacted=False,
                         answered_option=None)
        with pytest.raises(ValueError):
            TouchOutcome(1, opened=True, clicked=False, transacted=True,
                         answered_option=None)

    def test_deterministic_per_campaign_user(self, world):
        population, catalog, model = world
        course = catalog.get(1)
        user = population.get(0)
        a = model.simulate_touch(user, course, None, "c1")
        b = model.simulate_touch(user, course, None, "c1")
        assert a == b

    def test_different_campaign_keys_vary(self, world):
        population, catalog, model = world
        course = catalog.get(1)
        outcomes = {
            model.simulate_touch(population.get(uid), course, None, key).opened
            for uid in range(30)
            for key in ("c1", "c2", "c3")
        }
        assert outcomes == {True, False}

    def test_calibrated_base_rate_near_11_percent(self, world):
        population, catalog, model = world
        rates = []
        for course_id in catalog.course_ids()[:10]:
            course = catalog.get(course_id)
            rates.append(
                np.mean([model.response_probability(u, course) for u in population])
            )
        assert 0.06 < float(np.mean(rates)) < 0.18

    def test_open_rate_exceeds_transaction_rate(self, world):
        population, catalog, model = world
        course = catalog.get(2)
        outcomes = [
            model.simulate_touch(u, course, None, "rates") for u in population
        ]
        opened = np.mean([o.opened for o in outcomes])
        transacted = np.mean([o.transacted for o in outcomes])
        assert opened > transacted


class TestEITChoice:
    def test_aligned_users_choose_matching_option(self, world):
        population, __, model = world
        bank = QuestionBank.default_bank(per_task=1)
        question = next(iter(bank))
        strong_attr = max(
            question.options[0].activations,
            key=question.options[0].activations.get,
        )
        rng = np.random.default_rng(0)
        aligned = [u for u in population if u.traits[strong_attr] > 0.7]
        flat = [u for u in population if max(u.traits.values()) < 0.4]
        if aligned and flat:
            aligned_rate = np.mean(
                [model.choose_eit_option(u, question, rng) == 0 for u in aligned]
            )
            flat_rate = np.mean(
                [model.choose_eit_option(u, question, rng) == 0 for u in flat]
            )
            assert aligned_rate > flat_rate

    def test_flat_users_prefer_opt_out(self, world):
        population, __, model = world
        bank = QuestionBank.default_bank(per_task=1)
        question = next(iter(bank))
        rng = np.random.default_rng(1)
        flat = [u for u in population if max(u.traits.values()) < 0.35][:50]
        if flat:
            choices = [model.choose_eit_option(u, question, rng) for u in flat]
            # option 3 is "prefer not to say"
            assert np.mean([c == 3 for c in choices]) > 0.3


class TestBrowsing:
    def test_browsing_deterministic(self, world):
        population, __, model = world
        a = model.generate_browsing_events(population.get(3))
        b = model.generate_browsing_events(population.get(3))
        assert [(e.timestamp, e.action) for e in a] == [
            (e.timestamp, e.action) for e in b
        ]

    def test_browsing_time_ordered(self, world):
        population, __, model = world
        events = model.generate_browsing_events(population.get(1))
        timestamps = [e.timestamp for e in events]
        assert timestamps == sorted(timestamps)

    def test_energetic_users_browse_more(self, world):
        population, __, model = world
        def energy(user):
            return np.mean([user.traits[n] for n in
                            ("enthusiastic", "motivated", "stimulated", "lively")])
        users = sorted(population, key=energy)
        lazy = np.mean([len(model.generate_browsing_events(u)) for u in users[:60]])
        keen = np.mean([len(model.generate_browsing_events(u)) for u in users[-60:]])
        assert keen > lazy

    def test_browsing_favours_appealing_courses(self, world):
        population, catalog, model = world
        users = sorted(
            population,
            key=lambda u: max(u.traits.values()),
            reverse=True,
        )
        user = users[0]
        events = model.generate_browsing_events(user)
        views = [e for e in events if e.action == "course_view"]
        if len(views) >= 5:
            appeals = [
                catalog.get(int(e.payload["target"])).emotional_appeal(user.traits)
                for e in views
            ]
            catalog_mean = np.mean(
                [c.emotional_appeal(user.traits) for c in catalog]
            )
            assert np.mean(appeals) > catalog_mean
