"""Population, catalog, actions, campaign plan, seeds, CoMoDa generators."""

import numpy as np
import pytest

from repro.core.emotions import EMOTION_NAMES
from repro.datagen.actions import ActionVocabulary, VOCABULARY_SIZE
from repro.datagen.campaigns_plan import (
    CampaignSpec,
    PAPER_TARGET_FRACTION,
    default_campaign_plan,
)
from repro.datagen.catalog import (
    AFFINITY_LINKS,
    Course,
    CourseCatalog,
    PRODUCT_ATTRIBUTES,
)
from repro.datagen.comoda import generate_comoda
from repro.datagen.population import Population, UserRecord
from repro.datagen.seeds import derive_rng
from repro.lifelog.events import ActionCategory


class TestSeeds:
    def test_same_keys_same_stream(self):
        a = derive_rng(7, "x", "y").random(5)
        b = derive_rng(7, "x", "y").random(5)
        assert np.allclose(a, b)

    def test_different_keys_different_stream(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "y").random(5)
        assert not np.allclose(a, b)

    def test_different_root_seed_different_stream(self):
        a = derive_rng(1, "x").random(5)
        b = derive_rng(2, "x").random(5)
        assert not np.allclose(a, b)


class TestActionVocabulary:
    def test_exactly_984_actions(self):
        assert len(ActionVocabulary()) == VOCABULARY_SIZE == 984

    def test_all_names_unique(self):
        vocab = ActionVocabulary()
        assert len(set(vocab.names)) == 984

    def test_every_category_represented(self):
        counts = ActionVocabulary().counts()
        assert set(counts) == {c.value for c in ActionCategory}
        assert sum(counts.values()) == 984

    def test_navigation_dominates(self):
        counts = ActionVocabulary().counts()
        assert counts["navigation"] == max(counts.values())

    def test_category_lookup(self):
        vocab = ActionVocabulary()
        name = vocab.by_category(ActionCategory.ENROLLMENT)[0]
        assert vocab.category(name) is ActionCategory.ENROLLMENT

    def test_unknown_action(self):
        with pytest.raises(KeyError):
            ActionVocabulary().category("fly_to_moon")


class TestPopulation:
    def test_generation_deterministic(self):
        a = Population.generate(50, seed=3)
        b = Population.generate(50, seed=3)
        assert a.get(10).traits == b.get(10).traits
        assert a.get(10).region == b.get(10).region

    def test_traits_cover_catalog(self):
        user = Population.generate(5).get(0)
        assert set(user.traits) == set(EMOTION_NAMES)

    def test_traits_bounded(self):
        matrix, __ = Population.generate(200).trait_matrix()
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_dominant_trait_structure_present(self):
        matrix, __ = Population.generate(500, seed=1).trait_matrix()
        # some users have strong dominant traits, baseline stays low
        assert (matrix.max(axis=1) > 0.7).mean() > 0.3
        assert np.median(matrix) < 0.35

    def test_demographics_fields(self):
        demo = Population.generate(5).get(0).demographics()
        assert set(demo) == {
            "age", "gender", "region", "education", "employment", "language",
        }

    def test_user_record_validation(self):
        traits = {n: 0.5 for n in EMOTION_NAMES}
        with pytest.raises(ValueError):
            UserRecord(1, 5, "male", "r", "e", "j", "es", traits)
        bad_traits = dict(traits, enthusiastic=1.5)
        with pytest.raises(ValueError):
            UserRecord(1, 30, "male", "r", "e", "j", "es", bad_traits)

    def test_unknown_user(self):
        with pytest.raises(KeyError):
            Population.generate(5).get(99)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Population.generate(0)


class TestCourseCatalog:
    def test_generation_deterministic(self):
        a = CourseCatalog.generate(30, seed=2)
        b = CourseCatalog.generate(30, seed=2)
        assert a.get(5).attributes == b.get(5).attributes

    def test_courses_have_2_to_5_attributes(self):
        for course in CourseCatalog.generate(50):
            assert 2 <= len(course.attributes) <= 5

    def test_course_validation(self):
        with pytest.raises(KeyError):
            Course(1, "t", "it", {"luxurious": 1.0})
        with pytest.raises(ValueError):
            Course(1, "t", "it", {"practical": 0.0})
        with pytest.raises(ValueError):
            Course(1, "t", "it", {"practical": 0.5}, price_level=9)

    def test_affinity_links_reference_known_vocab(self):
        for emotion, targets in AFFINITY_LINKS.items():
            assert emotion in EMOTION_NAMES
            for attribute in targets:
                assert attribute in PRODUCT_ATTRIBUTES

    def test_appeal_higher_for_aligned_traits(self):
        course = Course(1, "t", "it", {"innovative": 1.0, "challenging": 1.0})
        keen = {n: 0.0 for n in EMOTION_NAMES}
        keen["enthusiastic"] = 1.0
        scared = {n: 0.0 for n in EMOTION_NAMES}
        scared["frightened"] = 1.0
        assert course.emotional_appeal(keen) > course.emotional_appeal(scared)

    def test_appeal_zero_for_flat_traits(self):
        course = CourseCatalog.generate(5).get(0)
        assert course.emotional_appeal({n: 0.0 for n in EMOTION_NAMES}) == 0.0

    def test_attribute_matrix_layout(self):
        catalog = CourseCatalog.generate(10)
        matrix, ids = catalog.attribute_matrix()
        assert matrix.shape == (10, len(PRODUCT_ATTRIBUTES))
        course = catalog.get(ids[0])
        for j, name in enumerate(PRODUCT_ATTRIBUTES):
            assert matrix[0, j] == course.attributes.get(name, 0.0)


class TestCampaignPlan:
    def test_eight_push_two_newsletter(self):
        plan = default_campaign_plan(CourseCatalog.generate(30))
        channels = [spec.channel for spec in plan]
        assert channels.count("push") == 8
        assert channels.count("newsletter") == 2

    def test_paper_target_fraction(self):
        assert PAPER_TARGET_FRACTION == pytest.approx(1_340_432 / 3_162_069)
        plan = default_campaign_plan(CourseCatalog.generate(30))
        assert plan[0].target_fraction == pytest.approx(PAPER_TARGET_FRACTION)

    def test_courses_distinct_when_catalog_allows(self):
        plan = default_campaign_plan(CourseCatalog.generate(30))
        assert len({spec.course_id for spec in plan}) == 10

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec("c", "carrier-pigeon", 1)
        with pytest.raises(ValueError):
            CampaignSpec("c", "push", 1, target_fraction=0.0)


class TestComoda:
    def test_schema_and_size(self):
        ds = generate_comoda(n_users=30, n_items=20, ratings_per_user=10)
        assert len(ds.ratings) == 300
        r = ds.ratings[0]
        assert 1.0 <= r.rating <= 5.0

    def test_ratings_half_point_scale(self):
        ds = generate_comoda(n_users=20, n_items=15, ratings_per_user=8)
        assert all((r.rating * 2).is_integer() for r in ds.ratings)

    def test_context_effect_planted(self):
        ds = generate_comoda(n_users=300, n_items=60, ratings_per_user=25, seed=3)
        comedy = [r for r in ds.ratings if ds.item_genres[r.item_id] == "comedy"]
        positive = [r.rating for r in comedy if r.mood == "positive"]
        negative = [r.rating for r in comedy if r.mood == "negative"]
        assert np.mean(positive) > np.mean(negative) + 0.4

    def test_split_partitions(self):
        ds = generate_comoda(n_users=30, n_items=20, ratings_per_user=10)
        train, test = ds.split(0.25)
        assert len(train) + len(test) == len(ds.ratings)
        assert abs(len(test) / len(ds.ratings) - 0.25) < 0.02

    def test_split_deterministic(self):
        ds = generate_comoda(n_users=20, n_items=15, ratings_per_user=8)
        a_train, __ = ds.split(seed=5)
        b_train, __ = ds.split(seed=5)
        assert [(r.user_id, r.item_id) for r in a_train] == [
            (r.user_id, r.item_id) for r in b_train
        ]
