"""Agent runtime and the five SPA agents."""

import numpy as np
import pytest

from repro.agents.attributes_agent import (
    AttributesManagerAgent,
    fuse_attribute_estimates,
    select_attributes,
)
from repro.agents.interface_agent import IntelligentUserInterfaceAgent
from repro.agents.lifelog_agent import LifeLogPreprocessorAgent
from repro.agents.messages import Message
from repro.agents.messaging_agent import MessagingAgentWrapper
from repro.agents.runtime import Agent, AgentError, AgentRuntime
from repro.agents.smart_component import SmartComponentAgent
from repro.core.sum_model import SumRepository
from repro.datagen.catalog import CourseCatalog
from repro.lifelog.events import ActionCategory, Event
from repro.lifelog.store import EventLog
from repro.lifelog.weblog import event_to_line


class Echo(Agent):
    def handle(self, message, runtime):
        if message.topic == "ping":
            return [message.reply("pong", {"n": message.payload.get("n", 0)})]
        return []


class Chain(Agent):
    def __init__(self, name, limit):
        super().__init__(name)
        self.limit = limit

    def handle(self, message, runtime):
        n = message.payload.get("n", 0)
        if n >= self.limit:
            return []
        return [Message(self.name, self.name, "loop", {"n": n + 1})]


class TestRuntime:
    def test_request_reply(self):
        runtime = AgentRuntime()
        runtime.register(Echo("echo"))
        sink = Echo("sink")
        runtime.register(sink)
        runtime.send(Message("sink", "echo", "ping", {"n": 5}))
        runtime.run_until_idle()
        assert sink.handled_count == 1

    def test_duplicate_names_rejected(self):
        runtime = AgentRuntime()
        runtime.register(Echo("a"))
        with pytest.raises(AgentError):
            runtime.register(Echo("a"))

    def test_unknown_recipient_dead_letters(self):
        runtime = AgentRuntime()
        runtime.send(Message("x", "ghost", "ping"))
        runtime.run_until_idle()
        assert len(runtime.dead_letters) == 1

    def test_message_loop_guard(self):
        runtime = AgentRuntime(max_steps=50)
        runtime.register(Chain("c", limit=10_000))
        runtime.send(Message("c", "c", "loop", {"n": 0}))
        with pytest.raises(AgentError, match="loop"):
            runtime.run_until_idle()

    def test_bounded_chain_terminates(self):
        runtime = AgentRuntime()
        runtime.register(Chain("c", limit=5))
        runtime.send(Message("c", "c", "loop", {"n": 0}))
        steps = runtime.run_until_idle()
        assert steps == 6

    def test_message_validation(self):
        with pytest.raises(ValueError):
            Message("a", "", "t")
        with pytest.raises(ValueError):
            Message("a", "b", "")


class TestLifeLogAgent:
    def lines(self, n, uid=1):
        events = [
            Event(1_142_000_000.0 + i, uid, "course_view",
                  ActionCategory.NAVIGATION, payload={"target": str(i)})
            for i in range(n)
        ]
        return [event_to_line(e) for e in events]

    def test_ingest_small_batch(self):
        store = EventLog()
        runtime = AgentRuntime()
        agent = runtime.register(LifeLogPreprocessorAgent("ll", store))
        runtime.register(Echo("sink"))
        runtime.send(Message("sink", "ll", "lifelog.ingest",
                             {"lines": self.lines(10)}))
        runtime.run_until_idle()
        assert len(store) == 10
        assert agent.ingested == 10

    def test_large_batch_replicates(self):
        store = EventLog()
        runtime = AgentRuntime()
        runtime.register(LifeLogPreprocessorAgent("ll", store,
                                                  replication_threshold=20))
        runtime.register(Echo("sink"))
        runtime.send(Message("sink", "ll", "lifelog.ingest",
                             {"lines": self.lines(50)}))
        runtime.run_until_idle()
        assert len(store) == 50
        assert any(name.startswith("ll.r") for name in runtime.agent_names())

    def test_parse_errors_counted_not_fatal(self):
        store = EventLog()
        runtime = AgentRuntime()
        agent = runtime.register(LifeLogPreprocessorAgent("ll", store))
        runtime.register(Echo("sink"))
        lines = self.lines(3) + ["garbage line", "another bad one"]
        runtime.send(Message("sink", "ll", "lifelog.ingest", {"lines": lines}))
        runtime.run_until_idle()
        assert agent.parse_errors == 2
        assert len(store) == 3

    def test_extract_features_reply(self):
        store = EventLog()
        runtime = AgentRuntime()
        runtime.register(LifeLogPreprocessorAgent("ll", store))
        sink = runtime.register(_Collector("sink"))
        runtime.send(Message("sink", "ll", "lifelog.ingest",
                             {"lines": self.lines(5)}))
        runtime.send(Message("sink", "ll", "lifelog.extract", {}))
        runtime.run_until_idle()
        features_msg = [m for m in sink.got if m.topic == "lifelog.features"]
        assert features_msg and features_msg[0].payload["n_users"] == 1


class _Collector(Agent):
    def __init__(self, name):
        super().__init__(name)
        self.got = []

    def handle(self, message, runtime):
        self.got.append(message)
        return []


class TestSmartComponentAgent:
    def test_train_then_rank(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 4))
        y = (x[:, 0] > 0).astype(int)
        runtime = AgentRuntime()
        runtime.register(SmartComponentAgent("smart", estimator="logistic"))
        sink = runtime.register(_Collector("sink"))
        runtime.send(Message("sink", "smart", "smart.train", {"x": x, "y": y}))
        runtime.send(Message("sink", "smart", "smart.rank",
                             {"x": x[:10], "user_ids": list(range(10))}))
        runtime.run_until_idle()
        ranking = [m for m in sink.got if m.topic == "smart.ranking"][0]
        pairs = ranking.payload["ranking"]
        scores = [s for __, s in pairs]
        assert scores == sorted(scores, reverse=True)

    def test_score_without_model_raises(self):
        runtime = AgentRuntime()
        runtime.register(SmartComponentAgent("smart"))
        runtime.register(_Collector("sink"))
        runtime.send(Message("sink", "smart", "smart.score",
                             {"x": np.zeros((2, 2))}))
        with pytest.raises(RuntimeError):
            runtime.run_until_idle()

    def test_incremental_training(self):
        rng = np.random.default_rng(0)
        runtime = AgentRuntime()
        agent = runtime.register(SmartComponentAgent("smart"))
        runtime.register(_Collector("sink"))
        for __ in range(3):
            x = rng.normal(size=(32, 4))
            y = (x[:, 0] > 0).astype(int)
            runtime.send(Message("sink", "smart", "smart.train_incremental",
                                 {"x": x, "y": y}))
        runtime.run_until_idle()
        assert agent.online_model is not None
        assert agent.online_model.t_ == 3


class TestAttributesManagerAgent:
    def test_analyze_reports_dominant(self):
        sums = SumRepository()
        model = sums.get_or_create(1)
        for __ in range(5):
            model.activate_emotion("hopeful", 0.3)
        runtime = AgentRuntime()
        runtime.register(AttributesManagerAgent("attrs", sums))
        sink = runtime.register(_Collector("sink"))
        runtime.send(Message("sink", "attrs", "attributes.analyze",
                             {"user_ids": [1]}))
        runtime.run_until_idle()
        dominant = sink.got[0].payload["dominant"][1]
        assert dominant and dominant[0][0] == "hopeful"

    def test_fusion_weighted_average(self):
        fused = fuse_attribute_estimates(
            {"web": {"hopeful": 0.8}, "email": {"hopeful": 0.4, "shy": 0.2}},
        )
        assert fused["hopeful"] == pytest.approx(0.6)
        assert fused["shy"] == pytest.approx(0.2)

    def test_selection_finds_informative_column(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(300) < 0.5).astype(float)
        informative = labels + rng.normal(0, 0.3, 300)
        noise = rng.normal(size=300)
        matrix = np.column_stack([noise, informative])
        selected = select_attributes(matrix, ["noise", "signal"], labels, k=1)
        assert selected[0][0] == "signal"

    def test_selection_validation(self):
        with pytest.raises(ValueError):
            select_attributes(np.zeros((3, 2)), ["a"], np.zeros(3), 1)


class TestMessagingAndInterfaceAgents:
    def test_messaging_assign_roundtrip(self):
        sums = SumRepository()
        sums.get_or_create(1)
        catalog = CourseCatalog.generate(5, seed=1)
        runtime = AgentRuntime()
        runtime.register(MessagingAgentWrapper("msg", sums, catalog))
        sink = runtime.register(_Collector("sink"))
        runtime.send(Message("sink", "msg", "messaging.assign",
                             {"user_ids": [1], "course_id": 0}))
        runtime.run_until_idle()
        payload = sink.got[0].payload
        assert payload["cases"] == {"3.a": 1}
        assert len(payload["assignments"]) == 1

    def test_interface_observe_and_coherence(self):
        runtime = AgentRuntime()
        runtime.register(IntelligentUserInterfaceAgent("ui"))
        sink = runtime.register(_Collector("sink"))
        runtime.send(Message("sink", "ui", "interface.observe",
                             {"user_id": 1, "signals": {"achievement": 1.0}}))
        runtime.send(Message("sink", "ui", "interface.coherence",
                             {"user_id": 1,
                              "stated": {"achievement": 1.0, "security": 0.0}}))
        runtime.run_until_idle()
        coherence = [m for m in sink.got
                     if m.topic == "interface.coherence_report"][0]
        assert coherence.payload["coherence"] == 1.0

    def test_unknown_topic_raises(self):
        runtime = AgentRuntime()
        runtime.register(IntelligentUserInterfaceAgent("ui"))
        runtime.send(Message("x", "ui", "interface.unknown", {}))
        with pytest.raises(ValueError):
            runtime.run_until_idle()
