"""Hash and sorted index behaviour, staleness semantics."""

import pytest

from repro.db.index import HashIndex, SortedIndex, StaleIndexError
from repro.db.schema import Column, ColumnType, Schema
from repro.db.table import Table


def make_table():
    schema = Schema(
        [Column("user", ColumnType.INT64), Column("ts", ColumnType.FLOAT64)]
    )
    table = Table(schema)
    for i in range(20):
        table.append({"user": i % 4, "ts": float(20 - i)})
    return table


class TestHashIndex:
    def test_lookup_finds_all_rows(self):
        table = make_table()
        index = HashIndex(table, "user")
        rows = index.lookup(2)
        assert sorted(int(table.column("user")[r]) for r in rows) == [2] * 5

    def test_lookup_missing_value_empty(self):
        index = HashIndex(make_table(), "user")
        assert index.lookup(99).size == 0

    def test_contains(self):
        index = HashIndex(make_table(), "user")
        assert index.contains(0)
        assert not index.contains(7)

    def test_len_counts_distinct_keys(self):
        assert len(HashIndex(make_table(), "user")) == 4

    def test_stale_after_append(self):
        table = make_table()
        index = HashIndex(table, "user")
        table.append({"user": 9, "ts": 0.0})
        assert index.is_stale
        with pytest.raises(StaleIndexError):
            index.lookup(9)

    def test_auto_refresh(self):
        table = make_table()
        index = HashIndex(table, "user", auto_refresh=True)
        table.append({"user": 9, "ts": 0.0})
        assert index.lookup(9).size == 1

    def test_manual_refresh(self):
        table = make_table()
        index = HashIndex(table, "user")
        table.append({"user": 9, "ts": 0.0})
        index.refresh()
        assert index.lookup(9).size == 1


class TestSortedIndex:
    def test_range_matches_scan(self):
        table = make_table()
        index = SortedIndex(table, "ts")
        got = set(index.range(5.0, 10.0).tolist())
        ts = table.column("ts")
        expected = {i for i in range(len(table)) if 5.0 <= ts[i] <= 10.0}
        assert got == expected

    def test_half_open_window(self):
        table = make_table()
        index = SortedIndex(table, "ts")
        got = index.range(5.0, 10.0, include_high=False)
        ts = table.column("ts")
        assert all(5.0 <= ts[i] < 10.0 for i in got)

    def test_open_ended_bounds(self):
        table = make_table()
        index = SortedIndex(table, "ts")
        assert index.range(None, None).size == len(table)

    def test_empty_window(self):
        index = SortedIndex(make_table(), "ts")
        assert index.range(100.0, 200.0).size == 0

    def test_inverted_window_is_empty(self):
        index = SortedIndex(make_table(), "ts")
        assert index.range(10.0, 5.0).size == 0

    def test_min_max(self):
        index = SortedIndex(make_table(), "ts")
        assert index.min() == 1.0
        assert index.max() == 20.0

    def test_min_on_empty_table(self):
        schema = Schema([Column("x", ColumnType.INT64)])
        index = SortedIndex(Table(schema), "x")
        with pytest.raises(ValueError):
            index.min()

    def test_stale_detection(self):
        table = make_table()
        index = SortedIndex(table, "ts")
        table.append({"user": 0, "ts": -1.0})
        with pytest.raises(StaleIndexError):
            index.range(None, None)

    def test_string_column_range(self):
        schema = Schema([Column("s", ColumnType.STRING)])
        table = Table(schema)
        for value in ["pear", "apple", "fig", "banana"]:
            table.append({"s": value})
        index = SortedIndex(table, "s")
        got = index.range("banana", "fig")
        strings = {table.column("s")[i] for i in got}
        assert strings == {"banana", "fig"}
