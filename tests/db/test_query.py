"""Query builder: filters, projection, ordering, aggregation, joins."""

import pytest

from repro.db.query import Query, QueryError, hash_join
from repro.db.schema import Column, ColumnType, Schema
from repro.db.table import Table


def users_table():
    schema = Schema(
        [
            Column("id", ColumnType.INT64),
            Column("region", ColumnType.STRING),
            Column("age", ColumnType.INT64),
            Column("spend", ColumnType.FLOAT64),
        ]
    )
    rows = [
        {"id": 1, "region": "north", "age": 30, "spend": 10.0},
        {"id": 2, "region": "south", "age": 25, "spend": 20.0},
        {"id": 3, "region": "north", "age": 40, "spend": 30.0},
        {"id": 4, "region": "east", "age": 35, "spend": 0.0},
        {"id": 5, "region": "south", "age": 25, "spend": 50.0},
    ]
    return Table.from_rows(schema, rows, name="users")


def orders_table():
    schema = Schema(
        [Column("user_id", ColumnType.INT64), Column("amount", ColumnType.FLOAT64)]
    )
    rows = [
        {"user_id": 1, "amount": 5.0},
        {"user_id": 1, "amount": 7.0},
        {"user_id": 3, "amount": 9.0},
        {"user_id": 9, "amount": 1.0},
    ]
    return Table.from_rows(schema, rows, name="orders")


class TestWhere:
    def test_eq(self):
        assert Query(users_table()).where("region", "==", "north").count() == 2

    def test_combined_predicates_and(self):
        q = Query(users_table()).where("region", "==", "south").where("age", "<", 26)
        assert q.count() == 2

    def test_in_operator(self):
        q = Query(users_table()).where("region", "in", ["north", "east"])
        assert q.count() == 3

    def test_not_in_operator(self):
        q = Query(users_table()).where("region", "not in", ["north"])
        assert q.count() == 3

    def test_where_fn(self):
        q = Query(users_table()).where_fn("age", lambda a: (a % 2) == 0)
        assert {r["id"] for r in q.rows()} == {1, 3}

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            Query(users_table()).where("age", "~=", 1)

    def test_unknown_column(self):
        with pytest.raises(QueryError):
            Query(users_table()).where("nope", "==", 1)


class TestProjectOrderLimit:
    def test_select_projects_in_order(self):
        result = Query(users_table()).select(["age", "id"]).to_table()
        assert result.schema.names == ["age", "id"]

    def test_order_by_descending(self):
        result = Query(users_table()).order_by("spend", descending=True).to_table()
        assert [r["id"] for r in result.rows()][:2] == [5, 3]

    def test_multi_key_ordering(self):
        q = Query(users_table()).order_by("age").order_by("spend", descending=True)
        ids = [r["id"] for r in q.rows()]
        assert ids == [5, 2, 1, 4, 3]

    def test_limit(self):
        assert Query(users_table()).order_by("id").limit(2).count() == 2

    def test_negative_limit(self):
        with pytest.raises(QueryError):
            Query(users_table()).limit(-1)


class TestAggregation:
    def test_whole_table_aggregates(self):
        out = Query(users_table()).aggregate(
            {"spend": "sum", "age": "mean", "region": "nunique"}
        )
        assert out["sum(spend)"] == 110.0
        assert out["mean(age)"] == 31.0
        assert out["nunique(region)"] == 3

    def test_aggregate_on_empty_selection(self):
        out = Query(users_table()).where("age", ">", 100).aggregate(
            {"spend": "min", "id": "count"}
        )
        assert out["min(spend)"] is None
        assert out["count(id)"] == 0

    def test_group_by(self):
        result = Query(users_table()).group_by(
            "region", {"spend": "sum", "id": "count"}
        )
        rows = {r["region"]: r for r in result.rows()}
        assert rows["north"]["sum(spend)"] == 40.0
        assert rows["south"]["count(id)"] == 2

    def test_group_by_unknown_aggregate(self):
        with pytest.raises(QueryError):
            Query(users_table()).group_by("region", {"spend": "median"})


class TestJoin:
    def test_inner_join_matches(self):
        joined = hash_join(users_table(), orders_table(), on="id", right_on="user_id")
        assert len(joined) == 3  # user 1 twice, user 3 once; user 9 dropped
        amounts = sorted(r["amount"] for r in joined.rows())
        assert amounts == [5.0, 7.0, 9.0]

    def test_join_keeps_left_columns(self):
        joined = hash_join(users_table(), orders_table(), on="id", right_on="user_id")
        assert "region" in joined.schema
        assert "user_id" not in joined.schema

    def test_join_renames_collisions(self):
        left = users_table()
        right = users_table()
        joined = hash_join(left, right, on="id")
        assert "region_right" in joined.schema

    def test_join_unknown_key(self):
        with pytest.raises(QueryError):
            hash_join(users_table(), orders_table(), on="id", right_on="zz")
