"""Persistence round-trips and catalog lifecycle."""

import pytest

from repro.db.catalog import Catalog, CatalogError
from repro.db.schema import Column, ColumnType, Schema
from repro.db.storage import StorageError, load_table, save_table
from repro.db.table import Table


def sample_table(name="t"):
    schema = Schema(
        [
            Column("id", ColumnType.INT64),
            Column("x", ColumnType.FLOAT64),
            Column("s", ColumnType.STRING),
            Column("flag", ColumnType.BOOL),
        ]
    )
    rows = [
        {"id": 1, "x": 1.5, "s": "hello", "flag": True},
        {"id": 2, "x": -0.25, "s": "wörld ünïcode", "flag": False},
        {"id": 3, "x": 0.0, "s": "", "flag": True},
    ]
    return Table.from_rows(schema, rows, name=name)


class TestStorage:
    @pytest.mark.parametrize("extension", [".jsonl", ".npz"])
    def test_round_trip(self, tmp_path, extension):
        table = sample_table()
        path = save_table(table, tmp_path / f"data{extension}")
        loaded = load_table(path)
        assert loaded.schema.names == table.schema.names
        assert list(loaded.rows()) == list(table.rows())

    def test_unsupported_extension(self, tmp_path):
        with pytest.raises(StorageError):
            save_table(sample_table(), tmp_path / "data.csv")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_table(tmp_path / "missing.npz")

    def test_jsonl_missing_sidecar(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"id": 1}\n')
        with pytest.raises(StorageError, match="sidecar"):
            load_table(path)

    def test_empty_table_round_trip(self, tmp_path):
        schema = Schema([Column("a", ColumnType.INT64)])
        table = Table(schema, name="empty")
        loaded = load_table(save_table(table, tmp_path / "e.npz"))
        assert len(loaded) == 0
        assert loaded.schema.names == ["a"]


class TestCatalog:
    def test_create_get_drop(self):
        catalog = Catalog()
        schema = Schema([Column("a", ColumnType.INT64)])
        catalog.create_table("t1", schema)
        assert "t1" in catalog
        catalog.drop("t1")
        assert "t1" not in catalog

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        schema = Schema([Column("a", ColumnType.INT64)])
        catalog.create_table("t1", schema)
        with pytest.raises(CatalogError):
            catalog.create_table("t1", schema)

    def test_register_unnamed_rejected(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.register(Table(Schema([Column("a", ColumnType.INT64)])))

    def test_get_unknown(self):
        with pytest.raises(CatalogError):
            Catalog().get("zzz")

    def test_describe(self):
        catalog = Catalog()
        catalog.register(sample_table("users"))
        description = catalog.describe()
        assert description["users"]["rows"] == 3

    def test_directory_round_trip(self, tmp_path):
        catalog = Catalog()
        catalog.register(sample_table("users"))
        catalog.register(sample_table("events"))
        catalog.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat")
        assert loaded.table_names() == ["events", "users"]
        assert list(loaded.get("users").rows()) == list(
            catalog.get("users").rows()
        )

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            Catalog.load(tmp_path / "nothing")


class TestArrayPages:
    """Dense .npy pages + manifest meta: the mmap-able serving layout."""

    def test_catalog_round_trips_arrays_and_meta(self, tmp_path):
        import numpy as np

        catalog = Catalog()
        catalog.register(sample_table("t"))
        values = np.arange(12.0).reshape(3, 4)
        mask = values > 5
        catalog.put_array("t__values", values)
        catalog.put_array("t__mask", mask)
        catalog.meta["layout"] = {"order": ["a", "b", "c", "d"]}
        catalog.save(tmp_path / "cat")

        loaded = Catalog.load(tmp_path / "cat")
        assert loaded.array_names() == ["t__mask", "t__values"]
        assert np.array_equal(loaded.array("t__values"), values)
        assert np.array_equal(loaded.array("t__mask"), mask)
        assert loaded.meta == {"layout": {"order": ["a", "b", "c", "d"]}}
        assert (tmp_path / "cat" / "t__values.npy").exists()

    def test_mmap_arrays_are_read_only_maps(self, tmp_path):
        import numpy as np

        catalog = Catalog()
        catalog.put_array("page", np.arange(6, dtype=np.int64))
        catalog.save(tmp_path / "cat")
        loaded = Catalog.load(tmp_path / "cat", mmap_arrays=True)
        page = loaded.array("page")
        assert isinstance(page, np.memmap)
        assert not page.flags.writeable
        with pytest.raises(ValueError):
            page[0] = 9
        assert np.array_equal(page, np.arange(6))

    def test_array_registry_validation(self):
        import numpy as np

        catalog = Catalog()
        catalog.put_array("a", np.zeros(3))
        with pytest.raises(CatalogError):
            catalog.put_array("a", np.zeros(3))
        with pytest.raises(CatalogError):
            catalog.put_array("", np.zeros(3))
        with pytest.raises(CatalogError):
            catalog.put_array("objs", np.asarray(["x"], dtype=object))
        with pytest.raises(CatalogError):
            catalog.array("missing")

    def test_page_helpers_validate(self, tmp_path):
        import numpy as np

        from repro.db.storage import load_array_page, save_array_page

        with pytest.raises(StorageError, match=".npy"):
            save_array_page(np.zeros(2), tmp_path / "bad.npz")
        with pytest.raises(StorageError, match="no such"):
            load_array_page(tmp_path / "missing.npy")
        path = save_array_page(np.zeros((2, 2)), tmp_path / "ok.npy")
        assert load_array_page(path).shape == (2, 2)

    def test_catalogs_without_arrays_stay_compatible(self, tmp_path):
        catalog = Catalog()
        catalog.register(sample_table("only"))
        catalog.save(tmp_path / "plain")
        loaded = Catalog.load(tmp_path / "plain")
        assert loaded.array_names() == [] and loaded.meta == {}
        assert len(loaded.get("only")) == 3
