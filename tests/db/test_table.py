"""Columnar table behaviour."""

import numpy as np
import pytest

from repro.db.schema import Column, ColumnType, Schema, SchemaError
from repro.db.table import Table


def make_schema() -> Schema:
    return Schema(
        [
            Column("id", ColumnType.INT64),
            Column("value", ColumnType.FLOAT64),
            Column("tag", ColumnType.STRING),
        ]
    )


def make_table(n: int = 5) -> Table:
    table = Table(make_schema(), name="t")
    for i in range(n):
        table.append({"id": i, "value": i * 0.5, "tag": f"tag{i % 2}"})
    return table


class TestAppend:
    def test_append_returns_row_ids(self):
        table = Table(make_schema())
        assert table.append({"id": 1, "value": 0.0, "tag": "a"}) == 0
        assert table.append({"id": 2, "value": 0.0, "tag": "b"}) == 1

    def test_append_grows_past_initial_capacity(self):
        table = make_table(100)
        assert len(table) == 100
        assert table.row(99)["id"] == 99

    def test_append_bad_row_rejected(self):
        table = Table(make_schema())
        with pytest.raises(SchemaError):
            table.append({"id": "x", "value": 0.0, "tag": "a"})

    def test_extend_returns_ids_and_bumps_version(self):
        table = Table(make_schema())
        before = table.version
        ids = table.extend(
            {"id": i, "value": 0.0, "tag": "a"} for i in range(3)
        )
        assert ids == [0, 1, 2]
        assert table.version > before


class TestFromColumns:
    def test_bulk_construction(self):
        table = Table.from_columns(
            make_schema(),
            {"id": [1, 2], "value": [0.1, 0.2], "tag": ["a", "b"]},
        )
        assert len(table) == 2
        assert table.row(1) == {"id": 2, "value": 0.2, "tag": "b"}

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError, match="ragged"):
            Table.from_columns(
                make_schema(),
                {"id": [1], "value": [0.1, 0.2], "tag": ["a", "b"]},
            )

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError, match="missing"):
            Table.from_columns(make_schema(), {"id": [1], "value": [0.1]})

    def test_empty_columns_ok(self):
        table = Table.from_columns(
            make_schema(), {"id": [], "value": [], "tag": []}
        )
        assert len(table) == 0


class TestReads:
    def test_column_is_readonly(self):
        table = make_table()
        column = table.column("id")
        with pytest.raises(ValueError):
            column[0] = 99

    def test_column_excludes_spare_capacity(self):
        table = make_table(3)
        assert len(table.column("id")) == 3

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            make_table(2).row(2)

    def test_rows_iterates_in_order(self):
        ids = [row["id"] for row in make_table(4).rows()]
        assert ids == [0, 1, 2, 3]

    def test_row_returns_python_types(self):
        row = make_table(1).row(0)
        assert isinstance(row["id"], int)
        assert isinstance(row["value"], float)
        assert isinstance(row["tag"], str)

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            make_table().column("zzz")


class TestTransforms:
    def test_take_reorders(self):
        taken = make_table(5).take([3, 1])
        assert [r["id"] for r in taken.rows()] == [3, 1]

    def test_take_out_of_range(self):
        with pytest.raises(IndexError):
            make_table(3).take([5])

    def test_mask_filters(self):
        table = make_table(6)
        masked = table.mask(np.asarray(table.column("id")) % 2 == 0)
        assert [r["id"] for r in masked.rows()] == [0, 2, 4]

    def test_mask_wrong_shape(self):
        with pytest.raises(ValueError):
            make_table(3).mask(np.ones(5, dtype=bool))

    def test_to_columns_returns_copies(self):
        table = make_table(3)
        columns = table.to_columns()
        columns["id"][0] = 99
        assert table.row(0)["id"] == 0
