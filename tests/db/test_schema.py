"""Schema validation and coercion."""

import pytest

from repro.db.schema import Column, ColumnType, Schema, SchemaError


def make_schema() -> Schema:
    return Schema(
        [
            Column("id", ColumnType.INT64),
            Column("score", ColumnType.FLOAT64),
            Column("name", ColumnType.STRING),
            Column("active", ColumnType.BOOL),
        ]
    )


class TestColumnType:
    def test_int_coerce_accepts_integral_float(self):
        assert ColumnType.INT64.coerce(3.0) == 3

    def test_int_coerce_rejects_fractional_float(self):
        with pytest.raises(SchemaError):
            ColumnType.INT64.coerce(3.5)

    def test_int_coerce_rejects_bool(self):
        with pytest.raises(SchemaError):
            ColumnType.INT64.coerce(True)

    def test_float_coerce_accepts_int(self):
        assert ColumnType.FLOAT64.coerce(3) == 3.0

    def test_float_coerce_rejects_bool(self):
        with pytest.raises(SchemaError):
            ColumnType.FLOAT64.coerce(False)

    def test_bool_coerce_rejects_int(self):
        with pytest.raises(SchemaError):
            ColumnType.BOOL.coerce(1)

    def test_string_coerce_rejects_number(self):
        with pytest.raises(SchemaError):
            ColumnType.STRING.coerce(12)

    def test_string_coerce_accepts_empty(self):
        assert ColumnType.STRING.coerce("") == ""

    def test_coerce_rejects_none(self):
        for ctype in ColumnType:
            with pytest.raises(SchemaError):
                ctype.coerce(None)


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ColumnType.INT64), Column("a", ColumnType.BOOL)])

    def test_empty_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT64)

    def test_names_in_order(self):
        assert make_schema().names == ["id", "score", "name", "active"]

    def test_contains(self):
        schema = make_schema()
        assert "id" in schema
        assert "missing" not in schema

    def test_column_lookup_unknown(self):
        with pytest.raises(SchemaError):
            make_schema().column("missing")

    def test_index_of(self):
        assert make_schema().index_of("name") == 2

    def test_coerce_row_happy_path(self):
        row = make_schema().coerce_row(
            {"id": 1, "score": 2, "name": "x", "active": True}
        )
        assert row == {"id": 1, "score": 2.0, "name": "x", "active": True}

    def test_coerce_row_missing_column(self):
        with pytest.raises(SchemaError, match="missing"):
            make_schema().coerce_row({"id": 1, "score": 2.0, "name": "x"})

    def test_coerce_row_unexpected_column(self):
        with pytest.raises(SchemaError, match="unexpected"):
            make_schema().coerce_row(
                {"id": 1, "score": 2.0, "name": "x", "active": True, "zz": 1}
            )

    def test_project_subset_order(self):
        projected = make_schema().project(["name", "id"])
        assert projected.names == ["name", "id"]

    def test_project_unknown_column(self):
        with pytest.raises(SchemaError):
            make_schema().project(["nope"])

    def test_dict_round_trip(self):
        schema = make_schema()
        clone = Schema.from_dict(schema.to_dict())
        assert clone.names == schema.names
        assert [c.ctype for c in clone] == [c.ctype for c in schema]
