"""A3 — ablation: SVD rank on the sparse EIT answer matrix.

Section 5.2: "it is important to note that in many occasions users do not
answer questions which produce ... the sparsity problem in data.  To
reduce the dimensionality of the matrix generated we use ..." — this bench
sweeps the truncation rank and reports reconstruction quality and the
ranking value of the embeddings.
"""

import numpy as np

from benchmarks.conftest import record_artifact
from repro.ml.metrics import roc_auc
from repro.ml.svd import TruncatedSVD


def test_ablation_svd_rank(business_case, benchmark):
    engine = business_case.spa.engine
    user_ids = engine.sums.user_ids()
    matrix, question_ids = engine.eit.answer_matrix(user_ids)
    sparsity = engine.eit.sparsity(user_ids)

    # Outcome label per user: did they ever transact?
    transacted_users = {
        uid for uid, __c, label in engine._training_rows if label
    }
    labels = np.asarray([int(uid in transacted_users) for uid in user_ids])

    rows = []
    aucs = {}
    for rank in (2, 4, 8, 16, 32):
        effective = min(rank, min(matrix.shape) - 1)
        svd = TruncatedSVD(rank=effective).fit(matrix)
        embedding = svd.transform(matrix)
        error = svd.reconstruction_error(matrix)
        # 1-D probe: best single latent dimension as a ranking score.
        dimension_aucs = []
        for j in range(embedding.shape[1]):
            if embedding[:, j].std() > 0:
                auc = roc_auc(labels, embedding[:, j])
                dimension_aucs.append(max(auc, 1.0 - auc))
        aucs[rank] = max(dimension_aucs)
        rows.append(
            f"rank {rank:3d} | recon.err {error:.3f} | "
            f"best-dim AUC {aucs[rank]:.3f}"
        )

    text = "\n".join(
        [
            f"answer matrix: {matrix.shape[0]} users x "
            f"{matrix.shape[1]} questions, sparsity {sparsity:.1%}",
            *rows,
        ]
    )
    record_artifact("A3_ablation_svd_rank", text)

    benchmark(lambda: TruncatedSVD(rank=8).fit_transform(matrix))

    # The sparsity problem is real (paper's premise) ...
    assert sparsity > 0.5
    # ... and the latent structure carries outcome signal.
    assert max(aucs.values()) > 0.55
