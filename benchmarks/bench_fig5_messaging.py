"""E4 — Fig. 5: individualized messages for the three sensibility cases.

Regenerates sample messages for each case of Section 5.3 step 3 (standard,
single attribute, several-by-priority, several-by-max-sensibility), prints
the case distribution over a learned population, and times assignment
throughput.
"""

import numpy as np

from benchmarks.conftest import record_artifact
from repro.core.sum_model import SmartUserModel
from repro.datagen.catalog import Course
from repro.messaging.assigner import AssignmentCase, MessageAssigner, TieBreak
from repro.messaging.templates import default_template_bank


def showcase_course() -> Course:
    return Course(
        1,
        "Advanced Project Management",
        "business",
        {
            "innovative": 0.9,
            "job-oriented": 1.0,
            "certified": 0.8,
            "supportive-community": 0.7,
        },
    )


def make_users():
    """One SUM per Fig. 5 sub-figure."""
    none = SmartUserModel(100)  # case 3.a

    single = SmartUserModel(101)  # case 3.b — enthusiastic only
    single.set_sensibility("enthusiastic", 0.9)

    several = SmartUserModel(102)  # case 3.c — several sensibilities
    several.set_sensibility("motivated", 0.95)
    several.set_sensibility("enthusiastic", 0.55)
    several.set_sensibility("empathic", 0.75)
    return none, single, several


def test_fig5_messaging_cases(benchmark):
    course = showcase_course()
    bank = default_template_bank()
    by_sensibility = MessageAssigner(bank, tie_break=TieBreak.MAX_SENSIBILITY)
    by_priority = MessageAssigner(bank, tie_break=TieBreak.PRIORITY)
    none, single, several = make_users()

    a = by_sensibility.assign(none, course)
    b = by_sensibility.assign(single, course)
    c_i = by_priority.assign(several, course)
    c_ii = by_sensibility.assign(several, course)

    lines = [
        f"(a)  case {a.case.value}: {a.text}",
        f"(b)  case {b.case.value} [{b.attribute}]: {b.text}",
        f"(c.i)  case {c_i.case.value} [{c_i.attribute}; "
        f"matched {', '.join(c_i.matched)}]: {c_i.text}",
        f"(c.ii) case {c_ii.case.value} [{c_ii.attribute}]: {c_ii.text}",
    ]
    record_artifact("Fig5_individualized_messages", "\n".join(lines))

    assert a.case is AssignmentCase.STANDARD
    assert b.case is AssignmentCase.SINGLE and b.attribute == "innovative"
    assert c_i.case is AssignmentCase.PRIORITY
    assert c_ii.case is AssignmentCase.MAX_SENSIBILITY
    assert len(c_i.matched) >= 2

    # Throughput: assign messages for a synthetic block of users.
    rng = np.random.default_rng(0)
    users = []
    for uid in range(500):
        model = SmartUserModel(uid)
        for name in ("motivated", "enthusiastic", "frightened", "shy"):
            if rng.random() < 0.4:
                model.set_sensibility(name, float(rng.uniform(0.3, 1.0)))
        users.append(model)

    def assign_block():
        return [by_sensibility.assign(u, course) for u in users]

    assignments = benchmark(assign_block)
    distribution = by_sensibility.case_distribution(assignments)
    # All three top-level case families must occur in a mixed population.
    assert "3.a" in distribution
    assert "3.b" in distribution
    assert any(key.startswith("3.c") for key in distribution)


def test_fig5_distribution_from_learned_population(business_case, benchmark):
    last_campaign = business_case.results[-1]
    distribution = benchmark(last_campaign.case_distribution)
    text = "\n".join(
        f"case {case}: {count} users"
        for case, count in sorted(distribution.items())
    )
    record_artifact("Fig5_case_distribution_learned", text)
    # After ten campaigns of Gradual EIT, personalization must be active.
    personalized = sum(
        count for case, count in distribution.items() if case != "3.a"
    )
    assert personalized > 0.02 * last_campaign.n_targets
