"""S2 — streaming: live Fig. 4 loop throughput and update-to-visible latency.

Replays a ≥50k-event LifeLog firehose through the sharded streaming
subsystem (:class:`~repro.streaming.updater.StreamingUpdater`) and
checks the two production claims:

* **correctness** — the SUM population after the sharded, batched,
  at-least-once replay is bit-equal (within float tolerance) to applying
  the same events sequentially through
  :meth:`EmotionalContextPipeline.apply_event`;
* **speed** — sustained end-to-end throughput (submit → applied →
  version visible → write-behind flushed) of at least 10k events/sec,
  with p50/p99 update-to-visible latency reported.

Smoke mode for CI (fewer events, relaxed floor)::

    BENCH_SMOKE=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_streaming_throughput.py -q

Full run::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming_throughput.py -q
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import record_artifact
from repro.core.gradual_eit import GradualEIT, QuestionBank
from repro.core.pipeline import EmotionalContextPipeline
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore
from repro.datagen.catalog import CourseCatalog
from repro.lifelog.events import ActionCategory, Event
from repro.lifelog.store import EventLog
from repro.streaming import EventUpdateMapper, ReplayDriver, StreamingUpdater

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_EVENTS = 8_000 if SMOKE else 50_000
N_USERS = 1_000 if SMOKE else 5_000
N_COURSES = 120
N_SHARDS = 4
#: sustained end-to-end floor, events/sec (relaxed under CI smoke mode)
THROUGHPUT_FLOOR = 2_000.0 if SMOKE else 10_000.0
#: phase 2 (latency) settings: paced below capacity so queues stay shallow
N_PACED = 2_000 if SMOKE else 10_000
PACED_RATE = 1_000.0 if SMOKE else 5_000.0

#: (action, category, weight) mix of the synthetic firehose
ACTION_MIX = [
    ("course_view", ActionCategory.NAVIGATION, 0.55),
    ("catalog_search", ActionCategory.NAVIGATION, 0.13),
    ("course_info", ActionCategory.INFO_REQUEST, 0.12),
    ("course_enroll", ActionCategory.ENROLLMENT, 0.05),
    ("course_rate", ActionCategory.RATING, 0.08),
    ("push_open", ActionCategory.CAMPAIGN, 0.04),
    ("push_click", ActionCategory.CAMPAIGN, 0.03),
]


def generate_firehose(
    n_events: int, n_users: int, catalog: CourseCatalog, seed: int = 7
) -> list[Event]:
    """A deterministic high-rate LifeLog stream with a realistic mix."""
    rng = np.random.default_rng(seed)
    course_ids = catalog.course_ids()
    weights = np.asarray([w for __, __, w in ACTION_MIX])
    kinds = rng.choice(len(ACTION_MIX), size=n_events, p=weights / weights.sum())
    users = rng.integers(0, n_users, size=n_events)
    courses = rng.choice(course_ids, size=n_events)
    ratings = rng.integers(1, 6, size=n_events)
    events: list[Event] = []
    for i in range(n_events):
        action, category, __ = ACTION_MIX[int(kinds[i])]
        payload: dict = {"target": str(int(courses[i]))}
        if action == "catalog_search":
            payload = {"q": catalog.get(int(courses[i])).area}
        elif action == "course_rate":
            payload["value"] = str(int(ratings[i]))
        events.append(Event(
            timestamp=1_141_000_000.0 + float(i),
            user_id=int(users[i]),
            action=action,
            category=category,
            payload=payload,
        ))
    return events


def sequential_reference(
    events: list[Event], item_emotions: dict, policy: ReinforcementPolicy
) -> tuple[SumRepository, float]:
    """Events applied one at a time through the Fig. 4 pipeline."""
    sums = SumRepository()
    pipeline = EmotionalContextPipeline(
        GradualEIT(QuestionBank.default_bank()), policy
    )
    mapper = EventUpdateMapper(item_emotions)
    start = time.perf_counter()
    for event in events:
        pipeline.apply_event(sums.get_or_create(event.user_id), event, mapper)
    return sums, time.perf_counter() - start


def max_state_diff(reference: SumRepository, live: SumRepository) -> float:
    assert reference.user_ids() == live.user_ids()
    worst = 0.0
    for uid in reference.user_ids():
        expected, actual = reference.get(uid), live.get(uid)
        diff = np.max(np.abs(
            actual.emotional_vector() - expected.emotional_vector()
        ))
        worst = max(worst, float(diff))
        assert set(actual.sensibility) == set(expected.sensibility)
        for name, weight in expected.sensibility.items():
            worst = max(worst, abs(actual.sensibility[name] - weight))
    return worst


def test_streaming_throughput_and_equivalence():
    catalog = CourseCatalog.generate(N_COURSES, seed=7)
    item_emotions = catalog.emotion_links()
    policy = ReinforcementPolicy()
    events = generate_firehose(N_EVENTS, N_USERS, catalog)

    reference, sequential_seconds = sequential_reference(
        events, item_emotions, policy
    )

    live = SumRepository()
    log = EventLog(segment_rows=50_000)
    updater = StreamingUpdater(
        live, item_emotions, policy=policy, event_log=log,
        n_shards=N_SHARDS, queue_capacity=4_096, batch_max=512,
    )
    start = time.perf_counter()
    with updater:
        publish_stats = ReplayDriver(updater).replay(events)
        assert updater.drain(timeout=300.0)
        end_to_end_seconds = time.perf_counter() - start

    stats = updater.stats()
    assert stats.applied == N_EVENTS
    assert stats.dead_lettered == 0
    assert len(log) == N_EVENTS  # write-behind persisted everything

    worst = max_state_diff(reference, live)
    assert worst < 1e-9, f"streamed state diverged by {worst}"

    sustained = N_EVENTS / end_to_end_seconds

    # -- columnar backend: same firehose, vectorized batch commits -------
    # The PR-3 contract at full stream scale: the struct-of-arrays store
    # behind the sharded workers must land on *the same JSON state* as
    # the sequential object-backed pipeline — not merely close.
    columnar = ColumnarSumStore()
    columnar_updater = StreamingUpdater(
        columnar, item_emotions, policy=policy,
        n_shards=N_SHARDS, queue_capacity=4_096, batch_max=512,
    )
    start = time.perf_counter()
    with columnar_updater:
        ReplayDriver(columnar_updater).replay(events)
        assert columnar_updater.drain(timeout=300.0)
        columnar_seconds = time.perf_counter() - start
    assert columnar_updater.stats().applied == N_EVENTS
    assert columnar.dumps() == reference.dumps(), (
        "columnar streamed state is not bit-equal to the sequential "
        "object-backed reference"
    )
    columnar_sustained = N_EVENTS / columnar_seconds

    # -- phase 2: paced replay, update-to-visible latency ----------------
    # Flat-out replay saturates the bounded queues, so its latencies
    # measure queue depth, not the subsystem.  Latency is reported from a
    # separate paced run at ~half capacity, where queues stay shallow.
    paced_events = events[:N_PACED]
    paced = StreamingUpdater(
        SumRepository(), item_emotions, policy=policy,
        n_shards=N_SHARDS, queue_capacity=4_096, batch_max=512,
    )
    with paced:
        ReplayDriver(paced, rate=PACED_RATE, chunk=128).replay(paced_events)
        assert paced.drain(timeout=300.0)
    latencies = np.asarray(paced.latencies())
    assert latencies.size == len(paced_events)
    p50_ms = float(np.percentile(latencies, 50)) * 1e3
    p99_ms = float(np.percentile(latencies, 99)) * 1e3

    lines = [
        f"streaming replay: {N_EVENTS} events, {N_USERS} users, "
        f"{N_SHARDS} shards{' [SMOKE]' if SMOKE else ''}",
        f"  sequential pipeline reference:  {sequential_seconds:.3f} s "
        f"({N_EVENTS / sequential_seconds:,.0f} ev/s)",
        f"  streamed end-to-end:            {end_to_end_seconds:.3f} s "
        f"({sustained:,.0f} ev/s sustained)",
        f"  streamed, columnar backend:     {columnar_seconds:.3f} s "
        f"({columnar_sustained:,.0f} ev/s sustained; state bit-equal "
        "to sequential)",
        f"  publish-side rate:              "
        f"{publish_stats.events_per_sec:,.0f} ev/s",
        f"  update-to-visible latency at {PACED_RATE:,.0f} ev/s paced "
        f"({len(paced_events)} events): p50 {p50_ms:.2f} ms, "
        f"p99 {p99_ms:.2f} ms",
        f"  applied batches: {stats.batches}   ops: {stats.ops_applied}   "
        f"write-behind flushes: {stats.flush_count}",
        f"  max |state difference| vs sequential: {worst:.2e}",
    ]
    # Smoke runs land in their own file so a local/CI smoke pass never
    # clobbers the committed full-run numbers.
    record_artifact(
        "S2_streaming_throughput_smoke" if SMOKE
        else "S2_streaming_throughput",
        "\n".join(lines),
    )

    assert sustained >= THROUGHPUT_FLOOR, (
        f"sustained {sustained:,.0f} ev/s below the "
        f"{THROUGHPUT_FLOOR:,.0f} ev/s floor"
    )
    assert p99_ms < 1_000.0, f"paced p99 latency {p99_ms:.1f} ms"
