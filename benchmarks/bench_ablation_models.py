"""A2 — ablation: the paper's SVM vs classical baselines.

Section 5.2 chose SVMs; this bench trains each estimator of
:mod:`repro.ml` on the shared run's touches and compares ranking quality
and fit time.
"""

import time


from benchmarks.conftest import record_artifact
from benchmarks.bench_ablation_emotion_features import build_matrix
from repro.campaigns.propensity import PropensityModel
from repro.ml.metrics import gain_at, roc_auc

ESTIMATORS = ("svm", "logistic", "naive_bayes", "knn")


def test_ablation_model_choice(business_case, benchmark):
    engine = business_case.spa.engine
    x, labels = build_matrix(engine, include_emotional=True)
    split = int(len(x) * 0.6)
    # kNN prediction over tens of thousands of rows is quadratic; cap the
    # evaluation slice so the bench stays laptop-friendly.
    eval_ids = slice(split, min(split + 4_000, len(x)))

    rows = []
    results = {}
    for name in ESTIMATORS:
        train_x, train_y = x[:split], labels[:split]
        if name == "knn":
            train_x, train_y = train_x[:3_000], train_y[:3_000]
        started = time.perf_counter()
        model = PropensityModel(name, seed=7).fit(train_x, train_y)
        fit_seconds = time.perf_counter() - started
        scores = model.decision_function(x[eval_ids])
        auc = roc_auc(labels[eval_ids], scores)
        gain = gain_at(labels[eval_ids], scores, 0.4)
        results[name] = (auc, gain)
        rows.append(f"{name:12s} {auc:7.3f} {gain:9.3f} {fit_seconds:9.2f}s")

    text = "\n".join(
        [f"{'estimator':12s} {'AUC':>7s} {'gain@40%':>9s} {'fit time':>10s}",
         "-" * 44, *rows]
    )
    record_artifact("A2_ablation_model_choice", text)

    def refit_svm():
        return PropensityModel("svm", seed=7).fit(x[:split], labels[:split])

    benchmark.pedantic(refit_svm, rounds=1, iterations=1)

    # The paper's choice must be competitive: within 0.03 AUC of the best.
    best_auc = max(auc for auc, __ in results.values())
    assert results["svm"][0] >= best_auc - 0.03
    # And clearly informative in absolute terms.
    assert results["svm"][0] > 0.6
