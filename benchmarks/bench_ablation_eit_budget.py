"""A4 — ablation: the Gradual EIT question budget.

Section 3 argues for *gradual*, non-intrusive acquisition.  This bench
sweeps the per-user question budget and measures how well the learned
emotional vectors recover the latent traits — quantifying the value of
each additional question.
"""

import numpy as np

from benchmarks.conftest import record_artifact
from repro.core.emotions import EMOTION_NAMES
from repro.core.gradual_eit import GradualEIT, QuestionBank
from repro.core.sum_model import SmartUserModel
from repro.datagen.behavior import BehaviorModel
from repro.datagen.catalog import CourseCatalog
from repro.datagen.population import Population


def recovery_at_budget(budget: int, n_users: int = 300, seed: int = 7) -> float:
    population = Population.generate(n_users, seed=seed)
    catalog = CourseCatalog.generate(20, seed=seed)
    world = BehaviorModel(population, catalog, seed=seed)
    eit = GradualEIT(QuestionBank.default_bank(per_task=5))
    rng = np.random.default_rng(seed)

    learned = []
    latent = []
    for user in population:
        model = SmartUserModel(user.user_id)
        for __ in range(budget):
            question = eit.ask(model)
            if question is None:
                break
            option = world.choose_eit_option(user, question, rng)
            eit.record_answer(model, question, option)
        learned.append(model.emotional.as_vector(EMOTION_NAMES))
        latent.append(user.trait_vector())
    learned_matrix = np.vstack(learned)
    latent_matrix = np.vstack(latent)
    correlations = []
    for j in range(len(EMOTION_NAMES)):
        if learned_matrix[:, j].std() > 0:
            correlations.append(
                float(np.corrcoef(learned_matrix[:, j], latent_matrix[:, j])[0, 1])
            )
    return float(np.mean(correlations)) if correlations else 0.0


def test_ablation_eit_budget(benchmark):
    budgets = (0, 2, 5, 10, 20, 40)
    recovery = {b: recovery_at_budget(b) for b in budgets}

    lines = ["questions/user | mean corr(learned, latent traits)"]
    for budget in budgets:
        bar = "#" * int(max(recovery[budget], 0) * 40)
        lines.append(f"{budget:14d} | {recovery[budget]:.3f} {bar}")
    record_artifact("A4_ablation_eit_budget", "\n".join(lines))

    benchmark.pedantic(lambda: recovery_at_budget(5, n_users=100),
                       rounds=1, iterations=1)

    # Zero questions ⇒ zero knowledge; more questions ⇒ monotone-ish gains
    # with diminishing returns.
    assert recovery[0] == 0.0
    assert recovery[5] > 0.15
    assert recovery[40] > recovery[5]
    assert recovery[40] - recovery[20] < recovery[10] - recovery[2]
