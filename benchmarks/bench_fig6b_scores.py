"""E2 — Fig. 6(b): per-campaign predictive scores.

Paper: "SPA achieves an average performance of 21%, it means 282,938
useful impacts" over eight Push + two newsletter campaigns of 1,340,432
targets each.
"""

from benchmarks.conftest import record_artifact
from repro.campaigns.reporting import build_summary, format_table


def test_fig6b_predictive_scores(business_case, benchmark):
    summary = benchmark(lambda: build_summary(business_case.results))

    text = "\n".join(
        [
            format_table(summary.table_rows()),
            "",
            f"average performance          : {summary.average_performance:.1%}"
            f"  (paper: {summary.paper_average_performance:.0%})",
            "projected impacts @ paper scale: "
            f"{summary.projected_total_impacts_paper_scale:,}"
            f"  (paper: {summary.paper_useful_impacts:,})",
        ]
    )
    record_artifact("Fig6b_predictive_scores", text)

    assert len(summary.reports) == 10
    channels = [r.channel for r in summary.reports]
    assert channels.count("push") == 8 and channels.count("newsletter") == 2
    # The paper's operating band: average performance near 21%.
    assert 0.12 < summary.average_performance < 0.32
    # Every campaign produced impacts and was fully scored.
    for report in summary.reports:
        assert report.useful_impacts > 0
        assert report.n_targets > 0


def test_fig6b_projection_accounting(business_case, benchmark):
    summary = business_case.summary
    projected = benchmark(
        lambda: summary.projected_total_impacts_paper_scale
    )
    assert projected == round(summary.average_performance * 1_340_432)
