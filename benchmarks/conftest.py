"""Shared fixtures for the reproduction benches.

The expensive Section 5 business case runs once per session and feeds the
Fig. 6 benches and ablations.  Benches register their reproduced artifact
(the table/figure text) via :func:`record_artifact`; everything registered
is printed in the terminal summary, so ``pytest benchmarks/
--benchmark-only`` shows the regenerated paper artifacts without ``-s``,
and a copy is written to ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import run_business_case

#: (title, text) artifacts registered by benches this session.
_ARTIFACTS: list[tuple[str, str]] = []

RESULTS_DIR = Path(__file__).parent / "results"

#: scale of the shared business-case run (paper: 3,162,069 users)
BUSINESS_CASE_USERS = 6_000


def record_artifact(title: str, text: str) -> None:
    """Register one reproduced table/figure for the end-of-run dump."""
    _ARTIFACTS.append((title, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in title)
    (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture(scope="session")
def business_case():
    """The full ten-campaign business case (shared across benches)."""
    return run_business_case(
        n_users=BUSINESS_CASE_USERS, n_courses=120, seed=7, n_warmups=3
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _ARTIFACTS:
        return
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for title, text in _ARTIFACTS:
        terminalreporter.write_sep("-", title)
        terminalreporter.write_line(text)
