"""E6 — Figs. 1–3: the architecture diagrams, regenerated from live objects.

Fig. 1 (context taxonomy extending Burke), Fig. 2 (cross-disciplinary
stack) and Fig. 3 (SPA component wiring) are conceptual diagrams; this
bench regenerates their *content* — the taxonomy and the wiring — from
the running system, which is the maximum faithful reproduction possible
for a diagram (DESIGN.md §4).
"""

from benchmarks.conftest import record_artifact
from repro.core.context import CONTEXT_DIMENSIONS, KNOWLEDGE_SOURCES, taxonomy_lines
from repro.spa import SimulatedWorld, SmartPredictionAssistant


def test_fig1_context_taxonomy(benchmark):
    lines = benchmark(taxonomy_lines)
    record_artifact("Fig1_context_taxonomy", "\n".join(lines))
    assert len(KNOWLEDGE_SOURCES) == 4  # Burke's base
    assert len(CONTEXT_DIMENSIONS) == 7  # the paper's extension
    assert any("emotional" in line and "focus" in line for line in lines)


def test_fig2_cross_disciplinary_stack(benchmark):
    import importlib

    # Fig. 2's layers, realized as concrete subsystems of this package.
    stack = [
        ("user's emotional information", "repro.core.emotions"),
        ("machine learning", "repro.ml"),
        ("intelligent agents", "repro.agents"),
        ("smart user models", "repro.core.sum_model"),
    ]
    def realize_stack():
        lines = ["Fig. 2 — cross-disciplinary approach, realized as modules:"]
        for layer, module in stack:
            importlib.import_module(module)  # the layer genuinely exists
            lines.append(f"  {layer:32s} -> {module}")
        return lines

    lines = benchmark(realize_stack)
    record_artifact("Fig2_cross_disciplinary_stack", "\n".join(lines))


def test_fig3_spa_wiring(benchmark):
    world = SimulatedWorld.generate(n_users=50, n_courses=10, seed=7)
    spa = SmartPredictionAssistant(world)
    lines = benchmark(spa.architecture)
    record_artifact("Fig3_spa_architecture", "\n".join(lines))
    text = "\n".join(lines)
    for component in ("lifelog", "smart", "attributes", "messaging", "interface"):
        assert component in text
