"""S5/S8 — the partitioned write plane: sharded, single-lock, multi-process.

ISSUE 5's tentpole claim, measured: with one :class:`ColumnarSumStore`
behind the streaming workers, every batch commit serializes on the one
store lock; with a :class:`ShardedSumStore` each worker commits into its
own partition under its own lock, so writer threads never contend and
their vectorized (GIL-releasing) sections overlap.

Two measurements, one correctness gate:

* **streamed replay** — the full 50k-event LifeLog firehose through
  ``StreamingUpdater`` (4 bus partitions = 4 writer threads) over a
  100k-user population, single store vs 4 shards: end-to-end throughput
  and p50/p99 update-to-visible latency;
* **write plane under maintenance pressure** — 4 writer threads
  driving pre-grouped ``batch_apply_ops`` batches while a maintenance
  thread runs the paper's between-touches forgetting as a flat-out
  population decay loop (the offered load is identical on both
  backends: decay as fast as the store allows, for as long as writers
  are busy).  On the single-lock store every tick holds *the* lock
  across a population-wide array pass and back-to-back reacquisition
  lets the loop monopolize it — all four writers starve head-of-line;
  on the sharded plane a tick sweeps one partition at a time and
  writers on the other partitions keep committing, so the blast radius
  of maintenance is one partition.  The speedup floor is asserted
  here, on writer completion time;
* **bit-equality** — after both replays, both backends' ``dumps()``
  must equal the sequential ``apply_event`` reference byte for byte
  (the ≥4-shards / ≥4-writer-threads acceptance criterion).

Smoke mode for CI (smaller population, no perf floor)::

    BENCH_SMOKE=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_sharded_writes.py -q

Full run (the acceptance numbers; 100k users, 50k events)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_writes.py -q
"""

from __future__ import annotations

import gc
import os
import threading
import time

import numpy as np

from benchmarks.bench_streaming_throughput import (
    generate_firehose,
    sequential_reference,
)
from benchmarks.conftest import record_artifact
from repro.core.reward import ReinforcementPolicy
from repro.core.sharded_store import ShardedSumStore
from repro.core.shm_store import MultiProcSumStore
from repro.core.sum_store import ColumnarSumStore
from repro.core.updates import DecayOp, RewardOp
from repro.datagen.catalog import CourseCatalog
from repro.streaming import ReplayDriver, StreamingUpdater
from repro.streaming.bus import partition_for
from repro.streaming.procplane import MultiProcUpdater

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_USERS = 5_000 if SMOKE else 100_000
N_EVENTS = 6_000 if SMOKE else 50_000
N_SHARDS = 4
N_COURSES = 120
#: write-plane speedup the sharded store must show over the single-lock
#: columnar store under maintenance pressure (asserted on the full run;
#: smoke mode on shared CI runners only sanity-checks the path, not the
#: contention win).  The observed effect is 3-6x — the floor leaves
#: room for noisy shared runners.
WRITE_SPEEDUP_FLOOR = None if SMOKE else 1.5
#: write-plane workload: rounds × (users/batch) batched commits/thread,
#: racing a flat-out population decay loop
WRITE_ROUNDS = 1
WRITE_BATCH_USERS = 256
WRITE_REPEATS = 1 if SMOKE else 2
#: replay timing repeats (first run also gates bit-equality; later runs
#: re-stream the same events on the warm store, identical work)
REPLAY_REPEATS = 1 if SMOKE else 2


def precreate(store, n_users: int):
    for uid in range(n_users):
        store.get_or_create(uid)
    return store


def replay_backend(store, events, item_emotions, policy):
    """One full streamed replay; returns (seconds, p50_ms, p99_ms, stats).

    ``batch_max=4096`` is the throughput-oriented visibility quantum for
    a population this size: bigger commit slices put the per-commit work
    into the vectorized (GIL-releasing) sections, which is also what
    lets the sharded writers genuinely overlap.
    """
    updater = StreamingUpdater(
        store, item_emotions, policy=policy,
        n_shards=N_SHARDS, queue_capacity=16_384, batch_max=4_096,
    )
    start = time.perf_counter()
    with updater:
        ReplayDriver(updater).replay(events)
        assert updater.drain(timeout=600.0)
        seconds = time.perf_counter() - start
    latencies = np.asarray(updater.latencies())
    stats = updater.stats()
    assert stats.applied == len(events)
    assert stats.dead_lettered == 0
    return (
        seconds,
        float(np.percentile(latencies, 50)) * 1e3,
        float(np.percentile(latencies, 99)) * 1e3,
        stats,
    )


def write_plane_seconds(store) -> tuple[float, int]:
    """Writer completion time under maintenance pressure, plus tick count.

    Writer thread *t* owns exactly the users :func:`partition_for`
    routes to partition *t* — the shard-worker topology without the bus
    — and commits its partition's pre-grouped batches; one maintenance
    thread runs the paper's between-touches forgetting as a flat-out
    population decay loop for as long as the writers are busy (the
    offered load is "decay as fast as the store allows" on both
    backends).  What differs is head-of-line blocking: the single store
    serializes every writer behind each population-wide lock hold — and
    back-to-back reacquisition lets the loop monopolize the lock — while
    the sharded store sweeps one partition at a time and writers on the
    other partitions keep committing.  Returns (writer wall clock,
    decay ticks completed while writers ran).
    """
    policy = ReinforcementPolicy()
    ops = (RewardOp(("enthusiastic", "stimulated"), 0.6), DecayOp())
    per_thread: list[list[list[tuple[int, tuple]]]] = []
    for t in range(N_SHARDS):
        users = [uid for uid in range(N_USERS)
                 if partition_for(uid, N_SHARDS) == t]
        batches = [
            [(uid, ops) for uid in users[i:i + WRITE_BATCH_USERS]]
            for i in range(0, len(users), WRITE_BATCH_USERS)
        ]
        per_thread.append(batches)

    barrier = threading.Barrier(N_SHARDS + 2)
    writers_done = threading.Event()
    ticks = [0]
    errors: list[Exception] = []

    def writer(batches):
        try:
            barrier.wait()
            for __ in range(WRITE_ROUNDS):
                for batch in batches:
                    store.batch_apply_ops(batch, policy)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def maintenance():
        try:
            barrier.wait()
            while not writers_done.is_set():
                store.decay_tick(policy)
                ticks[0] += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    writers = [
        threading.Thread(target=writer, args=(batches,))
        for batches in per_thread
    ]
    cadence = threading.Thread(target=maintenance)
    for thread in (*writers, cadence):
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in writers:
        thread.join()
    seconds = time.perf_counter() - start
    writers_done.set()
    cadence.join()
    assert not errors, errors
    return seconds, ticks[0]


def test_sharded_write_plane_beats_single_lock_store():
    catalog = CourseCatalog.generate(N_COURSES, seed=7)
    item_emotions = catalog.emotion_links()
    policy = ReinforcementPolicy()
    events = generate_firehose(N_EVENTS, N_USERS, catalog)

    # -- sequential reference (the correctness gate) ---------------------
    reference, __ = sequential_reference(events, item_emotions, policy)
    for uid in range(N_USERS):
        reference.get_or_create(uid)
    reference_dumps = reference.dumps()
    # keep only the JSON: a 100k-user object repository is millions of
    # live Python objects, and gc scans over them skew the threaded
    # timings below
    del reference
    gc.collect()

    # -- streamed replay: single columnar store vs 4 shards --------------
    single = precreate(ColumnarSumStore(initial_capacity=N_USERS), N_USERS)
    single_s, single_p50, single_p99, __ = replay_backend(
        single, events, item_emotions, policy
    )
    assert single.dumps() == reference_dumps
    for __rep in range(REPLAY_REPEATS - 1):  # timing repeats, warm store
        single_s, single_p50, single_p99, __ = min(
            (
                (single_s, single_p50, single_p99, None),
                replay_backend(single, events, item_emotions, policy),
            ),
            key=lambda run: run[0],
        )

    sharded = precreate(
        ShardedSumStore(n_shards=N_SHARDS, initial_capacity=N_USERS), N_USERS
    )
    sharded_s, sharded_p50, sharded_p99, __ = replay_backend(
        sharded, events, item_emotions, policy
    )
    # the acceptance criterion: ≥4 shards, ≥4 writer threads, bit-equal
    # to the sequential apply_event reference
    assert sharded.dumps() == reference_dumps
    for __rep in range(REPLAY_REPEATS - 1):
        sharded_s, sharded_p50, sharded_p99, __ = min(
            (
                (sharded_s, sharded_p50, sharded_p99, None),
                replay_backend(sharded, events, item_emotions, policy),
            ),
            key=lambda run: run[0],
        )

    # -- write plane under the decay cadence (the asserted win) ----------
    # Timing only: the tick/batch interleaving is nondeterministic, so
    # cross-backend state equality is gated in the replay phase above,
    # not here.  Best-of-N strips scheduler noise on shared runners.
    single_w = precreate(ColumnarSumStore(initial_capacity=N_USERS), N_USERS)
    sharded_w = precreate(
        ShardedSumStore(n_shards=N_SHARDS, initial_capacity=N_USERS), N_USERS
    )
    single_write_s, single_ticks = min(
        (write_plane_seconds(single_w) for __ in range(WRITE_REPEATS)),
        key=lambda pair: pair[0],
    )
    sharded_write_s, sharded_ticks = min(
        (write_plane_seconds(sharded_w) for __ in range(WRITE_REPEATS)),
        key=lambda pair: pair[0],
    )
    write_speedup = single_write_s / sharded_write_s

    total_write_ops = N_USERS * WRITE_ROUNDS * 2  # users × rounds × ops/user
    lines = [
        f"sharded write plane: {N_USERS} users, {N_EVENTS} events, "
        f"{N_SHARDS} shards / {N_SHARDS} writer threads"
        f"{' [SMOKE]' if SMOKE else ''}",
        "  streamed replay (bus + mapper + commit + cache):",
        f"    single-lock columnar:  {single_s:.3f} s "
        f"({N_EVENTS / single_s:,.0f} ev/s), "
        f"p50 {single_p50:.1f} ms / p99 {single_p99:.1f} ms to visible",
        f"    sharded (P={N_SHARDS}):          {sharded_s:.3f} s "
        f"({N_EVENTS / sharded_s:,.0f} ev/s), "
        f"p50 {sharded_p50:.1f} ms / p99 {sharded_p99:.1f} ms to visible",
        f"    end-to-end speedup:    {single_s / sharded_s:.2f}x",
        f"  write plane under flat-out population-decay maintenance "
        f"(best of {WRITE_REPEATS}):",
        f"    single-lock columnar:  {single_write_s:.3f} s "
        f"({total_write_ops / single_write_s:,.0f} ops/s committed, "
        f"{single_ticks} ticks absorbed)",
        f"    sharded (P={N_SHARDS}):          {sharded_write_s:.3f} s "
        f"({total_write_ops / sharded_write_s:,.0f} ops/s committed, "
        f"{sharded_ticks} ticks absorbed)",
        f"    write-throughput win:  {write_speedup:.2f}x",
        "  streamed state bit-equal to sequential reference: yes "
        "(both backends)",
    ]
    text = "\n".join(lines)
    title = (
        "S5 sharded write plane smoke" if SMOKE
        else "S5 sharded vs single-lock write plane"
    )
    record_artifact(title, text)
    print("\n" + text)

    if WRITE_SPEEDUP_FLOOR is not None:
        assert write_speedup >= WRITE_SPEEDUP_FLOOR, (
            f"sharded write plane only {write_speedup:.2f}x over the "
            f"single-lock store (floor {WRITE_SPEEDUP_FLOOR}x)"
        )


# ---------------------------------------------------------------------------
# S8 — the multi-process shard plane (ISSUE 8)
# ---------------------------------------------------------------------------

#: serving-process CPU offload the process plane must show over the
#: in-process sharded plane on the full run: the parent's own CPU time
#: per replay must shrink by at least this factor once the mapper/commit
#: loops live in worker processes.  This is the machine-independent half
#: of the claim — it holds even on a single core, where the workers'
#: CPU shares the same clock and wall time cannot improve.
CPU_OFFLOAD_FLOOR = None if SMOKE else 2.0
#: end-to-end wall-clock speedup over the in-process sharded plane,
#: asserted only when the runner actually has cores for the workers
WALL_SPEEDUP_FLOOR = 2.0


def replay_multiproc(store, events, item_emotions, policy):
    """One streamed replay through per-shard worker processes.

    Returns (wall seconds, parent-process CPU seconds, p50 ms, p99 ms).
    """
    updater = MultiProcUpdater(
        store, item_emotions, policy=policy,
        queue_capacity=16_384, batch_max=4_096, chunk=4_096,
    )
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    with updater:
        updater.submit_many(events)
        assert updater.drain(timeout=600.0)
        wall = time.perf_counter() - wall_start
        parent_cpu = time.process_time() - cpu_start
    latencies = np.asarray(updater.latencies())
    stats = updater.stats()
    assert stats.applied == len(events)
    assert stats.dead_lettered == 0
    return (
        wall,
        parent_cpu,
        float(np.percentile(latencies, 50)) * 1e3,
        float(np.percentile(latencies, 99)) * 1e3,
    )


def test_multiproc_plane_offloads_the_serving_process():
    catalog = CourseCatalog.generate(N_COURSES, seed=7)
    item_emotions = catalog.emotion_links()
    policy = ReinforcementPolicy()
    events = generate_firehose(N_EVENTS, N_USERS, catalog)

    reference, __ = sequential_reference(events, item_emotions, policy)
    for uid in range(N_USERS):
        reference.get_or_create(uid)
    reference_dumps = reference.dumps()
    del reference
    gc.collect()

    # -- in-process sharded baseline (threads; GIL-serialized Python) ----
    inproc = precreate(
        ShardedSumStore(n_shards=N_SHARDS, initial_capacity=N_USERS), N_USERS
    )
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    inproc_s, inproc_p50, inproc_p99, __ = replay_backend(
        inproc, events, item_emotions, policy
    )
    inproc_cpu = time.process_time() - cpu_start
    inproc_wall = time.perf_counter() - wall_start
    assert inproc.dumps() == reference_dumps
    del inproc
    gc.collect()

    # -- multi-process plane (one writer process per shard) --------------
    store = precreate(
        MultiProcSumStore(n_shards=N_SHARDS, initial_capacity=N_USERS),
        N_USERS,
    )
    try:
        mp_wall, mp_cpu, mp_p50, mp_p99 = replay_multiproc(
            store, events, item_emotions, policy
        )
        # the acceptance criterion: streamed replay through worker
        # processes is bit-equal to the sequential apply_event reference
        assert store.dumps() == reference_dumps
        for __rep in range(REPLAY_REPEATS - 1):
            mp_wall, mp_cpu, mp_p50, mp_p99 = min(
                (
                    (mp_wall, mp_cpu, mp_p50, mp_p99),
                    replay_multiproc(store, events, item_emotions, policy),
                ),
                key=lambda run: run[0],
            )
    finally:
        store.close()

    cores = len(os.sched_getaffinity(0))
    wall_speedup = inproc_wall / mp_wall
    cpu_offload = inproc_cpu / mp_cpu if mp_cpu > 0 else float("inf")
    lines = [
        f"multi-process shard plane: {N_USERS} users, {N_EVENTS} events, "
        f"{N_SHARDS} shards / {N_SHARDS} worker processes, "
        f"{cores} core(s) available{' [SMOKE]' if SMOKE else ''}",
        "  streamed replay (bus + mapper + commit, end to end):",
        f"    in-process sharded:    {inproc_wall:.3f} s wall "
        f"({N_EVENTS / inproc_wall:,.0f} ev/s), "
        f"{inproc_cpu:.3f} s serving-process CPU, "
        f"p50 {inproc_p50:.1f} ms / p99 {inproc_p99:.1f} ms",
        f"    multi-process (P={N_SHARDS}):    {mp_wall:.3f} s wall "
        f"({N_EVENTS / mp_wall:,.0f} ev/s), "
        f"{mp_cpu:.3f} s serving-process CPU, "
        f"p50 {mp_p50:.1f} ms / p99 {mp_p99:.1f} ms",
        f"    end-to-end speedup:    {wall_speedup:.2f}x wall "
        f"(floor {WALL_SPEEDUP_FLOOR}x asserted only with >= 2 cores; "
        f"this runner has {cores})",
        f"    serving-CPU offload:   {cpu_offload:.2f}x "
        "(parent sheds the mapper/commit loops to worker processes)",
        "  streamed state bit-equal to sequential reference: yes",
    ]
    text = "\n".join(lines)
    title = (
        "S8 multi-process shard plane smoke" if SMOKE
        else "S8 multi-process vs in-process shard plane"
    )
    record_artifact(title, text)
    print("\n" + text)

    if CPU_OFFLOAD_FLOOR is not None:
        assert cpu_offload >= CPU_OFFLOAD_FLOOR, (
            f"serving process still burns 1/{cpu_offload:.2f} of the "
            f"in-process CPU (floor {CPU_OFFLOAD_FLOOR}x offload)"
        )
    if cores >= 2 and not SMOKE:
        assert wall_speedup >= WALL_SPEEDUP_FLOOR, (
            f"multi-process replay only {wall_speedup:.2f}x over "
            f"in-process sharded on {cores} cores "
            f"(floor {WALL_SPEEDUP_FLOOR}x)"
        )
