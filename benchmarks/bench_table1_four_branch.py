"""E3 — Table 1: the Four-Branch Model of Emotional Intelligence.

Regenerates the table's content from the live model and times MSCEIT-style
batch scoring of a full question-bank pass.
"""


from benchmarks.conftest import record_artifact
from repro.core.four_branch import (
    Area,
    BRANCH_ORDER,
    BRANCHES,
    FourBranchProfile,
    branch_table,
)
from repro.core.gradual_eit import GradualEIT, QuestionBank
from repro.core.sum_model import SmartUserModel


def test_table1_four_branch_model(benchmark):
    rows = branch_table()
    width = max(len(r["title"]) for r in rows)
    lines = [f"{'Branch':{width}s} | Area         | MSCEIT V2.0 tasks"]
    lines.append("-" * (width + 40))
    for row in rows:
        lines.append(
            f"{row['title']:{width}s} | {row['area']:12s} | {row['tasks']}"
        )
    record_artifact("Table1_four_branch_model", "\n".join(lines))

    assert [r["title"] for r in rows] == [
        "Perceiving Emotions",
        "Facilitating Thought",
        "Understanding Emotions",
        "Managing Emotions",
    ]
    assert {r["area"] for r in rows} == {"experiential", "strategic"}

    # Time a full-bank EIT administration + scoring for one user.
    bank = QuestionBank.default_bank(per_task=5)

    def administer():
        eit = GradualEIT(bank)
        model = SmartUserModel(1)
        while True:
            question = eit.ask(model)
            if question is None:
                break
            eit.record_answer(model, question, 0)
        return model.ei_profile.eiq()

    eiq = benchmark(administer)
    # Answering the high-ability option everywhere must raise EIQ above 100.
    assert eiq > 100.0


def test_table1_scoring_composes_bottom_up(benchmark):
    profile = benchmark(lambda: FourBranchProfile.from_task_scores(
        {"Faces": 1.0, "Pictures": 1.0, "Facilitation": 1.0, "Sensations": 1.0,
         "Changes": 0.0, "Blends": 0.0, "Emotion Management": 0.0,
         "Emotional Relations": 0.0}
    ))
    assert profile.area_score(Area.EXPERIENTIAL) == 1.0
    assert profile.area_score(Area.STRATEGIC) == 0.0
    assert profile.total_score() == 0.5
    assert profile.eiq() == 100.0
    assert all(len(BRANCHES[b].tasks) == 2 for b in BRANCH_ORDER)
