"""S1 — substrate throughput: the db engine and the LifeLog pipeline.

Not a paper artifact, but the paper claims "high performance pre-processing
proactively LifeLogs of millions of customers" — this bench keeps the
substrate honest with concrete scan/index/ingest/sessionize numbers.
"""

import numpy as np
import pytest

from benchmarks.conftest import record_artifact
from repro.db.index import HashIndex, SortedIndex
from repro.db.query import Query
from repro.db.schema import Column, ColumnType, Schema
from repro.db.table import Table
from repro.lifelog.events import ActionCategory, Event
from repro.lifelog.preprocess import LifeLogPreprocessor
from repro.lifelog.sessionizer import sessionize
from repro.lifelog.store import EventLog
from repro.lifelog.weblog import event_to_line, parse_line, record_to_event

N_ROWS = 100_000


@pytest.fixture(scope="module")
def big_table():
    rng = np.random.default_rng(0)
    schema = Schema(
        [
            Column("user", ColumnType.INT64),
            Column("ts", ColumnType.FLOAT64),
            Column("value", ColumnType.FLOAT64),
        ]
    )
    return Table.from_columns(
        schema,
        {
            "user": rng.integers(0, 5_000, N_ROWS),
            "ts": rng.uniform(0, 1e6, N_ROWS),
            "value": rng.normal(size=N_ROWS),
        },
        name="events",
    )


def test_db_filtered_scan(big_table, benchmark):
    count = benchmark(
        lambda: Query(big_table).where("value", ">", 0.0).count()
    )
    assert 0.45 * N_ROWS < count < 0.55 * N_ROWS


def test_db_hash_index_lookup(big_table, benchmark):
    index = HashIndex(big_table, "user")

    def probe():
        total = 0
        for user in range(0, 5_000, 50):
            total += index.lookup(user).size
        return total

    total = benchmark(probe)
    assert total > 0


def test_db_sorted_index_range(big_table, benchmark):
    index = SortedIndex(big_table, "ts")
    hits = benchmark(lambda: index.range(1e5, 2e5).size)
    assert 0.05 * N_ROWS < hits < 0.15 * N_ROWS


def test_db_group_by(big_table, benchmark):
    result = benchmark(
        lambda: Query(big_table)
        .where("user", "<", 500)
        .group_by("user", {"value": "mean", "ts": "count"})
    )
    assert len(result) == 500


def test_lifelog_weblog_ingest(benchmark):
    events = [
        Event(1_142_000_000.0 + i, i % 700, "course_view",
              ActionCategory.NAVIGATION, payload={"target": str(i % 90)})
        for i in range(20_000)
    ]
    lines = [event_to_line(e) for e in events]

    def ingest():
        store = EventLog(segment_rows=8_000)
        for line in lines:
            event = record_to_event(parse_line(line))
            if event is not None:
                store.append(event)
        return len(store)

    count = benchmark.pedantic(ingest, rounds=1, iterations=1)
    assert count == 20_000
    record_artifact(
        "S1_substrate_scale",
        f"db table: {N_ROWS} rows; weblog ingest: {count} lines parsed "
        "(see benchmark table for timings)",
    )


def test_lifelog_sessionize_throughput(benchmark):
    rng = np.random.default_rng(1)
    events = [
        Event(float(ts), int(uid), "course_view", ActionCategory.NAVIGATION)
        for uid, ts in zip(
            rng.integers(0, 1_000, 30_000), rng.uniform(0, 1e6, 30_000)
        )
    ]
    sessions = benchmark(lambda: sessionize(events))
    assert sum(len(s) for s in sessions) == 30_000


def test_lifelog_feature_extraction(benchmark):
    rng = np.random.default_rng(2)
    events = [
        Event(float(ts), int(uid), "course_view", ActionCategory.NAVIGATION)
        for uid, ts in zip(
            rng.integers(0, 500, 20_000), rng.uniform(0, 1e6, 20_000)
        )
    ]
    preprocessor = LifeLogPreprocessor()
    features = benchmark(lambda: preprocessor.extract_all(events))
    assert len(features) == 500
