"""S1 — serving layer: batch-first scoring vs the seed's per-pair loop.

The ROADMAP north-star is serving millions of users; the seed scored the
emotion-adjusted grid one ``(user, item)`` pair at a time through dict
passes (``EmotionAwareRecommender.score_matrix`` was an O(U×I) Python
loop).  This bench reproduces the seed algorithm verbatim and races it
against :class:`~repro.serving.service.RecommendationService` on the
5,000-user × 120-course world, asserting identical scores and a faster
batch path.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_batch.py -q
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import record_artifact
from repro.cf.popularity import PopularityRecommender
from repro.cf.ratings import RatingMatrix
from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.sum_model import SumRepository
from repro.datagen.catalog import AFFINITY_LINKS, CourseCatalog
from repro.serving import PopularityScorer, RecommendationService

N_USERS = 5_000
N_COURSES = 120
EMOTION_SAMPLES = 3


def build_world(seed: int = 7):
    """5k SUMs with emotional state + a 120-course catalog + popularity."""
    rng = np.random.default_rng(seed)
    catalog = CourseCatalog.generate(N_COURSES, seed=seed)
    course_ids = catalog.course_ids()

    sums = SumRepository()
    emotion_names = sorted(AFFINITY_LINKS)
    for uid in range(N_USERS):
        model = sums.get_or_create(uid)
        for emotion in rng.choice(
            emotion_names, size=EMOTION_SAMPLES, replace=False
        ):
            model.activate_emotion(str(emotion), float(rng.uniform(0.2, 1.0)))
            model.set_sensibility(str(emotion), float(rng.uniform(0.2, 1.0)))

    triplets = [
        (int(uid), int(cid), float(rng.integers(1, 6)))
        for uid in rng.choice(N_USERS, size=2_000, replace=False)
        for cid in rng.choice(course_ids, size=6, replace=False)
    ]
    popularity = PopularityRecommender().fit(RatingMatrix(triplets))
    item_attributes = {
        cid: dict(catalog.get(cid).attributes) for cid in course_ids
    }
    return sums, course_ids, item_attributes, popularity


def seed_score_matrix(base_scores, sums, items, item_attributes, profile,
                      advice):
    """The seed's ``score_matrix``: per-user dict passes over the grid."""
    ids = sums.user_ids()
    matrix = np.zeros((len(ids), len(items)), dtype=np.float64)
    for row, user_id in enumerate(ids):
        model = sums.get(user_id)
        base = {item: base_scores(model, item) for item in items}
        adjusted = advice.adjust_scores(base, item_attributes, model, profile)
        for col, item in enumerate(items):
            matrix[row, col] = adjusted[item]
    return matrix


def test_batch_path_beats_per_pair_loop():
    sums, course_ids, item_attributes, popularity = build_world()
    profile = DomainProfile("courses", AFFINITY_LINKS)
    advice = AdviceEngine()

    # Identical base scores for both paths: the damped popularity means.
    means = {cid: popularity.predict(0, cid) for cid in course_ids}

    start = time.perf_counter()
    loop_matrix = seed_score_matrix(
        lambda model, item: means[item], sums, course_ids,
        item_attributes, profile, advice,
    )
    loop_seconds = time.perf_counter() - start

    service = RecommendationService(
        sums=sums,
        domain_profile=profile,
        item_attributes=item_attributes,
        advice=advice,
    )
    service.register("popularity", PopularityScorer(popularity))

    start = time.perf_counter()
    batch_matrix = service.score_matrix(sums.user_ids(), course_ids)
    batch_seconds = time.perf_counter() - start

    assert batch_matrix.shape == (N_USERS, N_COURSES)
    np.testing.assert_allclose(
        batch_matrix, loop_matrix, rtol=1e-9, atol=1e-12
    )
    assert batch_seconds < loop_seconds, (
        f"batch path ({batch_seconds:.3f}s) should beat the per-pair loop "
        f"({loop_seconds:.3f}s)"
    )

    speedup = loop_seconds / batch_seconds
    error = float(np.abs(batch_matrix - loop_matrix).max())
    record_artifact(
        "S1 serving batch vs per-pair loop",
        "\n".join([
            f"emotion-adjusted scoring grid, {N_USERS:,} users × "
            f"{N_COURSES} courses",
            f"  per-pair loop (seed score_matrix): {loop_seconds:8.3f} s",
            f"  batch service (score_matrix):      {batch_seconds:8.3f} s",
            f"  speedup: {speedup:,.0f}x   max |difference|: {error:.2e}",
        ]),
    )
