"""S7 — latency SLOs: mixed-traffic percentile curves and the p99 CI gate.

Runs the instrumented stack (PR 7's :mod:`repro.obs` telemetry plane)
under mixed traffic — a paced LifeLog replay streaming writes while the
serving layer answers recommendation requests — and reports the SLO
curves straight from the stage histograms:

* **update-to-visible** (submit → version visible): p50/p90/p99/p999
  from ``streaming.update_visible_seconds``, with the per-stage
  breakdown (queue wait → map → commit → publish) from a sampled trace;
* **request latency**: p50/p90/p99/p999 from ``serving.request_seconds``
  plus per-stage means (resolve → score → advice → respond).

Artifacts: the usual text summary (``S7_*.txt``) plus the **full metrics
snapshot as JSONL** (``S7_*.jsonl``) — every histogram's bucket state, so
any percentile is re-derivable offline via ``python -m repro.obs`` and
:func:`repro.obs.export.histogram_quantile`.

Two gates ride on top:

* **instrument gate** — the run fails if any instrument the telemetry
  plane promises is missing or zeroed (a refactor that silently drops a
  metric fails CI here, not in a dashboard three weeks later);
* **p99 regression gate** — smoke p99 update-to-visible must stay within
  3x of the committed baseline
  (``benchmarks/results/S7_latency_slo_baseline.json``).

Smoke mode for CI (fewer events, same gates)::

    BENCH_SMOKE=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_latency_slo.py -q

Full run::

    PYTHONPATH=src python -m pytest benchmarks/bench_latency_slo.py -q
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np

from benchmarks.bench_streaming_throughput import generate_firehose
from benchmarks.conftest import RESULTS_DIR, record_artifact
from repro.core.advice import DomainProfile
from repro.core.sum_model import SumRepository
from repro.datagen.catalog import AFFINITY_LINKS, CourseCatalog
from repro.obs.export import histogram_quantile, read_jsonl, write_jsonl
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_HISTOGRAM,
    MetricsRegistry,
    labelled,
)
from repro.obs.tracing import Tracer
from repro.serving import RecommendationRequest, RecommendationService
from repro.streaming import ReplayDriver, StreamingUpdater
from repro.streaming.control import ControlPlaneConfig

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_EVENTS = 2_000 if SMOKE else 20_000
N_USERS = 200 if SMOKE else 2_000
N_COURSES = 120
N_SHARDS = 4
#: paced below capacity so the histograms measure the subsystem, not
#: queue depth (same reasoning as the S2 bench's latency phase)
PACED_RATE = 1_000.0 if SMOKE else 5_000.0
#: serving requests interleaved with the replay (the read side)
N_REQUESTS = 150 if SMOKE else 1_500

BASELINE_PATH = RESULTS_DIR / "S7_latency_slo_baseline.json"
#: smoke p99 may drift this much over the committed baseline before CI
#: fails — wide enough for runner-speed variance, tight enough to catch
#: an accidental O(n) sneaking into the hot path
P99_REGRESSION_FACTOR = 3.0

#: every instrument the telemetry plane promises for this workload;
#: ``histogram`` entries must have observations, ``value`` entries a
#: non-zero reading.  A refactor that drops one fails the gate below.
REQUIRED_HISTOGRAMS = (
    "streaming.update_visible_seconds",
    "streaming.batch_size",
    "serving.request_seconds",
    "serving.batch_width",
    labelled("serving.stage_seconds", stage="resolve"),
    labelled("serving.stage_seconds", stage="score"),
    labelled("serving.stage_seconds", stage="advice"),
    labelled("serving.stage_seconds", stage="respond"),
)
REQUIRED_VALUES = (
    labelled("bus.published", topic="lifelog"),
    labelled("bus.acked", topic="lifelog"),
    "streaming.events_applied",
    "streaming.submitted",
    labelled("serving.requests", kind="recommend"),
    "cache.publishes",
    "cache.global_version",
)


def instrument_gaps(snap) -> list[str]:
    """Missing or zeroed instruments in a snapshot (the smoke gate)."""
    problems: list[str] = []
    for name in REQUIRED_HISTOGRAMS:
        try:
            if snap.histogram(name).count == 0:
                problems.append(f"histogram {name} has no observations")
        except KeyError:
            problems.append(f"histogram {name} missing")
    for name in REQUIRED_VALUES:
        value = snap.value(name)
        if not value > 0:  # NaN (missing) fails this too
            problems.append(f"{name} is {value}, expected > 0")
    return problems


def build_world(seed: int = 7):
    catalog = CourseCatalog.generate(N_COURSES, seed=seed)
    sums = SumRepository()
    for uid in range(N_USERS):
        sums.get_or_create(uid)
    return catalog, sums


def curve(hist) -> dict[str, float]:
    """``{"p50": ..., ...}`` in milliseconds from one histogram snapshot."""
    return {k: v * 1e3 for k, v in hist.percentiles().items()}


def fmt_curve(label: str, hist) -> str:
    c = curve(hist)
    return (
        f"  {label:<34} p50 {c['p50']:8.3f} ms   p90 {c['p90']:8.3f} ms   "
        f"p99 {c['p99']:8.3f} ms   p99.9 {c['p999']:8.3f} ms   "
        f"({hist.count} samples)"
    )


def test_latency_slo_curves_and_gates():
    catalog, sums = build_world()
    registry = MetricsRegistry()
    tracer = Tracer(max_traces=4_096)
    updater = StreamingUpdater(
        sums, catalog.emotion_links(), n_shards=N_SHARDS,
        queue_capacity=4_096, batch_max=256,
        telemetry=registry, tracer=tracer,
    )
    service = RecommendationService(
        sums=updater.cache,
        domain_profile=DomainProfile("courses", AFFINITY_LINKS),
        item_attributes={
            cid: dict(catalog.get(cid).attributes)
            for cid in catalog.course_ids()
        },
        telemetry=registry, tracer=tracer,
    )
    service.register("flat", lambda model, item: 1.0)

    events = generate_firehose(N_EVENTS, N_USERS, catalog)
    course_ids = catalog.course_ids()
    rng = np.random.default_rng(11)
    request_users = rng.integers(0, N_USERS, size=N_REQUESTS)

    replay_stats = {}

    def writer():
        replay_stats["publish"] = ReplayDriver(
            updater, rate=PACED_RATE, chunk=64
        ).replay(events)

    start = time.perf_counter()
    with updater:
        thread = threading.Thread(target=writer, name="slo-writer")
        thread.start()
        # the read side: requests interleaved with the live replay
        for uid in request_users:
            service.recommend(RecommendationRequest(
                user_id=int(uid), items=course_ids, k=10
            ))
        thread.join()
        assert updater.drain(timeout=300.0)
    wall_seconds = time.perf_counter() - start

    stats = updater.stats()
    assert stats.applied == N_EVENTS
    assert stats.dead_lettered == 0

    snap = registry.snapshot()

    # -- gate 1: every promised instrument is present and live ----------
    gaps = instrument_gaps(snap)
    assert not gaps, "telemetry plane lost instruments:\n  " + "\n  ".join(gaps)

    visible = snap.histogram("streaming.update_visible_seconds")
    request = snap.histogram("serving.request_seconds")
    assert visible.count == N_EVENTS
    assert request.count == N_REQUESTS

    # -- artifacts: text summary + full JSONL snapshot ------------------
    mode = "smoke" if SMOKE else "full"
    title = f"S7_latency_slo{'_smoke' if SMOKE else ''}"
    jsonl_path = RESULTS_DIR / f"{title}.jsonl"
    jsonl_path.unlink(missing_ok=True)
    record = write_jsonl(
        jsonl_path, snap,
        mode=mode, n_events=N_EVENTS, n_requests=N_REQUESTS,
        paced_rate=PACED_RATE, wall_seconds=wall_seconds,
    )

    # offline parity: the committed JSONL re-derives the exact live p99
    # (this is what the CI gate reads, so the two must agree)
    offline_p99 = histogram_quantile(
        read_jsonl(jsonl_path)[0]["metrics"],
        "streaming.update_visible_seconds", 0.99,
    )
    live_p99 = visible.quantile(0.99)
    assert abs(offline_p99 - live_p99) <= 1e-12 + 1e-9 * abs(live_p99)
    assert record["mode"] == mode

    stage_means = {
        stage: snap.histogram(
            labelled("serving.stage_seconds", stage=stage)
        ).mean * 1e3
        for stage in ("resolve", "score", "advice", "respond")
    }
    sample_id = max(tracer.traces())
    sample = {
        name: seconds * 1e3
        for name, seconds in tracer.breakdown(sample_id).items()
    }

    lines = [
        f"latency SLOs under mixed traffic{' [SMOKE]' if SMOKE else ''}: "
        f"{N_EVENTS} events paced at {PACED_RATE:,.0f} ev/s, "
        f"{N_REQUESTS} interleaved recommend requests, {N_SHARDS} shards",
        fmt_curve("update-to-visible", visible),
        fmt_curve("serving request", request),
        "  serving stage means: " + "   ".join(
            f"{stage} {ms:.3f} ms" for stage, ms in stage_means.items()
        ),
        f"  sampled event trace #{sample_id}: " + "   ".join(
            f"{name} {ms:.3f} ms" for name, ms in sample.items()
        ),
        f"  backpressure stalls: "
        f"{snap.value(labelled('bus.backpressure_stalls', topic='lifelog')) or 0:.0f}"
        f"   redeliveries: "
        f"{snap.value(labelled('bus.redelivered', topic='lifelog')) or 0:.0f}",
        f"  full snapshot: {jsonl_path.name} "
        f"(render with: python -m repro.obs benchmarks/results/{jsonl_path.name})",
    ]
    record_artifact(title, "\n".join(lines))

    # -- gate 2: p99 regression against the committed baseline ----------
    assert BASELINE_PATH.exists(), (
        f"missing committed baseline {BASELINE_PATH}; run this bench and "
        "commit the regenerated baseline"
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    if mode in baseline:
        floor = float(baseline[mode]["update_to_visible_p99_s"])
        ceiling = floor * P99_REGRESSION_FACTOR
        assert live_p99 <= ceiling, (
            f"update-to-visible p99 {live_p99 * 1e3:.3f} ms regressed past "
            f"{P99_REGRESSION_FACTOR}x the committed baseline "
            f"({floor * 1e3:.3f} ms -> ceiling {ceiling * 1e3:.3f} ms)"
        )


CONTROL_BASELINE_PATH = RESULTS_DIR / "S9_latency_slo_control_baseline.json"
#: generous per-request budget: the control plane's checks sit on the
#: hot path, but under healthy pacing no request may ever trip one —
#: the zero-unexpected-shed gate below asserts exactly that
REQUEST_DEADLINE_S = 0.25
#: background decay load riding along with the user-facing traffic:
#: one tick burst per TICK_EVERY requests, TICK_USERS users per burst
#: (small spread bursts — the queue classes share FIFO order within a
#: partition, so a huge burst would head-of-line block user events)
TICK_EVERY = 10
TICK_USERS = 5
#: ticks stamped with this much life; sheddable once a backlog builds
TICK_TTL_S = 0.25


def test_latency_slo_with_control_plane():
    """S9 — the same mixed traffic with the tail-latency control plane on.

    Deadline budgets on every request, adaptive commit batching in the
    workers, two-class queues carrying background decay ticks, and
    seqlock (lock-free) reader captures on the serving path.  Three
    gates:

    * **zero unexpected shed** — user-class sheds are structurally
      impossible and deadlines are generous, so any user shed, deadline
      abort, or degraded response fails the run;
    * **p99 improvement** (full mode) — request p99 AND update-to-visible
      p99 must beat the committed S7 (no control plane) baseline;
    * **p99 regression** (smoke/CI) — within 3x of the committed S9
      control-plane baseline, same shape as the S7 gate.
    """
    catalog, sums = build_world()
    registry = MetricsRegistry()
    tracer = Tracer(max_traces=4_096)
    updater = StreamingUpdater(
        sums, catalog.emotion_links(), n_shards=N_SHARDS,
        queue_capacity=4_096, batch_max=256,
        telemetry=registry, tracer=tracer,
        control_plane=ControlPlaneConfig(tick_ttl=TICK_TTL_S),
    )
    service = RecommendationService(
        sums=updater.cache,
        domain_profile=DomainProfile("courses", AFFINITY_LINKS),
        item_attributes={
            cid: dict(catalog.get(cid).attributes)
            for cid in catalog.course_ids()
        },
        telemetry=registry, tracer=tracer,
    )
    service.register("flat", lambda model, item: 1.0)

    events = generate_firehose(N_EVENTS, N_USERS, catalog)
    course_ids = catalog.course_ids()
    rng = np.random.default_rng(11)
    request_users = rng.integers(0, N_USERS, size=N_REQUESTS)

    replay_stats = {}

    def writer():
        replay_stats["publish"] = ReplayDriver(
            updater, rate=PACED_RATE, chunk=64
        ).replay(events)

    n_ticks = 0
    start = time.perf_counter()
    with updater:
        thread = threading.Thread(target=writer, name="slo-control-writer")
        thread.start()
        for i, uid in enumerate(request_users):
            if i % TICK_EVERY == 0:
                n_ticks += updater.tick(
                    rng.integers(0, N_USERS, size=TICK_USERS)
                )
            service.recommend(RecommendationRequest(
                user_id=int(uid), items=course_ids, k=10,
                deadline_s=REQUEST_DEADLINE_S,
            ))
        thread.join()
        assert updater.drain(timeout=300.0)
    wall_seconds = time.perf_counter() - start

    stats = updater.stats()
    assert stats.dead_lettered == 0
    # every event applied; every tick either applied or exact-counted
    # at whichever layer shed it — nothing vanishes unaccounted
    shed_ticks = (
        stats.shed_background + stats.shed_expired + stats.expired_dropped
    )
    assert stats.applied == N_EVENTS + n_ticks - shed_ticks

    snap = registry.snapshot()
    gaps = instrument_gaps(snap)
    assert not gaps, "telemetry plane lost instruments:\n  " + "\n  ".join(gaps)

    # -- gate: zero unexpected shed ------------------------------------
    assert updater.topic.shed_user == 0, (
        f"user-class work was shed ({updater.topic.shed_user}); the "
        "two-class queue must only ever shed background"
    )
    deadline_aborts = sum(
        snap.value(labelled("serving.deadline_exceeded", stage=stage)) or 0
        for stage in ("resolve", "score")
    )
    degraded = snap.value("serving.degraded") or 0
    assert deadline_aborts == 0, (
        f"{deadline_aborts:.0f} requests blew a {REQUEST_DEADLINE_S}s "
        "budget under healthy pacing"
    )
    assert degraded == 0

    visible = snap.histogram("streaming.update_visible_seconds")
    request = snap.histogram("serving.request_seconds")
    assert request.count == N_REQUESTS
    # per-class SLO accounting: only user-facing events in the histogram
    assert visible.count == N_EVENTS
    live_visible_p99 = visible.quantile(0.99)
    live_request_p99 = request.quantile(0.99)

    # -- artifacts ------------------------------------------------------
    mode = "smoke" if SMOKE else "full"
    title = f"S9_latency_slo_control{'_smoke' if SMOKE else ''}"
    jsonl_path = RESULTS_DIR / f"{title}.jsonl"
    jsonl_path.unlink(missing_ok=True)
    write_jsonl(
        jsonl_path, snap,
        mode=mode, n_events=N_EVENTS, n_requests=N_REQUESTS,
        n_ticks=n_ticks, paced_rate=PACED_RATE, wall_seconds=wall_seconds,
    )
    shed_lines = (
        f"  per-class shed counts: user {updater.topic.shed_user}   "
        f"background/capacity {stats.shed_background}   "
        f"background/expired {stats.shed_expired}   "
        f"ticks dropped at worker {stats.expired_dropped}"
    )
    lines = [
        f"latency SLOs, control plane ON{' [SMOKE]' if SMOKE else ''}: "
        f"{N_EVENTS} events paced at {PACED_RATE:,.0f} ev/s, "
        f"{N_REQUESTS} recommend requests ({REQUEST_DEADLINE_S}s budgets), "
        f"{n_ticks} background decay ticks, {N_SHARDS} shards",
        fmt_curve("update-to-visible", visible),
        fmt_curve("serving request", request),
        shed_lines,
        f"  deadline aborts: {deadline_aborts:.0f}   "
        f"degraded responses: {degraded:.0f}",
        f"  full snapshot: {jsonl_path.name} "
        f"(render with: python -m repro.obs benchmarks/results/{jsonl_path.name})",
    ]
    record_artifact(title, "\n".join(lines))

    # -- gate: p99 improvement over the no-control-plane S7 baseline ----
    # (full runs only: the committed numbers came from a full run, and
    # CI smoke runners are too noisy for an absolute cross-PR compare)
    if not SMOKE and BASELINE_PATH.exists():
        s7 = json.loads(BASELINE_PATH.read_text())["full"]
        assert live_visible_p99 < float(s7["update_to_visible_p99_s"]), (
            f"update-to-visible p99 {live_visible_p99 * 1e3:.3f} ms did not "
            f"beat the S7 baseline {s7['update_to_visible_p99_s'] * 1e3:.3f} ms"
        )
        assert live_request_p99 < float(s7["request_p99_s"]), (
            f"request p99 {live_request_p99 * 1e3:.3f} ms did not beat "
            f"the S7 baseline {s7['request_p99_s'] * 1e3:.3f} ms"
        )

    # -- gate: p99 regression against the committed S9 baseline ---------
    assert CONTROL_BASELINE_PATH.exists(), (
        f"missing committed baseline {CONTROL_BASELINE_PATH}; run this "
        "bench and commit the regenerated baseline"
    )
    baseline = json.loads(CONTROL_BASELINE_PATH.read_text())
    # the committed control-plane numbers must themselves beat the
    # committed S7 (no control plane) numbers — a deterministic record
    # of the win that CI re-checks regardless of runner noise
    s7_full = json.loads(BASELINE_PATH.read_text())["full"]
    s9_full = baseline["full"]
    for key in ("update_to_visible_p99_s", "request_p99_s"):
        assert float(s9_full[key]) < float(s7_full[key]), (
            f"committed control-plane baseline {key} "
            f"({s9_full[key]}) must beat the committed S7 baseline "
            f"({s7_full[key]}); re-bench and commit both together"
        )
    if mode in baseline:
        for label, live, key in (
            ("update-to-visible", live_visible_p99, "update_to_visible_p99_s"),
            ("request", live_request_p99, "request_p99_s"),
        ):
            floor = float(baseline[mode][key])
            ceiling = floor * P99_REGRESSION_FACTOR
            assert live <= ceiling, (
                f"{label} p99 {live * 1e3:.3f} ms regressed past "
                f"{P99_REGRESSION_FACTOR}x the committed control-plane "
                f"baseline ({floor * 1e3:.3f} ms -> {ceiling * 1e3:.3f} ms)"
            )


#: conservative count of null instrument touches per streamed event.
#: The real paths batch their recording — bus publish/ack and worker
#: commit each record once per *batch* (batch_max 256) and the per-event
#: visible-latency observes are gated off entirely when disabled — so
#: the true amortized count is well under one call per event; four is
#: still a generous ceiling.
NULL_CALLS_PER_EVENT = 4


def test_null_telemetry_overhead_under_two_percent():
    """The disabled plane must cost <2% of per-event replay time.

    Instrumentation is compiled into the hot paths, so "off" is the
    null-object facade, not absent code.  This measures the real
    per-event processing time of an *uninstrumented* (default) replay,
    microbenches one null instrument call, and asserts that even a
    worst-case NULL_CALLS_PER_EVENT touches per event stay under the 2%
    budget the ISSUE allows.
    """
    catalog, sums = build_world()
    events = generate_firehose(
        min(N_EVENTS, 4_000), N_USERS, catalog, seed=13
    )
    updater = StreamingUpdater(  # telemetry omitted: the null path
        sums, catalog.emotion_links(), n_shards=N_SHARDS,
        queue_capacity=4_096, batch_max=256,
    )
    start = time.perf_counter()
    with updater:
        ReplayDriver(updater).replay(events)
        assert updater.drain(timeout=300.0)
    per_event = (time.perf_counter() - start) / len(events)
    assert updater.stats().applied == len(events)
    assert len(updater.tracer) == 0  # nothing retained on the null path

    n = 200_000
    observe, inc = NULL_HISTOGRAM.observe, NULL_COUNTER.inc
    start = time.perf_counter()
    for _ in range(n // 2):
        observe(0.5)
        inc()
    per_call = (time.perf_counter() - start) / n

    overhead = NULL_CALLS_PER_EVENT * per_call / per_event
    record_artifact(
        f"S7_null_telemetry_overhead{'_smoke' if SMOKE else ''}",
        f"null-telemetry overhead{' [SMOKE]' if SMOKE else ''}: "
        f"{per_event * 1e6:.1f} us/event replay, "
        f"{per_call * 1e9:.0f} ns/null-call x {NULL_CALLS_PER_EVENT} "
        f"calls/event = {overhead * 100:.3f}% of the event budget "
        f"(limit 2%)",
    )
    assert overhead < 0.02, (
        f"null telemetry path costs {overhead * 100:.2f}% per event "
        "(>2% budget)"
    )
