"""A1 — ablation: emotional attributes on/off.

The paper's headline claim is that embedding *emotional* context improves
predictions beyond objective/behavioural data.  This bench trains the
propensity stack with and without the emotional feature blocks on the
shared run's recorded touches and compares ranking quality.
"""

import numpy as np

from benchmarks.conftest import record_artifact
from repro.campaigns.propensity import FeatureBuilder, PropensityModel
from repro.ml.metrics import gain_at, roc_auc


def build_matrix(engine, include_emotional: bool):
    builder = FeatureBuilder(
        include_demographics=True,
        include_behavior=True,
        include_emotional=include_emotional,
        svd_rank=engine.config.svd_rank if include_emotional else 0,
        include_subjective=True,
    ).fit(engine.sums)
    rows = engine._training_rows
    by_course: dict[int, list[int]] = {}
    for position, (__, course_id, __label) in enumerate(rows):
        by_course.setdefault(course_id, []).append(position)
    width = len(builder.feature_names(with_course=True))
    x = np.zeros((len(rows), width))
    for course_id, positions in by_course.items():
        course = engine.world.catalog.get(course_id)
        user_ids = [rows[p][0] for p in positions]
        x[positions] = builder.build(
            engine.sums, engine._behavior_features, user_ids,
            course=course, embeddings=engine._embeddings,
            course_engagement=engine._course_engagement,
            area_engagement=engine._area_engagement,
        )
    labels = np.asarray([int(r[2]) for r in rows])
    return x, labels


def evaluate(x, labels, seed=7):
    """Time-ordered split: train on first 60%, evaluate on the rest."""
    split = int(len(x) * 0.6)
    model = PropensityModel("svm", seed=seed).fit(x[:split], labels[:split])
    scores = model.decision_function(x[split:])
    return (
        roc_auc(labels[split:], scores),
        gain_at(labels[split:], scores, 0.4),
    )


def test_ablation_emotional_features(business_case, benchmark):
    engine = business_case.spa.engine

    x_full, labels = build_matrix(engine, include_emotional=True)
    x_lean, __ = build_matrix(engine, include_emotional=False)

    auc_full, gain_full = benchmark.pedantic(
        lambda: evaluate(x_full, labels), rounds=1, iterations=1
    )
    auc_lean, gain_lean = evaluate(x_lean, labels)

    text = "\n".join(
        [
            f"{'features':34s} {'AUC':>7s} {'gain@40%':>9s}",
            "-" * 52,
            f"{'all (with emotional context)':34s} {auc_full:7.3f} {gain_full:9.3f}",
            f"{'without emotional context':34s} {auc_lean:7.3f} {gain_lean:9.3f}",
            "",
            f"emotional-context delta: AUC {auc_full - auc_lean:+.3f}, "
            f"gain@40% {gain_full - gain_lean:+.3f}",
        ]
    )
    record_artifact("A1_ablation_emotional_features", text)

    # The paper's thesis: emotional context must help.
    assert auc_full > auc_lean
    assert gain_full > gain_lean
