"""E1 — Fig. 6(a): the cumulative redemption curve.

Paper: "with the 40% of commercial action ... SPA achieves more than 76%
of useful impacts.  So, we have improved the redemption of Push and
newsletters campaigns in a 90%."

The bench regenerates the curve from the shared business-case run, prints
it (terminal summary + ``benchmarks/results/``), asserts the qualitative
shape, and times the curve computation itself.
"""

import numpy as np

from benchmarks.conftest import record_artifact
from repro.campaigns.redemption import ascii_curve, combined_gain_curve


def test_fig6a_cumulative_redemption_curve(business_case, benchmark):
    fractions, captured = benchmark(
        lambda: combined_gain_curve(business_case.results)
    )

    gain40 = business_case.gain_at_40
    improvement = business_case.improvement
    rows = [
        f"{f:>5.0%} of action -> {c:>6.1%} of useful impacts"
        for f, c in zip(fractions[::10], captured[::10])
    ]
    text = "\n".join(
        [
            ascii_curve(fractions, captured),
            "",
            *rows,
            "",
            f"impacts captured at 40% of action : {gain40:.1%}  (paper: >76%)",
            f"redemption improvement vs standard: {improvement:+.0%}  (paper: +90%)",
        ]
    )
    record_artifact("Fig6a_cumulative_redemption_curve", text)

    # Shape assertions: proper gain curve, far above random targeting,
    # in the paper's operating region.
    assert captured[0] == 0.0 and captured[-1] == 1.0
    assert np.all(np.diff(captured) >= -1e-12)
    assert gain40 > 0.55, "targeting must massively beat the 40% diagonal"
    assert improvement > 0.5, "personalization must lift redemption strongly"


def test_fig6a_curve_dominates_random_everywhere(business_case, benchmark):
    fractions, captured = benchmark(lambda: business_case.gain_curve)
    interior = (fractions > 0.05) & (fractions < 0.95)
    assert np.all(captured[interior] >= fractions[interior] - 0.02)
