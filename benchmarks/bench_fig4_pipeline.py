"""E5 — Fig. 4: the iterative discover/manage/update loop.

The figure shows attribute discovery converging as communications cycle;
the bench runs the one-touch pipeline for many touches and reports the
convergence of the learned emotional vector toward the latent traits.
"""

import numpy as np

from benchmarks.conftest import record_artifact
from repro.core.gradual_eit import GradualEIT, QuestionBank
from repro.core.pipeline import EmotionalContextPipeline
from repro.core.sum_model import SmartUserModel
from repro.datagen.behavior import BehaviorModel
from repro.datagen.catalog import CourseCatalog
from repro.datagen.population import Population


def run_touches(n_touches: int, n_users: int = 120, seed: int = 7):
    population = Population.generate(n_users, seed=seed)
    catalog = CourseCatalog.generate(30, seed=seed)
    world = BehaviorModel(population, catalog, seed=seed)
    eit = GradualEIT(QuestionBank.default_bank(per_task=5))
    pipeline = EmotionalContextPipeline(eit)
    rng = np.random.default_rng(seed)

    convergence_by_touch = []
    models = {u.user_id: SmartUserModel(u.user_id) for u in population}
    for touch in range(n_touches):
        scores = []
        for user in population:
            model = models[user.user_id]
            question = pipeline.eit.next_question(model)
            answer = None
            if question is not None and rng.random() < 0.6:
                answer = world.choose_eit_option(user, question, rng)
            engaged = rng.random() < 0.35
            attrs = tuple(
                name for name, t in sorted(
                    user.traits.items(), key=lambda kv: -kv[1]
                )[:2]
            ) if engaged else ("hopeful",)
            pipeline.run_touch(model, answer, engaged, attrs, 0.5)
            scores.append(pipeline.convergence(model, user.trait_vector()))
        convergence_by_touch.append(float(np.mean(scores)))
    return convergence_by_touch


def test_fig4_iterative_loop_converges(benchmark):
    convergence = benchmark.pedantic(
        lambda: run_touches(10), rounds=1, iterations=1
    )
    lines = ["touch | mean cosine(learned emotional vector, latent traits)"]
    for touch, value in enumerate(convergence, start=1):
        bar = "#" * int(value * 40)
        lines.append(f"{touch:5d} | {value:.3f} {bar}")
    record_artifact("Fig4_iterative_attribute_convergence", "\n".join(lines))

    # Convergence must rise substantially and monotonically-ish.
    assert convergence[-1] > convergence[0] + 0.15
    assert convergence[-1] > 0.4
    # No catastrophic forgetting across the sequence.
    assert min(convergence[3:]) > convergence[0]
