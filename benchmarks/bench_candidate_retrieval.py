"""S10 — candidate retrieval: O(items) → O(k) on the advice path.

Measures the end-to-end ``RecommendationService.recommend`` latency —
resolve → retrieve → score → advice → respond, the full pipeline
including the emotional Advice multiplier pass and response
materialization — with and without a
:class:`~repro.retrieval.retriever.CandidateRetriever` attached, on
synthetic clustered catalogs of growing size.

The full-scan service pays O(items) three times per request (the score
grid, the Advice multiplier matrix, and one ``ScoredItem`` per catalog
entry); the retrieval service pays one ANN probe plus O(k_candidates)
re-ranking, so the gap must widen linearly with the catalog.  Both
services share the same scorer and advice configuration, so comparing
their responses measures true end-to-end recall@k, not an index-side
proxy.

Gates:

* **recall@k >= 0.95** on every catalog leg (retrieved top-k vs the
  exact full-scan top-k, same users, same scores);
* **speedup >= 10x** on every leg of 100k+ items (full mode), or
  **>= 3x** on the largest smoke leg (CI runners are noisy; the full
  committed numbers carry the real ratio).

Smoke mode for CI (small catalogs, same gates)::

    BENCH_SMOKE=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_candidate_retrieval.py -q

Full run (includes the million-item leg)::

    PYTHONPATH=src python -m pytest benchmarks/bench_candidate_retrieval.py -q
"""

from __future__ import annotations

import os
import time
from typing import Sequence

import numpy as np

from benchmarks.conftest import record_artifact
from repro.core.advice import DomainProfile
from repro.core.emotions import EMOTION_NAMES
from repro.core.sum_model import SumRepository
from repro.retrieval import (
    CandidateRetriever,
    ClusteredANNIndex,
    RetrievalConfig,
    StaticEmbeddingProvider,
)
from repro.serving import RecommendationRequest, RecommendationService
from repro.serving.scorer import ItemId, ScorerBase

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
CATALOG_SIZES = (2_000, 20_000) if SMOKE else (10_000, 100_000, 1_000_000)
DIM = 16
#: genuine cluster structure (the regime ANN indexes are built for —
#: real catalogs cluster by topic; pure isotropic noise would not)
N_TRUE_CLUSTERS = 64
CLUSTER_NOISE = 0.05
N_USERS = 64
K = 10
#: oversampled candidate set and probe width of the retrieval stage
K_CANDIDATES = 256
N_PROBE = 64
#: timed requests per leg; the full scan gets fewer — at the million-item
#: leg one exact request costs seconds, and its mean is stable anyway
N_RETRIEVED_REQUESTS = 30 if SMOKE else 100
N_FULL_REQUESTS = 5
#: fraction of the catalog carrying attribute metadata (sparse, like a
#: real catalog: most items have no emotional affinity links)
ATTR_COVERAGE = 0.05

PROFILE = DomainProfile(
    "bench",
    {
        EMOTION_NAMES[0]: {"attr-a": 0.8, "attr-b": 0.2},
        EMOTION_NAMES[1]: {"attr-b": -0.5},
    },
)

RECALL_GATE = 0.95
SPEEDUP_GATE_FULL = 10.0
SPEEDUP_GATE_SMOKE = 3.0


class VectorScorer(ScorerBase):
    """Vectorized re-ranker sharing the retrieval embeddings.

    Item ids are their row numbers, so one fancy-index + matmul scores
    any candidate list — the same score function on both services, which
    is what makes the recall comparison end-to-end.
    """

    def __init__(self, provider: StaticEmbeddingProvider) -> None:
        self.provider = provider
        __, self._items = provider.item_vectors()

    def score_batch(
        self, user_ids: Sequence[int], items: Sequence[ItemId]
    ) -> np.ndarray:
        queries = self.provider.query_vectors(user_ids)
        cols = np.asarray(items, dtype=np.int64)
        return queries @ self._items[cols].T


def build_catalog(n_items: int, seed: int = 0):
    """Clustered item vectors + user vectors + sparse attributes."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 1.0, (N_TRUE_CLUSTERS, DIM))
    labels = rng.integers(0, N_TRUE_CLUSTERS, n_items)
    vectors = centers[labels] + rng.normal(0.0, CLUSTER_NOISE, (n_items, DIM))
    users = rng.normal(0.0, 1.0, (N_USERS, DIM))
    provider = StaticEmbeddingProvider(
        list(range(n_items)), vectors, list(range(N_USERS)), users
    )
    with_attrs = rng.choice(
        n_items, size=int(n_items * ATTR_COVERAGE), replace=False
    )
    attributes = {
        int(item): {"attr-a": 1.0} if item % 2 else {"attr-b": 0.5}
        for item in with_attrs
    }
    return provider, attributes


def build_services(provider, attributes):
    sums = SumRepository()
    for uid in range(N_USERS):
        sums.get_or_create(uid)
    ids, vectors = provider.item_vectors()
    build_start = time.perf_counter()
    index = ClusteredANNIndex.build(ids, vectors, seed=1)
    build_seconds = time.perf_counter() - build_start
    retriever = CandidateRetriever(
        provider,
        config=RetrievalConfig(
            k_candidates=K_CANDIDATES, n_probe=N_PROBE, min_catalog=1
        ),
        index=index,
    )
    scorer = VectorScorer(provider)
    shared = dict(
        sums=sums,
        domain_profile=PROFILE,
        item_attributes=attributes,
    )
    retrieval_service = RecommendationService(retriever=retriever, **shared)
    retrieval_service.register("vec", scorer)
    full_service = RecommendationService(**shared)
    full_service.register("vec", scorer)
    return retrieval_service, full_service, build_seconds


def timed_mean_ms(fn, args_list) -> float:
    start = time.perf_counter()
    for args in args_list:
        fn(args)
    return (time.perf_counter() - start) / len(args_list) * 1e3


def run_leg(n_items: int, seed: int):
    provider, attributes = build_catalog(n_items, seed=seed)
    retrieval_service, full_service, build_seconds = build_services(
        provider, attributes
    )
    rng = np.random.default_rng(seed + 1)
    all_items = list(range(n_items))

    # recall@k: same users through both services, overlap of the top-k
    recall_users = rng.integers(0, N_USERS, size=N_FULL_REQUESTS)
    full_responses = {}
    full_ms = timed_mean_ms(
        lambda uid: full_responses.__setitem__(
            int(uid),
            full_service.recommend(
                RecommendationRequest(user_id=int(uid), items=all_items, k=K)
            ),
        ),
        list(recall_users),
    )
    hits = 0
    for uid in recall_users:
        retrieved = retrieval_service.recommend(
            RecommendationRequest(user_id=int(uid), items=None, k=K)
        )
        hits += len(set(retrieved.items) & set(full_responses[int(uid)].items))
    recall = hits / (len(recall_users) * K)

    # the timed retrieval loop (warm index, mixed users)
    timed_users = rng.integers(0, N_USERS, size=N_RETRIEVED_REQUESTS)
    retrieved_ms = timed_mean_ms(
        lambda uid: retrieval_service.recommend(
            RecommendationRequest(user_id=int(uid), items=None, k=K)
        ),
        list(timed_users),
    )
    return {
        "n_items": n_items,
        "build_s": build_seconds,
        "retrieved_ms": retrieved_ms,
        "full_ms": full_ms,
        "speedup": full_ms / retrieved_ms,
        "recall": recall,
    }


def test_candidate_retrieval_speedup_and_recall():
    legs = [
        run_leg(n_items, seed=17 + i)
        for i, n_items in enumerate(CATALOG_SIZES)
    ]

    lines = [
        f"candidate retrieval vs exact full scan"
        f"{' [SMOKE]' if SMOKE else ''}: end-to-end recommend() with the "
        f"Advice stage on, k={K}, k_candidates={K_CANDIDATES}, "
        f"n_probe={N_PROBE}, clustered catalogs "
        f"({N_TRUE_CLUSTERS} true clusters, dim {DIM})",
    ]
    for leg in legs:
        lines.append(
            f"  n={leg['n_items']:>9,}   index build {leg['build_s']:7.2f} s   "
            f"retrieval {leg['retrieved_ms']:9.3f} ms/req   "
            f"full scan {leg['full_ms']:10.3f} ms/req   "
            f"speedup {leg['speedup']:7.1f}x   recall@{K} {leg['recall']:.3f}"
        )
    record_artifact(
        f"S10_candidate_retrieval{'_smoke' if SMOKE else ''}",
        "\n".join(lines),
    )

    for leg in legs:
        assert leg["recall"] >= RECALL_GATE, (
            f"recall@{K} {leg['recall']:.3f} < {RECALL_GATE} at "
            f"n={leg['n_items']:,} — widen n_probe/k_candidates or fix "
            "the index"
        )
    if SMOKE:
        largest = legs[-1]
        assert largest["speedup"] >= SPEEDUP_GATE_SMOKE, (
            f"retrieval speedup {largest['speedup']:.1f}x < "
            f"{SPEEDUP_GATE_SMOKE}x at n={largest['n_items']:,}"
        )
    else:
        for leg in legs:
            if leg["n_items"] >= 100_000:
                assert leg["speedup"] >= SPEEDUP_GATE_FULL, (
                    f"retrieval speedup {leg['speedup']:.1f}x < "
                    f"{SPEEDUP_GATE_FULL}x at n={leg['n_items']:,}"
                )


def test_exact_fallback_parity_on_the_service_path():
    """k == catalog forces the exact fallback: identical responses."""
    provider, attributes = build_catalog(500, seed=3)
    retrieval_service, full_service, __ = build_services(provider, attributes)
    items = list(range(500))
    for uid in (0, 1, 2):
        request = RecommendationRequest(user_id=uid, items=items, k=500)
        assert (
            retrieval_service.recommend(request).ranked
            == full_service.recommend(request).ranked
        )
