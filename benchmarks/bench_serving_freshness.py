"""S4 — serving freshness: columnar snapshot reads under streamed writes.

ISSUE 4's tentpole: the streaming serving plane (`RecommendationService`
over `SumCache`) used to fall off the columnar fast path — every read
after a publish rebuilt per-user ``SmartUserModel`` snapshots via
``to_dict()``/``from_dict()``.  The cache now keeps copy-on-write row
slices in a column mirror and serves batch reads through
:class:`~repro.core.sum_store.FrozenSumBatch` column slices.

This bench drives the *same* write stream into both backends (bit-equal
states by construction), then measures the serving read path —
``score_matrix`` over the whole population with emotional adjustment —
while batches keep landing between reads:

* **object-snapshot baseline** — ``SumCache`` over ``SumRepository``:
  every touched user's snapshot is rebuilt through the dict round trip,
  then the Advice stage does per-model scalar reads;
* **columnar snapshots** — ``SumCache`` over ``ColumnarSumStore``: the
  first read after each publish refreshes the touched rows in the
  mirror, then everything is column slices.

Assertions, not just numbers:

* adjusted score grids are **bit-equal** across backends every round;
* the columnar read path performs **zero** ``to_dict``/``from_dict``
  object rebuilds and materializes zero per-user snapshots
  (allocation-free of per-user work); the object baseline demonstrably
  pays thousands;
* columnar reads are ≥ ``SPEEDUP_FLOOR`` faster.

Smoke mode for CI (smaller population, relaxed floor)::

    BENCH_SMOKE=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_serving_freshness.py -q

Full run (the acceptance numbers; 100k users)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_freshness.py -q
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import record_artifact
from repro.core.advice import DomainProfile
from repro.core.emotions import EMOTION_NAMES
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SmartUserModel, SumRepository
from repro.core.sum_store import ColumnarSumStore, FrozenSumBatch
from repro.core.updates import RewardOp, apply_ops
from repro.datagen.catalog import AFFINITY_LINKS
from repro.serving import RecommendationService
from repro.streaming.cache import SumCache

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_USERS = 5_000 if SMOKE else 100_000
#: users rewarded between consecutive reads ("sustained streamed writes")
WRITES_PER_ROUND = 200 if SMOKE else 2_000
ROUNDS = 5 if SMOKE else 3
#: minimum columnar speedup (acceptance: ≥5x at 100k users; smoke relaxes
#: for noisy shared CI runners)
SPEEDUP_FLOOR = 1.5 if SMOKE else 5.0

PROFILE = DomainProfile("courses", AFFINITY_LINKS)
N_ITEMS = 8


class OnesScorer:
    """Flat batch scorer: isolates the model-resolution + Advice path."""

    def score_batch(self, user_ids, items):
        return np.ones((len(user_ids), len(items)))


def build_population(backend_cls, seed: int = 7):
    """Identical scalar writes on both backends → bit-equal states."""
    rng = np.random.default_rng(seed)
    intensity = rng.uniform(0.0, 1.0, size=(N_USERS, len(EMOTION_NAMES)))
    weight = rng.uniform(0.0, 1.0, size=(N_USERS, len(EMOTION_NAMES)))
    sums = backend_cls()
    for i in range(N_USERS):
        model = sums.get_or_create(i)
        for j, name in enumerate(EMOTION_NAMES):
            model.emotional.intensities[name] = float(intensity[i, j])
            model.sensibility[name] = float(weight[i, j])
    return sums


def build_service(cache):
    attributes = PROFILE.item_attributes()
    item_attributes = {
        f"course-{i}": {attributes[i % len(attributes)]: 1.0}
        for i in range(N_ITEMS)
    }
    service = RecommendationService(
        sums=cache,
        domain_profile=PROFILE,
        item_attributes=item_attributes,
    )
    service.register("flat", OnesScorer())
    return service, sorted(item_attributes)


def write_rounds(seed: int = 11):
    """The shared write schedule: per-round (user, ops) batches."""
    rng = np.random.default_rng(seed)
    rounds = []
    for __ in range(ROUNDS):
        users = rng.choice(N_USERS, size=WRITES_PER_ROUND, replace=False)
        strengths = rng.uniform(0.2, 1.0, size=WRITES_PER_ROUND)
        emotion_picks = rng.integers(0, len(EMOTION_NAMES), size=WRITES_PER_ROUND)
        rounds.append([
            (
                int(uid),
                (RewardOp((EMOTION_NAMES[int(e)],), float(s)),),
            )
            for uid, s, e in zip(users, strengths, emotion_picks)
        ])
    return rounds


def apply_round(cache, batch, policy):
    """Commit one write round through the backend's publish path."""
    if callable(getattr(cache.repository, "batch_apply_ops", None)):
        cache.apply_batch_and_publish(batch, policy)
    else:
        for user_id, ops in batch:
            cache.apply_and_publish(
                user_id, lambda model, ops=ops: apply_ops(model, ops, policy)
            )
    cache.mark_batch()


class RebuildCounter:
    """Counts SmartUserModel dict round trips on the read path."""

    def __init__(self) -> None:
        self.to_dict = 0
        self.from_dict = 0

    def __enter__(self):
        self._orig_to = SmartUserModel.to_dict
        self._orig_from = SmartUserModel.__dict__["from_dict"]
        counter = self

        def counting_to_dict(model):
            counter.to_dict += 1
            return counter._orig_to(model)

        @classmethod
        def counting_from_dict(cls, payload):
            counter.from_dict += 1
            return counter._orig_from.__func__(cls, payload)

        SmartUserModel.to_dict = counting_to_dict
        SmartUserModel.from_dict = counting_from_dict
        return self

    def __exit__(self, *exc_info):
        SmartUserModel.to_dict = self._orig_to
        SmartUserModel.from_dict = self._orig_from

    @property
    def total(self) -> int:
        return self.to_dict + self.from_dict


def test_columnar_cache_reads_are_allocation_free_and_faster():
    policy = ReinforcementPolicy()
    rounds = write_rounds()
    ids = list(range(N_USERS))

    results = {}
    grids = {}
    rebuilds = {}
    for label, backend_cls in (
        ("object", SumRepository),
        ("columnar", ColumnarSumStore),
    ):
        cache = SumCache(build_population(backend_cls))
        service, items = build_service(cache)
        service.score_matrix(ids, items)  # warm: first-read snapshot fill
        read_times = []
        with RebuildCounter() as counter:
            for batch in rounds:
                apply_round(cache, batch, policy)
                start = time.perf_counter()
                grid = service.score_matrix(ids, items)
                read_times.append(time.perf_counter() - start)
        results[label] = min(read_times)
        grids[label] = grid
        rebuilds[label] = counter.total
        if label == "columnar":
            # the read path resolves through frozen column slices —
            # zero object rebuilds, zero per-user snapshot materialization
            assert counter.total == 0, (
                f"columnar read path did {counter.total} dict round trips"
            )
            assert cache.cached_users == 0
            assert isinstance(
                service._resolve_models(ids[:16]), FrozenSumBatch
            )
        else:
            assert counter.total > 0  # the baseline provably pays rebuilds

    assert np.array_equal(grids["object"], grids["columnar"]), (
        "adjusted grids must be bit-equal across backends"
    )

    speedup = results["object"] / results["columnar"]
    lines = [
        f"{N_USERS:,} users × {N_ITEMS} items, {WRITES_PER_ROUND:,} "
        f"rewarded users between reads, {ROUNDS} rounds"
        + (" [SMOKE]" if SMOKE else ""),
        f"  {'read path':<28}{'best read':>12}{'dict round trips':>18}",
        f"  {'object snapshots':<28}{results['object'] * 1e3:>10.1f}ms"
        f"{rebuilds['object']:>18,}",
        f"  {'columnar mirror slices':<28}{results['columnar'] * 1e3:>10.1f}ms"
        f"{rebuilds['columnar']:>18,}",
        f"  speedup: {speedup:.1f}x (floor {SPEEDUP_FLOOR}x)",
    ]
    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar {results['columnar']:.4f}s vs object "
        f"{results['object']:.4f}s is only {speedup:.1f}x "
        f"(need ≥{SPEEDUP_FLOOR}x)"
    )
    record_artifact(
        "S4_serving_freshness_smoke" if SMOKE
        else "S4 serving freshness under streamed writes",
        "\n".join(lines),
    )
