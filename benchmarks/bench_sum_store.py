"""S3 — columnar SUM store vs the object backend at population scale.

The ROADMAP north-star is emotional state for millions of users; PR 3
moved the population's SUMs into struct-of-arrays columns
(:class:`~repro.core.sum_store.ColumnarSumStore`).  This bench builds
the *same* population on both backends (identical scalar writes, so the
states are bit-equal by construction), then races the three hot batch
paths:

* **population decay tick** — the between-campaigns forgetting pass
  over every user (object: per-model dict passes; columnar: two array
  multiplies);
* **feature_matrix** — the dense feature block the propensity stack
  trains on (object: per-user ``np.concatenate`` + ``vstack``;
  columnar: column slices);
* **boosts_matrix** — the Advice stage's per-user attribute boosts
  (object: per-model scalar reads; columnar: one intensity and one
  sensibility block slice).

Outputs must be *bit-equal* across backends (``np.array_equal``, not
allclose) — the same contract the streaming replay and Fig. 4 pipeline
equivalence tests enforce.

Smoke mode for CI (smaller population, relaxed floor)::

    BENCH_SMOKE=1 PYTHONPATH=src python -m pytest \
        benchmarks/bench_sum_store.py -q

Full run (the acceptance numbers; ~100k users)::

    PYTHONPATH=src python -m pytest benchmarks/bench_sum_store.py -q
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import record_artifact
from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.emotions import EMOTION_NAMES
from repro.core.four_branch import BRANCH_ORDER
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore
from repro.datagen.catalog import AFFINITY_LINKS

SMOKE = bool(os.environ.get("BENCH_SMOKE"))
N_USERS = 5_000 if SMOKE else 100_000
#: minimum columnar speedup demanded per path (acceptance: ≥5x at 100k;
#: smoke mode relaxes for noisy shared CI runners)
SPEEDUP_FLOOR = 1.5 if SMOKE else 5.0
REPEATS = 3

SUBJECTIVE_PREFS = tuple(f"pref[{name}]" for name in
                         ("online", "evening", "short", "technical"))


def build_population(backend_cls, seed: int = 7):
    """Fill one backend with a deterministic synthetic population.

    Both backends run the exact same scalar writes, so their states are
    bit-identical and every timed path must return bit-equal arrays.
    """
    rng = np.random.default_rng(seed)
    intensity = rng.uniform(0.0, 1.0, size=(N_USERS, len(EMOTION_NAMES)))
    weight = rng.uniform(0.0, 1.0, size=(N_USERS, len(EMOTION_NAMES)))
    evidence = rng.integers(1, 40, size=(N_USERS, len(EMOTION_NAMES)))
    prefs = rng.uniform(0.0, 1.0, size=(N_USERS, len(SUBJECTIVE_PREFS)))
    ei = rng.uniform(0.0, 1.0, size=(N_USERS, len(BRANCH_ORDER)))

    sums = backend_cls()
    for i in range(N_USERS):
        model = sums.get_or_create(i)
        for j, name in enumerate(EMOTION_NAMES):
            model.emotional.intensities[name] = float(intensity[i, j])
            model.sensibility[name] = float(weight[i, j])
            model.evidence[name] = int(evidence[i, j])
        for k, pref in enumerate(SUBJECTIVE_PREFS):
            model.subjective[pref] = float(prefs[i, k])
        for b, branch in enumerate(BRANCH_ORDER):
            model.ei_profile.scores[branch] = float(ei[i, b])
    return sums


def best_of(fn, repeats: int = REPEATS) -> float:
    """Best wall-clock of ``repeats`` calls (noise-robust minimum)."""
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_columnar_store_beats_object_backend():
    repo = build_population(SumRepository)
    store = build_population(ColumnarSumStore)
    policy = ReinforcementPolicy()
    profile = DomainProfile("courses", AFFINITY_LINKS)
    advice = AdviceEngine()
    ids = repo.user_ids()
    models = [repo.get(uid) for uid in ids]

    # -- population decay tick -------------------------------------------
    # Same number of ticks on each backend (REPEATS each), so the states
    # stay comparable afterwards.
    object_decay = best_of(
        lambda: [policy.apply_decay(model) for model in models]
    )
    columnar_decay = best_of(lambda: store.decay_tick(policy))

    # -- feature_matrix ----------------------------------------------------
    object_features = best_of(
        lambda: repo.feature_matrix(subjective_order=SUBJECTIVE_PREFS)
    )
    columnar_features = best_of(
        lambda: store.feature_matrix(subjective_order=SUBJECTIVE_PREFS)
    )
    expected_features, __ = repo.feature_matrix(
        subjective_order=SUBJECTIVE_PREFS
    )
    actual_features, __ = store.feature_matrix(
        subjective_order=SUBJECTIVE_PREFS
    )
    assert np.array_equal(expected_features, actual_features), (
        "feature_matrix must be bit-equal across backends"
    )

    # -- boosts_matrix -----------------------------------------------------
    batch = store.batch(ids)
    object_boosts = best_of(lambda: advice.boosts_matrix(models, profile))
    columnar_boosts = best_of(lambda: advice.boosts_matrix(batch, profile))
    assert np.array_equal(
        advice.boosts_matrix(models, profile),
        advice.boosts_matrix(batch, profile),
    ), "boosts_matrix must be bit-equal across backends"

    results = [
        ("population decay tick", object_decay, columnar_decay),
        ("feature_matrix", object_features, columnar_features),
        ("boosts_matrix", object_boosts, columnar_boosts),
    ]
    lines = [
        f"{N_USERS:,} users, {len(EMOTION_NAMES)} emotions, "
        f"{len(SUBJECTIVE_PREFS)} subjective prefs"
        + (" [SMOKE]" if SMOKE else ""),
        f"  {'path':<24}{'object':>12}{'columnar':>12}{'speedup':>10}",
    ]
    for label, object_s, columnar_s in results:
        speedup = object_s / columnar_s
        lines.append(
            f"  {label:<24}{object_s * 1e3:>10.1f}ms"
            f"{columnar_s * 1e3:>10.2f}ms{speedup:>9.1f}x"
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"{label}: columnar {columnar_s:.4f}s vs object {object_s:.4f}s "
            f"is only {speedup:.1f}x (need ≥{SPEEDUP_FLOOR}x)"
        )
    # Smoke runs land in their own file so a local/CI smoke pass never
    # clobbers the committed full-run numbers.
    record_artifact(
        "S3_columnar_SUM_store_smoke" if SMOKE
        else "S3 columnar SUM store vs object backend",
        "\n".join(lines),
    )
