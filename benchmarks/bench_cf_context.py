"""A5 — extension: emotion-context CF vs plain CF (synthetic CoMoDa).

The emotional-context thesis on the classic rating-prediction task:
contextual pre/post-filtering on viewer mood/emotion must beat the same
model without context, because the generator plants a genuine
(context × genre) effect.
"""


from benchmarks.conftest import record_artifact
from repro.cf.context import (
    ContextualPostFilter,
    ContextualPreFilter,
    emotion_context,
    mood_context,
)
from repro.cf.eval import evaluate_rmse_mae
from repro.cf.mf import FunkSVD
from repro.cf.neighborhood import ItemKNN
from repro.cf.popularity import PopularityRecommender
from repro.cf.ratings import RatingMatrix
from repro.datagen.comoda import generate_comoda


def test_cf_emotional_context(benchmark):
    dataset = generate_comoda(
        n_users=250, n_items=100, ratings_per_user=28, seed=11
    )
    train, test = dataset.split(0.25, seed=11)
    matrix = RatingMatrix([(r.user_id, r.item_id, r.rating) for r in train])
    def factory():
        return FunkSVD(rank=10, epochs=20)

    rows = []
    results = {}

    for name, predictor in [
        ("popularity", PopularityRecommender().fit(matrix)),
        ("item-kNN", ItemKNN(k=20).fit(matrix)),
        ("FunkSVD (no context)", factory().fit(matrix)),
    ]:
        rmse, mae = evaluate_rmse_mae(
            lambda u, i, c, m=predictor: m.predict(u, i), test, mood_context
        )
        results[name] = rmse
        rows.append((name, rmse, mae))

    pre = ContextualPreFilter(factory, context_key=mood_context).fit(train)
    rmse, mae = evaluate_rmse_mae(pre.predict, test, mood_context)
    results["FunkSVD + mood pre-filter"] = rmse
    rows.append(("FunkSVD + mood pre-filter", rmse, mae))

    post = ContextualPostFilter(
        factory, dataset.item_genres, context_key=mood_context
    ).fit(train)
    rmse, mae = evaluate_rmse_mae(post.predict, test, mood_context)
    results["FunkSVD + mood post-filter"] = rmse
    rows.append(("FunkSVD + mood post-filter", rmse, mae))

    post_emotion = ContextualPostFilter(
        factory, dataset.item_genres, context_key=emotion_context
    ).fit(train)
    rmse, mae = evaluate_rmse_mae(post_emotion.predict, test, emotion_context)
    results["FunkSVD + emotion post-filter"] = rmse
    rows.append(("FunkSVD + emotion post-filter", rmse, mae))

    lines = [f"{'model':32s} {'RMSE':>7s} {'MAE':>7s}", "-" * 48]
    lines += [f"{n:32s} {r:7.3f} {m:7.3f}" for n, r, m in rows]
    plain = results["FunkSVD (no context)"]
    best_context = min(v for k, v in results.items() if "filter" in k)
    lines.append("")
    lines.append(
        f"context reduces RMSE by {(plain - best_context) / plain:.1%} "
        "over the same model without it"
    )
    record_artifact("A5_emotion_context_cf", "\n".join(lines))

    benchmark.pedantic(
        lambda: ContextualPostFilter(
            factory, dataset.item_genres, context_key=mood_context
        ).fit(train),
        rounds=1,
        iterations=1,
    )

    # Who wins: contextual models must beat the context-free twin.
    assert best_context < plain
    # CF must beat popularity (sanity of the planted low-rank structure).
    assert plain < results["popularity"]
